"""Unit tests for the structural query representation."""

from __future__ import annotations

import pytest

from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query, Workload
from repro.errors import QueryError, ValidationError


class TestPredicate:
    def test_selectivity_bounds(self):
        with pytest.raises(ValidationError):
            Predicate("t", "c", selectivity=0.0)
        with pytest.raises(ValidationError):
            Predicate("t", "c", selectivity=1.5)
        assert Predicate("t", "c", selectivity=1.0).selectivity == 1.0

    def test_in_needs_values(self):
        with pytest.raises(ValidationError):
            Predicate("t", "c", PredicateOp.IN, values=0)


class TestJoinEdge:
    def test_involves_and_other(self):
        edge = JoinEdge("a", "x", "b", "y")
        assert edge.involves("a")
        assert edge.involves("b")
        assert not edge.involves("c")
        assert edge.other("a") == "b"
        assert edge.other("b") == "a"

    def test_column_of(self):
        edge = JoinEdge("a", "x", "b", "y")
        assert edge.column_of("a") == "x"
        assert edge.column_of("b") == "y"

    def test_unrelated_table_raises(self):
        edge = JoinEdge("a", "x", "b", "y")
        with pytest.raises(QueryError):
            edge.other("c")
        with pytest.raises(QueryError):
            edge.column_of("c")


class TestQuery:
    def test_valid_query(self):
        query = Query(
            "q",
            tables=["a", "b"],
            predicates=[Predicate("a", "x")],
            joins=[JoinEdge("a", "k", "b", "k")],
            group_by=[("a", "g")],
            select=[("b", "v")],
        )
        assert query.tables == ("a", "b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Query("", tables=["a"])

    def test_no_tables_rejected(self):
        with pytest.raises(QueryError):
            Query("q", tables=[])

    def test_duplicate_tables_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            Query("q", tables=["a", "a"])

    def test_predicate_on_unreferenced_table_rejected(self):
        with pytest.raises(QueryError, match="unreferenced"):
            Query("q", tables=["a"], predicates=[Predicate("b", "x")])

    def test_join_on_unreferenced_table_rejected(self):
        with pytest.raises(QueryError, match="unreferenced"):
            Query("q", tables=["a"], joins=[JoinEdge("a", "k", "b", "k")])

    def test_output_on_unreferenced_table_rejected(self):
        with pytest.raises(QueryError, match="unreferenced"):
            Query("q", tables=["a"], group_by=[("b", "g")])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValidationError):
            Query("q", tables=["a"], weight=0.0)

    def test_predicates_on(self):
        query = Query(
            "q",
            tables=["a", "b"],
            predicates=[Predicate("a", "x"), Predicate("b", "y")],
            joins=[JoinEdge("a", "k", "b", "k")],
        )
        assert [p.column for p in query.predicates_on("a")] == ["x"]

    def test_joins_of(self):
        edge = JoinEdge("a", "k", "b", "k")
        query = Query("q", tables=["a", "b"], joins=[edge])
        assert query.joins_of("a") == [edge]
        assert query.joins_of("b") == [edge]

    def test_columns_needed_union(self):
        query = Query(
            "q",
            tables=["a", "b"],
            predicates=[Predicate("a", "x")],
            joins=[JoinEdge("a", "k", "b", "k")],
            group_by=[("a", "g")],
            select=[("a", "v"), ("b", "w")],
        )
        assert query.columns_needed("a") == ["g", "k", "v", "x"]
        assert query.columns_needed("b") == ["k", "w"]


class TestWorkload:
    def test_iteration_and_len(self):
        queries = [Query("q1", tables=["a"]), Query("q2", tables=["a"])]
        workload = Workload("w", queries)
        assert len(workload) == 2
        assert [q.name for q in workload] == ["q1", "q2"]

    def test_lookup(self):
        workload = Workload("w", [Query("q1", tables=["a"])])
        assert workload.query("q1").name == "q1"
        with pytest.raises(QueryError):
            workload.query("missing")

    def test_duplicate_names_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            Workload(
                "w", [Query("q", tables=["a"]), Query("q", tables=["b"])]
            )
