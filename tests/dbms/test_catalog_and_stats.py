"""Unit tests for the catalog and statistics estimators."""

from __future__ import annotations

import pytest

from repro.dbms.catalog import Catalog
from repro.dbms.query import Predicate, PredicateOp
from repro.dbms.schema import Column, IndexSpec, Table
from repro.dbms.stats import (
    DEFAULT_RANGE_SELECTIVITY,
    combined_selectivity,
    filtered_rows,
    join_cardinality,
    predicate_selectivity,
)
from repro.errors import CatalogError


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.add_table(
        Table(
            "people",
            [
                Column("id", distinct=10_000),
                Column("city", distinct=100),
                Column("salary", distinct=1_000),
            ],
            row_count=10_000,
        )
    )
    return cat


class TestCatalogTables:
    def test_add_and_lookup(self, catalog):
        assert catalog.table("people").row_count == 10_000
        assert len(catalog.tables) == 1

    def test_unknown_table_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("ghost")

    def test_duplicate_table_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_table(Table("people", [Column("x")], row_count=1))


class TestCatalogIndexes:
    def test_add_real_and_hypothetical(self, catalog):
        catalog.add_index(IndexSpec("ix_city", "people", ("city",)))
        catalog.add_index(
            IndexSpec("ix_sal", "people", ("salary",)), hypothetical=True
        )
        assert catalog.has_index("ix_city")
        assert not catalog.is_hypothetical("ix_city")
        assert catalog.is_hypothetical("ix_sal")
        assert catalog.materialized_indexes == ["ix_city"]

    def test_duplicate_index_rejected(self, catalog):
        catalog.add_index(IndexSpec("ix", "people", ("city",)))
        with pytest.raises(CatalogError, match="already exists"):
            catalog.add_index(IndexSpec("ix", "people", ("salary",)))

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.add_index(IndexSpec("ix", "ghost", ("x",)))

    def test_unknown_column_rejected(self, catalog):
        with pytest.raises(CatalogError, match="no column"):
            catalog.add_index(IndexSpec("ix", "people", ("bonus",)))

    def test_second_clustered_rejected(self, catalog):
        catalog.add_index(
            IndexSpec("cx1", "people", ("id",), clustered=True)
        )
        with pytest.raises(CatalogError, match="clustered"):
            catalog.add_index(
                IndexSpec("cx2", "people", ("city",), clustered=True)
            )

    def test_drop_index(self, catalog):
        catalog.add_index(
            IndexSpec("ix", "people", ("city",)), hypothetical=True
        )
        catalog.drop_index("ix")
        assert not catalog.has_index("ix")
        with pytest.raises(CatalogError):
            catalog.drop_index("ix")

    def test_indexes_on(self, catalog):
        catalog.add_index(IndexSpec("ix1", "people", ("city",)))
        catalog.add_index(IndexSpec("ix2", "people", ("salary",)))
        assert {s.name for s in catalog.indexes_on("people")} == {"ix1", "ix2"}
        assert catalog.indexes_on("ghost") == []

    def test_configuration(self, catalog):
        catalog.add_index(IndexSpec("real", "people", ("city",)))
        catalog.add_index(
            IndexSpec("hypo", "people", ("salary",)), hypothetical=True
        )
        assert catalog.configuration() == {"real"}
        assert catalog.configuration(extra=["hypo"]) == {"real", "hypo"}
        assert catalog.configuration(
            extra=["hypo"], include_materialized=False
        ) == {"hypo"}


class TestSelectivity:
    def test_eq_uses_distinct(self, catalog):
        table = catalog.table("people")
        predicate = Predicate("people", "city", PredicateOp.EQ)
        assert predicate_selectivity(predicate, table) == pytest.approx(0.01)

    def test_explicit_selectivity_wins(self, catalog):
        table = catalog.table("people")
        predicate = Predicate(
            "people", "city", PredicateOp.EQ, selectivity=0.25
        )
        assert predicate_selectivity(predicate, table) == 0.25

    def test_range_default(self, catalog):
        table = catalog.table("people")
        predicate = Predicate("people", "salary", PredicateOp.RANGE)
        assert predicate_selectivity(predicate, table) == pytest.approx(
            DEFAULT_RANGE_SELECTIVITY
        )

    def test_in_scales_with_values(self, catalog):
        table = catalog.table("people")
        predicate = Predicate("people", "city", PredicateOp.IN, values=5)
        assert predicate_selectivity(predicate, table) == pytest.approx(0.05)

    def test_in_caps_at_one(self, catalog):
        table = catalog.table("people")
        predicate = Predicate("people", "city", PredicateOp.IN, values=500)
        assert predicate_selectivity(predicate, table) == 1.0

    def test_combined_multiplies(self, catalog):
        table = catalog.table("people")
        predicates = [
            Predicate("people", "city", PredicateOp.EQ),
            Predicate("people", "salary", PredicateOp.EQ),
        ]
        assert combined_selectivity(predicates, table) == pytest.approx(
            0.01 * 0.001
        )

    def test_combined_empty_is_one(self, catalog):
        assert combined_selectivity([], catalog.table("people")) == 1.0

    def test_filtered_rows(self, catalog):
        table = catalog.table("people")
        predicates = [Predicate("people", "city", PredicateOp.EQ)]
        assert filtered_rows(table, predicates) == pytest.approx(100.0)


class TestJoinCardinality:
    def test_standard_rule(self):
        assert join_cardinality(1000, 500, 100, 50) == pytest.approx(5000.0)

    def test_floor_of_one(self):
        assert join_cardinality(1, 1, 1000, 1000) == 1.0

    def test_zero_distinct_guard(self):
        assert join_cardinality(10, 10, 0, 0) == pytest.approx(100.0)
