"""Unit tests for the cost-based what-if optimizer."""

from __future__ import annotations

import pytest

from repro.dbms.catalog import Catalog
from repro.dbms.optimizer import CostModel, Optimizer
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query
from repro.dbms.schema import Column, IndexSpec, Table


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.add_table(
        Table(
            "people",
            [
                Column("id", width=8, distinct=200_000),
                Column("city", width=16, distinct=500),
                Column("salary", width=8, distinct=10_000),
                Column("report_to", width=8, distinct=20_000),
            ],
            row_count=200_000,
        )
    )
    cat.add_table(
        Table(
            "orders",
            [
                Column("order_id", width=8, distinct=1_000_000),
                Column("person_id", width=8, distinct=200_000),
                Column("total", width=8, distinct=50_000),
            ],
            row_count=1_000_000,
        )
    )
    return cat


def city_query() -> Query:
    return Query(
        "avg_salary_by_city",
        tables=["people"],
        predicates=[Predicate("people", "city", PredicateOp.EQ)],
        select=[("people", "salary")],
    )


def join_query() -> Query:
    return Query(
        "orders_of_city",
        tables=["people", "orders"],
        predicates=[Predicate("people", "city", PredicateOp.EQ)],
        joins=[JoinEdge("people", "id", "orders", "person_id")],
        select=[("orders", "total")],
    )


class TestAccessPaths:
    def test_heap_scan_always_available(self, catalog):
        optimizer = Optimizer(catalog)
        paths = optimizer.access_paths(city_query(), "people", set())
        assert len(paths) == 1
        assert paths[0].index_name is None

    def test_index_seek_beats_heap_on_selective_filter(self, catalog):
        catalog.add_index(IndexSpec("ix_city", "people", ("city",)))
        optimizer = Optimizer(catalog)
        best = optimizer.best_access_path(
            city_query(), "people", {"ix_city"}
        )
        assert best.index_name == "ix_city"
        heap = optimizer.access_paths(city_query(), "people", set())[0]
        assert best.cost < heap.cost

    def test_unavailable_index_ignored(self, catalog):
        catalog.add_index(IndexSpec("ix_city", "people", ("city",)))
        optimizer = Optimizer(catalog)
        best = optimizer.best_access_path(city_query(), "people", set())
        assert best.index_name is None

    def test_covering_index_cheaper_than_noncovering(self, catalog):
        catalog.add_index(IndexSpec("ix_city", "people", ("city",)))
        catalog.add_index(
            IndexSpec(
                "ix_city_cov",
                "people",
                ("city",),
                include_columns=("salary",),
            )
        )
        optimizer = Optimizer(catalog)
        paths = {
            p.index_name: p
            for p in optimizer.access_paths(
                city_query(), "people", {"ix_city", "ix_city_cov"}
            )
        }
        assert paths["ix_city_cov"].index_only
        assert not paths["ix_city"].index_only
        assert paths["ix_city_cov"].cost < paths["ix_city"].cost

    def test_unmatched_noncovering_index_skipped(self, catalog):
        catalog.add_index(IndexSpec("ix_sal", "people", ("salary",)))
        optimizer = Optimizer(catalog)
        paths = optimizer.access_paths(city_query(), "people", {"ix_sal"})
        # ix_sal neither matches the filter nor covers the query.
        assert all(p.index_name != "ix_sal" for p in paths)

    def test_covering_scan_without_key_match(self, catalog):
        catalog.add_index(
            IndexSpec(
                "ix_sal_cov",
                "people",
                ("salary",),
                include_columns=("city",),
            )
        )
        optimizer = Optimizer(catalog)
        paths = {
            p.index_name
            for p in optimizer.access_paths(
                city_query(), "people", {"ix_sal_cov"}
            )
        }
        assert "ix_sal_cov" in paths  # usable as an index-only scan


class TestPlans:
    def test_single_table_plan(self, catalog):
        optimizer = Optimizer(catalog)
        plan = optimizer.optimize(city_query(), set())
        assert plan.used_indexes == frozenset()
        assert plan.join_order == ("people",)
        assert plan.cost > 0

    def test_join_plan_covers_all_tables(self, catalog):
        optimizer = Optimizer(catalog)
        plan = optimizer.optimize(join_query(), set())
        assert set(plan.join_order) == {"people", "orders"}

    def test_more_indexes_never_hurt(self, catalog):
        catalog.add_index(IndexSpec("ix_city", "people", ("city",)))
        catalog.add_index(
            IndexSpec("ix_person", "orders", ("person_id",))
        )
        optimizer = Optimizer(catalog)
        empty = optimizer.optimize(join_query(), set())
        partial = optimizer.optimize(join_query(), {"ix_city"})
        full = optimizer.optimize(join_query(), {"ix_city", "ix_person"})
        assert partial.cost <= empty.cost + 1e-9
        assert full.cost <= partial.cost + 1e-9

    def test_join_interaction_both_indexes_used(self, catalog):
        # The Section-4.2 pattern: index on the filter + index on the
        # join column of the big inner table combine multiplicatively.
        catalog.add_index(IndexSpec("ix_city", "people", ("city",)))
        catalog.add_index(IndexSpec("ix_person", "orders", ("person_id",)))
        optimizer = Optimizer(catalog)
        full = optimizer.optimize(join_query(), {"ix_city", "ix_person"})
        assert full.used_indexes == frozenset({"ix_city", "ix_person"})

    def test_deterministic(self, catalog):
        catalog.add_index(IndexSpec("ix_city", "people", ("city",)))
        optimizer = Optimizer(catalog)
        first = optimizer.optimize(join_query(), {"ix_city"})
        second = optimizer.optimize(join_query(), {"ix_city"})
        assert first.cost == second.cost
        assert first.join_order == second.join_order

    def test_group_by_sort_cost(self, catalog):
        grouped = Query(
            "grouped",
            tables=["people"],
            predicates=[Predicate("people", "city", PredicateOp.EQ)],
            group_by=[("people", "salary")],
        )
        flat = city_query()
        optimizer = Optimizer(catalog)
        assert (
            optimizer.optimize(grouped, set()).cost
            > optimizer.optimize(flat, set()).cost
        )

    def test_sort_avoided_by_matching_index_order(self, catalog):
        catalog.add_index(
            IndexSpec(
                "ix_sal_cov",
                "people",
                ("salary",),
                include_columns=("city",),
            )
        )
        grouped = Query(
            "grouped",
            tables=["people"],
            group_by=[("people", "salary")],
            select=[("people", "city")],
        )
        optimizer = Optimizer(catalog)
        without = optimizer.optimize(grouped, set())
        with_ix = optimizer.optimize(grouped, {"ix_sal_cov"})
        assert with_ix.cost < without.cost


class TestCostModel:
    def test_custom_cost_model_changes_costs(self, catalog):
        query = city_query()
        cheap_cpu = Optimizer(catalog, CostModel(cpu_row=0.0001))
        pricey_cpu = Optimizer(catalog, CostModel(cpu_row=0.1))
        assert (
            cheap_cpu.optimize(query, set()).cost
            < pricey_cpu.optimize(query, set()).cost
        )
