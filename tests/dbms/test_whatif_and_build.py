"""Unit tests for the what-if interface and the build-cost model."""

from __future__ import annotations

import pytest

from repro.dbms.build_cost import BuildCostModel
from repro.dbms.catalog import Catalog
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query
from repro.dbms.schema import Column, IndexSpec, Table
from repro.dbms.whatif import WhatIfOptimizer


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.add_table(
        Table(
            "people",
            [
                Column("id", width=8, distinct=500_000),
                Column("city", width=16, distinct=1_000),
                Column("salary", width=8, distinct=20_000),
                Column("age", width=4, distinct=80),
                Column("name", width=40, distinct=400_000),
            ],
            row_count=500_000,
        )
    )
    return cat


def city_salary_query() -> Query:
    return Query(
        "avg_salary_by_city",
        tables=["people"],
        predicates=[Predicate("people", "city", PredicateOp.EQ)],
        select=[("people", "salary")],
    )


class TestWhatIf:
    def test_base_cost_uses_materialized_only(self, catalog):
        whatif = WhatIfOptimizer(catalog)
        base = whatif.base_cost(city_salary_query())
        catalog.add_index(
            IndexSpec("hx_city", "people", ("city",)), hypothetical=True
        )
        whatif.clear_cache()
        assert whatif.base_cost(city_salary_query()) == pytest.approx(base)

    def test_hypothetical_index_reduces_plan_cost(self, catalog):
        catalog.add_index(
            IndexSpec("hx_city", "people", ("city",)), hypothetical=True
        )
        whatif = WhatIfOptimizer(catalog)
        query = city_salary_query()
        base = whatif.base_cost(query)
        plan = whatif.plan(query, ["hx_city"])
        assert plan.cost < base
        assert "hx_city" in plan.used_indexes

    def test_plan_caching(self, catalog):
        whatif = WhatIfOptimizer(catalog)
        query = city_salary_query()
        first = whatif.plan(query)
        second = whatif.plan(query)
        assert first is second

    def test_atomic_configurations_competing_plans(self, catalog):
        # Non-covering seek and covering variants compete for the query.
        catalog.add_index(
            IndexSpec("hx_city", "people", ("city",)), hypothetical=True
        )
        catalog.add_index(
            IndexSpec(
                "hx_city_cov",
                "people",
                ("city",),
                include_columns=("salary",),
            ),
            hypothetical=True,
        )
        whatif = WhatIfOptimizer(catalog)
        configs = whatif.atomic_configurations(
            city_salary_query(), ["hx_city", "hx_city_cov"]
        )
        index_sets = {tuple(sorted(c.indexes)) for c in configs}
        assert ("hx_city_cov",) in index_sets
        assert ("hx_city",) in index_sets  # surfaced by the removal loop
        best = configs[0]
        assert best.indexes == frozenset({"hx_city_cov"})

    def test_atomic_configurations_sorted_by_speedup(self, catalog):
        catalog.add_index(
            IndexSpec("hx_city", "people", ("city",)), hypothetical=True
        )
        catalog.add_index(
            IndexSpec(
                "hx_city_cov",
                "people",
                ("city",),
                include_columns=("salary",),
            ),
            hypothetical=True,
        )
        whatif = WhatIfOptimizer(catalog)
        configs = whatif.atomic_configurations(
            city_salary_query(), ["hx_city", "hx_city_cov"]
        )
        speedups = [c.speedup for c in configs]
        assert speedups == sorted(speedups, reverse=True)

    def test_no_useful_index_yields_empty(self, catalog):
        catalog.add_index(
            IndexSpec("hx_name", "people", ("name",)), hypothetical=True
        )
        whatif = WhatIfOptimizer(catalog)
        configs = whatif.atomic_configurations(
            city_salary_query(), ["hx_name"]
        )
        assert configs == []


class TestBuildCostModel:
    def test_base_cost_positive_and_monotone_in_width(self, catalog):
        model = BuildCostModel(catalog)
        narrow = IndexSpec("ix_a", "people", ("city",))
        wide = IndexSpec(
            "ix_b", "people", ("city",), include_columns=("name", "salary")
        )
        assert 0 < model.base_cost(narrow) < model.base_cost(wide)

    def test_covering_helper_cheapens_build(self, catalog):
        # The paper's example: i1(City) built from i2(City, Salary).
        model = BuildCostModel(catalog)
        narrow = IndexSpec("i1", "people", ("city",))
        wide = IndexSpec(
            "i2", "people", ("city", "salary")
        )
        assert model.cost_with_helper(narrow, wide) < model.base_cost(narrow)

    def test_prefix_helper_skips_sort_entirely(self, catalog):
        model = BuildCostModel(catalog)
        narrow = IndexSpec("i1", "people", ("city",))
        wide = IndexSpec("i2", "people", ("city", "salary"))
        unrelated = IndexSpec(
            "i3", "people", ("salary",), include_columns=("city",)
        )
        # Prefix match (no sort) must beat covering-only (partial sort).
        assert model.cost_with_helper(narrow, wide) < model.cost_with_helper(
            narrow, unrelated
        )

    def test_helper_on_other_table_ignored(self, catalog):
        catalog.add_table(
            Table("other", [Column("x", distinct=10)], row_count=100)
        )
        model = BuildCostModel(catalog)
        spec = IndexSpec("ix", "people", ("city",))
        helper = IndexSpec("hx", "other", ("x",))
        assert model.cost_with_helper(spec, helper) == pytest.approx(
            model.base_cost(spec)
        )

    def test_saving_nonnegative_and_bounded(self, catalog):
        model = BuildCostModel(catalog)
        narrow = IndexSpec("i1", "people", ("city",))
        wide = IndexSpec("i2", "people", ("city", "salary"))
        saving = model.saving(narrow, wide)
        assert 0 <= saving < model.base_cost(narrow)

    def test_negligible_saving_dropped(self, catalog):
        model = BuildCostModel(catalog)
        a = IndexSpec("ia", "people", ("salary",))
        b = IndexSpec("ib", "people", ("age",))
        # Unrelated single-column indexes: no covering, no sort help.
        assert model.saving(a, b) == 0.0

    def test_large_saving_range_matches_paper(self, catalog):
        # The paper reports up to ~80% single-index build savings; a
        # narrow index built from a covering prefix helper on a wide
        # table should fall in that range.
        model = BuildCostModel(catalog)
        narrow = IndexSpec("i1", "people", ("city",))
        wide = IndexSpec("i2", "people", ("city", "salary"))
        fraction = model.saving(narrow, wide) / model.base_cost(narrow)
        assert 0.3 <= fraction <= 0.95

    def test_cost_with_helpers_takes_best(self, catalog):
        model = BuildCostModel(catalog)
        target = IndexSpec("i1", "people", ("city",))
        good = IndexSpec("i2", "people", ("city", "salary"))
        useless = IndexSpec("i3", "people", ("age",))
        best = model.cost_with_helpers(target, [useless, good])
        assert best == pytest.approx(model.cost_with_helper(target, good))
