"""Unit tests for the row-level executor and estimator validation."""

from __future__ import annotations

import pytest

from repro.dbms.catalog import Catalog
from repro.dbms.executor import DataStore, generate_rows
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query
from repro.dbms.schema import Column, Table
from repro.dbms.stats import filtered_rows
from repro.errors import QueryError


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.add_table(
        Table(
            "dim",
            [
                Column("dim_id", width=8, distinct=200),
                Column("category", width=8, distinct=10),
            ],
            row_count=200,
        )
    )
    cat.add_table(
        Table(
            "fact",
            [
                Column("fact_id", width=8, distinct=20_000),
                Column("dim_id", width=8, distinct=200),
                Column("value", width=8, distinct=1_000),
            ],
            row_count=20_000,
        )
    )
    return cat


class TestGenerateRows:
    def test_shapes_and_ranges(self, catalog):
        table = catalog.table("dim")
        rows = generate_rows(table, seed=0)
        assert set(rows) == {"dim_id", "category"}
        assert len(rows["dim_id"]) == 200
        assert rows["category"].min() >= 0
        assert rows["category"].max() < 10

    def test_max_rows_cap(self, catalog):
        table = catalog.table("fact")
        rows = generate_rows(table, seed=0, max_rows=500)
        assert len(rows["fact_id"]) == 500

    def test_deterministic(self, catalog):
        table = catalog.table("dim")
        first = generate_rows(table, seed=1)
        second = generate_rows(table, seed=1)
        assert (first["dim_id"] == second["dim_id"]).all()


class TestDataStore:
    def test_row_counts(self, catalog):
        store = DataStore(catalog, seed=0, max_rows=5_000)
        assert store.row_count("dim") == 200
        assert store.row_count("fact") == 5_000

    def test_unknown_table_raises(self, catalog):
        store = DataStore(catalog, seed=0)
        with pytest.raises(QueryError):
            store.rows("ghost")

    def test_filter_query(self, catalog):
        store = DataStore(catalog, seed=0)
        query = Query(
            "cat",
            tables=["dim"],
            predicates=[Predicate("dim", "category", PredicateOp.EQ)],
        )
        result = store.execute(query)
        assert result.rows_scanned == 200
        assert 0 <= result.rows_out <= 200

    def test_eq_filter_selectivity_tracks_estimate(self, catalog):
        store = DataStore(catalog, seed=0)
        query = Query(
            "cat",
            tables=["dim"],
            predicates=[Predicate("dim", "category", PredicateOp.EQ)],
        )
        estimate = filtered_rows(
            catalog.table("dim"), list(query.predicates)
        )
        actual = store.execute(query).per_table_selected["dim"]
        # 10 categories over 200 rows: expect ~20; allow generous noise.
        assert actual == pytest.approx(estimate, rel=1.0)

    def test_join_query_row_counts(self, catalog):
        store = DataStore(catalog, seed=0, max_rows=5_000)
        query = Query(
            "join",
            tables=["dim", "fact"],
            joins=[JoinEdge("dim", "dim_id", "fact", "dim_id")],
        )
        result = store.execute(query)
        # Every fact row matches some dim row on average; output row
        # count must be on the order of the fact rows.
        assert result.rows_out > 0

    def test_group_by_reduces_rows(self, catalog):
        store = DataStore(catalog, seed=0)
        grouped = Query(
            "g",
            tables=["dim"],
            group_by=[("dim", "category")],
        )
        result = store.execute(grouped)
        assert result.rows_out <= 10  # at most one row per category

    def test_range_filter(self, catalog):
        store = DataStore(catalog, seed=0)
        query = Query(
            "r",
            tables=["dim"],
            predicates=[
                Predicate(
                    "dim", "category", PredicateOp.RANGE, selectivity=0.3
                )
            ],
        )
        result = store.execute(query)
        assert result.per_table_selected["dim"] == pytest.approx(
            60, rel=0.5
        )

    def test_in_filter(self, catalog):
        store = DataStore(catalog, seed=0)
        query = Query(
            "i",
            tables=["dim"],
            predicates=[
                Predicate("dim", "category", PredicateOp.IN, values=3)
            ],
        )
        result = store.execute(query)
        assert result.per_table_selected["dim"] == pytest.approx(
            60, rel=0.6
        )
