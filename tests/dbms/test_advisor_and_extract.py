"""Unit tests for the index advisor and the instance extractor."""

from __future__ import annotations

import pytest

from repro.core.validation import lint_instance
from repro.dbms.advisor import AdvisorConfig, IndexAdvisor, generate_candidates
from repro.dbms.catalog import Catalog
from repro.dbms.extract import ExtractionConfig, InstanceExtractor
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query, Workload
from repro.dbms.schema import Column, IndexSpec, Table
from repro.errors import CatalogError


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.add_table(
        Table(
            "customer",
            [
                Column("custid", width=8, distinct=300_000),
                Column("country", width=8, distinct=150),
                Column("segment", width=8, distinct=5),
                Column("balance", width=8, distinct=50_000),
            ],
            row_count=300_000,
        )
    )
    cat.add_table(
        Table(
            "orders",
            [
                Column("orderid", width=8, distinct=1_500_000),
                Column("custid", width=8, distinct=300_000),
                Column("total", width=8, distinct=100_000),
                Column("status", width=4, distinct=3),
            ],
            row_count=1_500_000,
        )
    )
    return cat


@pytest.fixture
def workload(catalog) -> Workload:
    return Workload(
        "shop",
        [
            Query(
                "by_country",
                tables=["customer"],
                predicates=[
                    Predicate("customer", "country", PredicateOp.EQ)
                ],
                select=[("customer", "balance")],
            ),
            Query(
                "orders_of_segment",
                tables=["customer", "orders"],
                predicates=[
                    Predicate("customer", "segment", PredicateOp.EQ),
                    Predicate("orders", "status", PredicateOp.EQ),
                ],
                joins=[JoinEdge("customer", "custid", "orders", "custid")],
                select=[("orders", "total")],
            ),
        ],
    )


class TestGenerateCandidates:
    def test_candidates_reference_real_columns(self, catalog, workload):
        candidates = generate_candidates(catalog, workload)
        assert candidates
        for spec in candidates:
            table = catalog.table(spec.table)
            for column in spec.all_columns:
                assert table.has_column(column)

    def test_key_only_and_covering_variants(self, catalog, workload):
        candidates = generate_candidates(catalog, workload)
        on_customer = [c for c in candidates if c.table == "customer"]
        keys = {c.key_columns for c in on_customer}
        assert ("country",) in keys
        covering = [
            c
            for c in on_customer
            if c.key_columns == ("country",) and c.include_columns
        ]
        assert covering  # at least one covering variant

    def test_join_probe_candidate(self, catalog, workload):
        candidates = generate_candidates(catalog, workload)
        join_keyed = [
            c
            for c in candidates
            if c.table == "orders" and c.key_columns[0] == "custid"
        ]
        assert join_keyed

    def test_no_duplicates(self, catalog, workload):
        candidates = generate_candidates(catalog, workload)
        signatures = {
            (c.table, c.key_columns, c.include_columns) for c in candidates
        }
        assert len(signatures) == len(candidates)

    def test_max_key_columns_respected(self, catalog, workload):
        config = AdvisorConfig(max_key_columns=1)
        candidates = generate_candidates(catalog, workload, config)
        assert all(len(c.key_columns) <= 1 for c in candidates)


class TestIndexAdvisor:
    def test_select_improves_workload(self, catalog, workload):
        advisor = IndexAdvisor(catalog, workload)
        selected = advisor.select()
        assert selected
        base = advisor._workload_cost([])
        tuned = advisor._workload_cost([s.name for s in selected])
        assert tuned < base

    def test_max_indexes_budget(self, catalog, workload):
        advisor = IndexAdvisor(
            catalog, workload, AdvisorConfig(max_indexes=2)
        )
        assert len(advisor.select()) <= 2

    def test_storage_budget(self, catalog, workload):
        tight = AdvisorConfig(storage_budget_bytes=4 * 8192)
        advisor = IndexAdvisor(catalog, workload, tight)
        selected = advisor.select()
        total = sum(
            s.size_bytes(catalog.table(s.table)) for s in selected
        )
        assert total <= tight.storage_budget_bytes

    def test_registers_candidates_as_hypothetical(self, catalog, workload):
        advisor = IndexAdvisor(catalog, workload)
        specs = advisor.register_candidates()
        assert all(catalog.is_hypothetical(s.name) for s in specs)


class TestInstanceExtractor:
    def _extract(self, catalog, workload, **config):
        advisor = IndexAdvisor(catalog, workload)
        suggested = advisor.select()
        extractor = InstanceExtractor(
            catalog, workload, ExtractionConfig(**config)
        )
        return suggested, extractor.extract(suggested, name="shop")

    def test_instance_shape(self, catalog, workload):
        suggested, instance = self._extract(catalog, workload)
        assert instance.n_indexes == len(suggested)
        assert instance.n_queries == len(workload)
        assert instance.n_plans > 0

    def test_index_costs_positive(self, catalog, workload):
        _, instance = self._extract(catalog, workload)
        assert all(ix.create_cost > 0 for ix in instance.indexes)

    def test_query_base_runtimes_match_whatif(self, catalog, workload):
        _, instance = self._extract(catalog, workload)
        assert all(q.base_runtime > 0 for q in instance.queries)

    def test_plan_speedups_bounded_by_base(self, catalog, workload):
        _, instance = self._extract(catalog, workload)
        for plan in instance.plans:
            base = instance.queries[plan.query_id].base_runtime
            assert plan.speedup <= base + 1e-9

    def test_unknown_suggested_index_raises(self, catalog, workload):
        extractor = InstanceExtractor(catalog, workload)
        ghost = IndexSpec("ghost", "customer", ("country",))
        with pytest.raises(CatalogError):
            extractor.extract([ghost])

    def test_instance_lints_clean_enough(self, catalog, workload):
        _, instance = self._extract(catalog, workload)
        warnings = lint_instance(instance)
        # Extraction must not produce duplicate or dominated plans.
        assert not [w for w in warnings if "duplicate" in w]
        assert not [w for w in warnings if "dominated" in w]

    def test_build_interactions_within_table(self, catalog, workload):
        _, instance = self._extract(catalog, workload)
        names = {ix.index_id: ix.name for ix in instance.indexes}
        spec_table = {
            s.name: s.table
            for s in catalog.indexes
        }
        for bi in instance.build_interactions:
            assert (
                spec_table[names[bi.target]] == spec_table[names[bi.helper]]
            )

    def test_clustered_precedence_rules(self, catalog, workload):
        catalog.add_index(
            IndexSpec(
                "cx_customer",
                "customer",
                ("custid",),
                clustered=True,
            ),
            hypothetical=True,
        )
        advisor = IndexAdvisor(catalog, workload)
        suggested = advisor.select()
        clustered = catalog.index("cx_customer")
        if all(s.name != "cx_customer" for s in suggested):
            suggested = list(suggested) + [clustered]
        extractor = InstanceExtractor(catalog, workload)
        instance = extractor.extract(suggested)
        same_table = [
            s
            for s in suggested
            if s.table == "customer" and s.name != "cx_customer"
        ]
        if same_table:
            assert instance.precedences
