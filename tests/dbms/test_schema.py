"""Unit tests for schema objects: Column, Table, IndexSpec."""

from __future__ import annotations

import pytest

from repro.dbms.schema import PAGE_BYTES, Column, IndexSpec, Table
from repro.errors import CatalogError, ValidationError


@pytest.fixture
def people() -> Table:
    return Table(
        "people",
        columns=[
            Column("id", width=8, distinct=100_000),
            Column("city", width=16, distinct=500),
            Column("salary", width=8, distinct=5_000),
        ],
        row_count=100_000,
    )


class TestColumn:
    def test_defaults(self):
        column = Column("c")
        assert column.width == 8
        assert column.distinct == 100

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Column("")

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValidationError):
            Column("c", width=0)

    def test_nonpositive_distinct_rejected(self):
        with pytest.raises(ValidationError):
            Column("c", distinct=0)


class TestTable:
    def test_column_lookup(self, people):
        assert people.column("city").distinct == 500
        assert people.has_column("salary")
        assert not people.has_column("bonus")

    def test_unknown_column_raises(self, people):
        with pytest.raises(CatalogError, match="no column"):
            people.column("bonus")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError, match="duplicate"):
            Table("t", [Column("a"), Column("a")], row_count=10)

    def test_negative_rows_rejected(self):
        with pytest.raises(ValidationError):
            Table("t", [Column("a")], row_count=-1)

    def test_row_width_includes_overhead(self, people):
        assert people.row_width == 16 + 8 + 16 + 8

    def test_pages_scale_with_rows(self, people):
        wider = Table("w", list(people.columns), row_count=1_000_000)
        assert wider.pages > people.pages

    def test_empty_table_has_one_page(self):
        table = Table("t", [Column("a")], row_count=0)
        assert table.pages == 1

    def test_pages_roughly_bytes_over_page_size(self, people):
        expected = people.row_count * people.row_width / PAGE_BYTES
        assert people.pages == pytest.approx(expected, rel=0.01)


class TestIndexSpec:
    def test_all_columns_order(self):
        spec = IndexSpec("ix", "t", ("a", "b"), include_columns=("c",))
        assert spec.all_columns == ("a", "b", "c")

    def test_needs_key_columns(self):
        with pytest.raises(ValidationError):
            IndexSpec("ix", "t", ())

    def test_key_include_overlap_rejected(self):
        with pytest.raises(ValidationError, match="both"):
            IndexSpec("ix", "t", ("a",), include_columns=("a",))

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            IndexSpec("ix", "t", ("a", "a"))

    def test_covers(self):
        spec = IndexSpec("ix", "t", ("a",), include_columns=("b",))
        assert spec.covers(["a"])
        assert spec.covers(["a", "b"])
        assert not spec.covers(["a", "z"])

    def test_entry_width_narrower_than_row(self, people):
        spec = IndexSpec("ix_city", "people", ("city",))
        assert spec.entry_width(people) < people.row_width + 16

    def test_clustered_entry_is_full_row(self, people):
        spec = IndexSpec("cx", "people", ("id",), clustered=True)
        assert spec.entry_width(people) == people.row_width

    def test_leaf_pages_fewer_for_narrow_index(self, people):
        narrow = IndexSpec("ix_city", "people", ("city",))
        wide = IndexSpec(
            "ix_all", "people", ("city",), include_columns=("id", "salary")
        )
        assert narrow.leaf_pages(people) < wide.leaf_pages(people)
        assert narrow.leaf_pages(people) < people.pages

    def test_size_bytes(self, people):
        spec = IndexSpec("ix_city", "people", ("city",))
        assert spec.size_bytes(people) == spec.leaf_pages(people) * PAGE_BYTES

    def test_key_prefix_of(self):
        short = IndexSpec("a", "t", ("x",))
        longer = IndexSpec("b", "t", ("x", "y"))
        other = IndexSpec("c", "t", ("y", "x"))
        assert short.key_prefix_of(longer)
        assert not longer.key_prefix_of(short)
        assert not short.key_prefix_of(other)
        assert short.key_prefix_of(short)
