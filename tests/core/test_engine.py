"""Unit tests for the shared incremental evaluation engine.

The engine is the production evaluation backend of every solver; these
tests pin its three capabilities (delta evaluation, built-set memo,
bound provider) against the reference :class:`ObjectiveEvaluator`.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.engine import EvalEngine, PrefixCursor, TranspositionTable
from repro.core.objective import ObjectiveEvaluator, PrefixCachedEvaluator
from repro.errors import ValidationError

from tests.conftest import make_paper_example, small_synthetic


@pytest.fixture
def instance():
    return small_synthetic(seed=11, n=9, build_interaction_rate=1.5)


@pytest.fixture
def engine(instance):
    return EvalEngine(instance)


class TestFullEvaluation:
    def test_matches_reference(self, instance, engine):
        reference = ObjectiveEvaluator(instance)
        rng = random.Random(0)
        for _ in range(10):
            order = list(range(instance.n_indexes))
            rng.shuffle(order)
            assert engine.evaluate(order) == pytest.approx(
                reference.evaluate(order), rel=1e-12
            )

    def test_rejects_non_permutation(self, engine):
        with pytest.raises(ValidationError):
            engine.evaluate([0, 0, 1])

    def test_prefix_matches_reference(self, instance, engine):
        reference = ObjectiveEvaluator(instance)
        prefix = [3, 0, 5]
        assert engine.evaluate_prefix(prefix) == pytest.approx(
            reference.evaluate_prefix(prefix)
        )


class TestDeltaEvaluation:
    def test_swap_parity(self, instance, engine):
        reference = ObjectiveEvaluator(instance)
        n = instance.n_indexes
        base = list(range(n))
        engine.set_base(base)
        for pos_a in range(n):
            for pos_b in range(pos_a, n):
                candidate = base[:]
                candidate[pos_a], candidate[pos_b] = (
                    candidate[pos_b],
                    candidate[pos_a],
                )
                assert engine.eval_swap(pos_a, pos_b) == pytest.approx(
                    reference.evaluate(candidate), rel=1e-9
                )

    def test_relocate_and_insert_parity(self, instance, engine):
        reference = ObjectiveEvaluator(instance)
        n = instance.n_indexes
        rng = random.Random(1)
        base = list(range(n))
        rng.shuffle(base)
        engine.set_base(base)
        for src in range(n):
            for dst in range(n):
                candidate = base[:]
                moved = candidate.pop(src)
                candidate.insert(dst, moved)
                expected = reference.evaluate(candidate)
                assert engine.eval_relocate(src, dst) == pytest.approx(
                    expected, rel=1e-9
                )
                assert engine.eval_insert(base[src], dst) == pytest.approx(
                    expected, rel=1e-9
                )

    def test_evaluate_neighbor_parity(self, instance, engine):
        reference = ObjectiveEvaluator(instance)
        n = instance.n_indexes
        rng = random.Random(2)
        base = list(range(n))
        engine.set_base(base)
        for _ in range(30):
            order = base[:]
            rng.shuffle(order)
            assert engine.evaluate_neighbor(order) == pytest.approx(
                reference.evaluate(order), rel=1e-9
            )

    def test_neighbor_equal_to_base(self, instance, engine):
        base = list(range(instance.n_indexes))
        objective = engine.set_base(base)
        assert engine.evaluate_neighbor(base) == objective

    def test_rebase_replays_only_suffix(self, instance, engine):
        n = instance.n_indexes
        base = list(range(n))
        engine.set_base(base)
        replayed_before = engine.stats.prefix_steps
        moved = base[:]
        moved[n - 2], moved[n - 1] = moved[n - 1], moved[n - 2]
        engine.set_base(moved)
        # Only the two changed tail positions are replayed.
        assert engine.stats.prefix_steps - replayed_before == 2

    def test_delta_requires_base(self, engine):
        with pytest.raises(ValidationError):
            engine.eval_swap(0, 1)

    def test_neighbor_rejects_foreign_permutation(self, instance, engine):
        base = list(range(instance.n_indexes))
        engine.set_base(base)
        with pytest.raises(ValidationError):
            engine.evaluate_neighbor(base[:-1])

    def test_strictly_fewer_replayed_steps_than_prefix_cache(self, instance):
        """The acceptance claim: on one move sequence the engine replays
        strictly fewer steps than PrefixCachedEvaluator would."""
        engine = EvalEngine(instance)
        cached = PrefixCachedEvaluator(instance)
        n = instance.n_indexes
        base = list(range(n))
        engine.set_base(base)
        cached.set_base(base)
        rng = random.Random(3)
        for _ in range(50):
            pos_a = rng.randrange(n)
            pos_b = rng.randrange(n)
            assert engine.eval_swap(pos_a, pos_b) == pytest.approx(
                cached.evaluate_swap(pos_a, pos_b), rel=1e-9
            )
        stats = engine.stats
        assert stats.delta_evals >= 50
        assert stats.replayed_steps < stats.baseline_steps


class TestMemoLayer:
    def test_runtime_memo_hits(self, instance, engine):
        mask = engine.mask_of([0, 2, 4])
        first = engine.runtime_of(mask)
        misses = engine.stats.memo_misses
        second = engine.runtime_of(mask)
        assert first == second == instance.total_runtime({0, 2, 4})
        assert engine.stats.memo_misses == misses
        assert engine.stats.memo_hits >= 1

    def test_runtime_accepts_iterables(self, instance, engine):
        assert engine.runtime_of({1, 3}) == engine.runtime_of(
            engine.mask_of([1, 3])
        )

    def test_build_cost_matches_instance(self, instance, engine):
        for index_id in range(instance.n_indexes):
            built = {i for i in range(instance.n_indexes) if i != index_id}
            assert engine.build_cost_in(
                index_id, engine.mask_of(built)
            ) == pytest.approx(instance.build_cost(index_id, built))

    def test_transposition_dominance(self, engine):
        table = engine.new_transposition_table()
        assert not table.dominated(0b101, 10.0)  # first arrival recorded
        assert table.dominated(0b101, 10.0)  # equal arrival pruned
        assert table.dominated(0b101, 11.0)  # worse arrival pruned
        assert not table.dominated(0b101, 9.0)  # better arrival explores
        assert table.dominated(0b101, 9.5)  # ... and updates the record
        assert engine.stats.tt_prunes == 3
        assert engine.stats.tt_states == 1
        assert len(table) == 1

    def test_tables_are_independent(self, engine):
        first = engine.new_transposition_table()
        second = engine.new_transposition_table()
        assert not first.dominated(0b1, 1.0)
        assert not second.dominated(0b1, 2.0)  # separate searches


class TestPrefixCursor:
    def test_push_pop_roundtrip_is_exact(self, instance, engine):
        cursor = PrefixCursor(engine)
        cursor.push(0)
        objective_1 = cursor.objective
        runtime_1 = cursor.runtime
        cursor.push(1)
        cursor.push(2)
        cursor.pop()
        cursor.pop()
        # Bit-exact restore, not approximate.
        assert cursor.objective == objective_1
        assert cursor.runtime == runtime_1
        assert cursor.stack == (0,)

    def test_align_counts_pushes(self, instance, engine):
        cursor = PrefixCursor(engine)
        assert cursor.align([0, 1, 2]) == 3
        assert cursor.align([0, 1, 3]) == 1
        assert cursor.align([0, 1]) == 0
        assert cursor.depth == 2


class TestChunkedNeighbor:
    """Balanced-chunk decomposition and base snapshots in
    :meth:`EvalEngine.evaluate_neighbor` (the scattered-neighbor path
    LNS relaxations produce)."""

    @pytest.fixture
    def big_instance(self):
        return small_synthetic(seed=23, n=48, build_interaction_rate=1.5)

    @staticmethod
    def _scattered(base, rng, pairs=3, min_gap=18):
        """A permutation differing from ``base`` in a few distant spots."""
        order = base[:]
        n = len(order)
        positions = sorted(rng.sample(range(n - 1), pairs))
        for pos in positions:
            order[pos], order[pos + 1] = order[pos + 1], order[pos]
        del min_gap  # sampling over n=48 spreads pairs widely enough
        return order

    def test_scattered_neighbor_parity(self, big_instance):
        reference = ObjectiveEvaluator(big_instance)
        engine = EvalEngine(big_instance)
        rng = random.Random(7)
        base = list(range(big_instance.n_indexes))
        rng.shuffle(base)
        engine.set_base(base)
        # Enough far jumps to cross the lazy-snapshot threshold, so the
        # loop covers the contiguous fallback *and* the snapshot path.
        for _ in range(12):
            order = self._scattered(base, rng)
            assert engine.evaluate_neighbor(order) == pytest.approx(
                reference.evaluate(order), rel=1e-9
            )
        assert engine._snapshots is not None

    def test_snapshots_build_lazily(self, big_instance):
        engine = EvalEngine(big_instance)
        rng = random.Random(11)
        base = list(range(big_instance.n_indexes))
        engine.set_base(base)
        assert engine._snapshots is None
        # A single far jump does not pay the snapshot build cost...
        engine.evaluate_neighbor(self._scattered(base, rng))
        assert engine._snapshots is None
        # ...but a repeated far-jump pattern does.
        builds_at = None
        for attempt in range(2, 9):
            engine.evaluate_neighbor(self._scattered(base, rng))
            if engine._snapshots is not None:
                builds_at = attempt
                break
        assert builds_at is not None

    def test_rebase_invalidates_snapshots(self, big_instance):
        engine = EvalEngine(big_instance)
        rng = random.Random(13)
        base = list(range(big_instance.n_indexes))
        engine.set_base(base)
        for _ in range(6):
            engine.evaluate_neighbor(self._scattered(base, rng))
        assert engine._snapshots is not None
        moved = base[:]
        moved[-1], moved[-2] = moved[-2], moved[-1]
        engine.set_base(moved)
        assert engine._snapshots is None
        assert engine._far_jumps == 0

    def test_chunked_eval_still_counts_stats(self, big_instance):
        engine = EvalEngine(big_instance)
        rng = random.Random(17)
        base = list(range(big_instance.n_indexes))
        engine.set_base(base)
        for _ in range(8):
            engine.evaluate_neighbor(self._scattered(base, rng))
        stats = engine.stats
        assert stats.delta_evals == 8
        assert 0 < stats.replayed_steps < stats.baseline_steps


class TestStats:
    def test_evaluations_aggregate(self, instance, engine):
        base = list(range(instance.n_indexes))
        engine.set_base(base)
        engine.eval_swap(0, 1)
        engine.evaluate(base)
        engine.prefix_state([0])
        stats = engine.stats
        assert stats.evaluations == (
            stats.full_evals + stats.delta_evals + stats.prefix_evals
        )
        assert set(stats.as_dict()) >= {
            "delta_evals",
            "replayed_steps",
            "baseline_steps",
            "memo_hits",
        }

    def test_reset(self, instance, engine):
        engine.evaluate(list(range(instance.n_indexes)))
        engine.stats.reset()
        assert engine.stats.evaluations == 0

    def test_batch_counters_in_dict_and_reset(self, instance):
        engine = EvalEngine(instance, kernel="scalar")
        engine.set_base(list(range(instance.n_indexes)))
        engine.eval_all_swaps()
        stats = engine.stats
        assert stats.batch_evals == 1
        # The scalar kernel scores moves through eval_swap, so they are
        # counted as delta evals rather than vectorized batch moves.
        assert stats.batch_moves == 0
        assert set(stats.as_dict()) >= {
            "batch_evals",
            "batch_moves",
            "batch_numpy",
            "batch_numba",
        }
        stats.reset()
        assert stats.batch_evals == 0
        assert stats.evaluations == 0


class TestBoundProvider:
    def test_paper_example_bound_positive(self):
        instance = make_paper_example()
        engine = EvalEngine(instance)
        assert engine.suffix_bound(instance.total_base_runtime, 0) > 0.0

    def test_bound_zero_when_done(self, instance, engine):
        full = engine.mask_of(range(instance.n_indexes))
        assert engine.suffix_bound(engine.runtime_of(full), full) == 0.0

    def test_admissible_everywhere_small(self):
        instance = small_synthetic(seed=4, n=5)
        engine = EvalEngine(instance)
        reference = ObjectiveEvaluator(instance)
        for order in itertools.permutations(range(5)):
            total = reference.evaluate(list(order))
            for split in range(5):
                prefix = list(order[:split])
                objective, runtime, _ = reference.evaluate_prefix(prefix)
                bound = engine.suffix_bound(runtime, set(prefix))
                assert objective + bound <= total + 1e-6
