"""Unit tests for the problem-instance data model."""

from __future__ import annotations

import pytest

from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    PrecedenceRule,
    ProblemInstance,
    QueryDef,
)
from repro.errors import ValidationError

from tests.conftest import make_paper_example, make_tiny3


# ----------------------------------------------------------------------
# Value-object validation
# ----------------------------------------------------------------------
class TestIndexDef:
    def test_valid(self):
        ix = IndexDef(0, "ix", create_cost=5.0, size=10.0)
        assert ix.name == "ix"
        assert ix.create_cost == 5.0

    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            IndexDef(-1, "ix", create_cost=5.0)

    def test_zero_cost_rejected(self):
        with pytest.raises(ValidationError):
            IndexDef(0, "ix", create_cost=0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            IndexDef(0, "ix", create_cost=-1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            IndexDef(0, "ix", create_cost=1.0, size=-1.0)


class TestQueryDef:
    def test_valid(self):
        q = QueryDef(0, "q", base_runtime=10.0)
        assert q.weight == 1.0

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValidationError):
            QueryDef(0, "q", base_runtime=-1.0)

    def test_zero_runtime_allowed(self):
        assert QueryDef(0, "q", base_runtime=0.0).base_runtime == 0.0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValidationError):
            QueryDef(0, "q", base_runtime=1.0, weight=0.0)


class TestPlanDef:
    def test_indexes_coerced_to_frozenset(self):
        plan = PlanDef(0, 0, [1, 2, 2], 5.0)
        assert plan.indexes == frozenset({1, 2})

    def test_empty_plan_rejected(self):
        with pytest.raises(ValidationError):
            PlanDef(0, 0, frozenset(), 5.0)

    def test_nonpositive_speedup_rejected(self):
        with pytest.raises(ValidationError):
            PlanDef(0, 0, frozenset({1}), 0.0)


class TestBuildInteraction:
    def test_self_interaction_rejected(self):
        with pytest.raises(ValidationError):
            BuildInteraction(1, 1, 5.0)

    def test_nonpositive_saving_rejected(self):
        with pytest.raises(ValidationError):
            BuildInteraction(0, 1, 0.0)


class TestPrecedenceRule:
    def test_self_rule_rejected(self):
        with pytest.raises(ValidationError):
            PrecedenceRule(2, 2)

    def test_reason_stored(self):
        assert PrecedenceRule(0, 1, reason="mv").reason == "mv"


# ----------------------------------------------------------------------
# Instance-level validation
# ----------------------------------------------------------------------
class TestInstanceValidation:
    def test_non_dense_index_ids_rejected(self):
        with pytest.raises(ValidationError, match="dense"):
            ProblemInstance(
                indexes=[IndexDef(1, "a", 1.0)],
                queries=[QueryDef(0, "q", 1.0)],
                plans=[],
            )

    def test_non_dense_query_ids_rejected(self):
        with pytest.raises(ValidationError, match="dense"):
            ProblemInstance(
                indexes=[IndexDef(0, "a", 1.0)],
                queries=[QueryDef(3, "q", 1.0)],
                plans=[],
            )

    def test_plan_with_unknown_query_rejected(self):
        with pytest.raises(ValidationError, match="unknown query"):
            ProblemInstance(
                indexes=[IndexDef(0, "a", 1.0)],
                queries=[QueryDef(0, "q", 1.0)],
                plans=[PlanDef(0, 5, frozenset({0}), 0.5)],
            )

    def test_plan_with_unknown_index_rejected(self):
        with pytest.raises(ValidationError, match="unknown index"):
            ProblemInstance(
                indexes=[IndexDef(0, "a", 1.0)],
                queries=[QueryDef(0, "q", 1.0)],
                plans=[PlanDef(0, 0, frozenset({7}), 0.5)],
            )

    def test_speedup_exceeding_base_runtime_rejected(self):
        with pytest.raises(ValidationError, match="exceeds"):
            ProblemInstance(
                indexes=[IndexDef(0, "a", 1.0)],
                queries=[QueryDef(0, "q", 1.0)],
                plans=[PlanDef(0, 0, frozenset({0}), 2.0)],
            )

    def test_build_saving_must_be_below_create_cost(self):
        with pytest.raises(ValidationError, match="saving"):
            ProblemInstance(
                indexes=[IndexDef(0, "a", 1.0), IndexDef(1, "b", 1.0)],
                queries=[QueryDef(0, "q", 1.0)],
                plans=[],
                build_interactions=[BuildInteraction(0, 1, 1.0)],
            )

    def test_build_interaction_unknown_index_rejected(self):
        with pytest.raises(ValidationError, match="unknown index"):
            ProblemInstance(
                indexes=[IndexDef(0, "a", 1.0)],
                queries=[QueryDef(0, "q", 1.0)],
                plans=[],
                build_interactions=[BuildInteraction(0, 9, 0.5)],
            )

    def test_precedence_unknown_index_rejected(self):
        with pytest.raises(ValidationError, match="unknown index"):
            ProblemInstance(
                indexes=[IndexDef(0, "a", 1.0)],
                queries=[QueryDef(0, "q", 1.0)],
                plans=[],
                precedences=[PrecedenceRule(0, 4)],
            )


# ----------------------------------------------------------------------
# Lookups and derived quantities
# ----------------------------------------------------------------------
class TestLookups:
    def test_shape_properties(self, paper_example):
        assert paper_example.n_indexes == 2
        assert paper_example.n_queries == 1
        assert paper_example.n_plans == 2

    def test_plans_of_query(self, paper_example):
        assert list(paper_example.plans_of_query(0)) == [0, 1]

    def test_plans_containing(self, paper_example):
        assert list(paper_example.plans_containing(0)) == [0]
        assert list(paper_example.plans_containing(1)) == [1]

    def test_build_helpers_and_helped(self, paper_example):
        assert list(paper_example.build_helpers(0)) == [(1, 28.0)]
        assert list(paper_example.build_helpers(1)) == []
        assert list(paper_example.build_helped(1)) == [(0, 28.0)]

    def test_total_base_runtime_weights(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0)],
            queries=[
                QueryDef(0, "q0", base_runtime=10.0, weight=2.0),
                QueryDef(1, "q1", base_runtime=5.0, weight=1.0),
            ],
            plans=[],
        )
        assert instance.total_base_runtime == pytest.approx(25.0)

    def test_build_cost_without_helper(self, paper_example):
        assert paper_example.build_cost(0, built=set()) == pytest.approx(40.0)

    def test_build_cost_with_helper(self, paper_example):
        assert paper_example.build_cost(0, built={1}) == pytest.approx(12.0)

    def test_build_cost_accepts_any_iterable(self, paper_example):
        assert paper_example.build_cost(0, built=[1]) == pytest.approx(12.0)

    def test_build_cost_picks_best_helper(self):
        instance = ProblemInstance(
            indexes=[
                IndexDef(0, "a", 100.0),
                IndexDef(1, "b", 10.0),
                IndexDef(2, "c", 10.0),
            ],
            queries=[QueryDef(0, "q", 1.0)],
            plans=[],
            build_interactions=[
                BuildInteraction(0, 1, 20.0),
                BuildInteraction(0, 2, 60.0),
            ],
        )
        assert instance.build_cost(0, built={1, 2}) == pytest.approx(40.0)
        assert instance.build_cost(0, built={1}) == pytest.approx(80.0)

    def test_min_build_cost(self, paper_example):
        assert paper_example.min_build_cost(0) == pytest.approx(12.0)
        assert paper_example.min_build_cost(1) == pytest.approx(70.0)

    def test_total_create_cost(self, paper_example):
        assert paper_example.total_create_cost() == pytest.approx(110.0)

    def test_query_speedup_competing_interaction(self, paper_example):
        # Best available plan wins; plans never sum (constraint 3).
        assert paper_example.query_speedup(0, set()) == 0.0
        assert paper_example.query_speedup(0, {0}) == pytest.approx(5.0)
        assert paper_example.query_speedup(0, {1}) == pytest.approx(20.0)
        assert paper_example.query_speedup(0, {0, 1}) == pytest.approx(20.0)

    def test_query_speedup_join_interaction(self, join_example):
        # Neither index alone gives any speedup (query interaction).
        assert join_example.query_speedup(0, {0}) == 0.0
        assert join_example.query_speedup(0, {1}) == 0.0
        assert join_example.query_speedup(0, {0, 1}) == pytest.approx(150.0)

    def test_total_runtime(self, tiny3):
        assert tiny3.total_runtime(set()) == pytest.approx(120.0)
        assert tiny3.total_runtime({0}) == pytest.approx(108.0)
        assert tiny3.total_runtime({0, 1, 2}) == pytest.approx(90.0)

    def test_interaction_counts(self, join_example):
        counts = join_example.interaction_counts()
        assert counts["queries"] == 1
        assert counts["indexes"] == 2
        assert counts["plans"] == 1
        assert counts["largest_plan"] == 2
        assert counts["query_interactions"] == 1
        assert counts["build_interactions"] == 0

    def test_repr(self, tiny3):
        assert "tiny3" in repr(tiny3)


# ----------------------------------------------------------------------
# Instance surgery
# ----------------------------------------------------------------------
class TestRestrictToIndexes:
    def test_renumbers_densely(self, tiny3):
        sub = tiny3.restrict_to_indexes([0, 2])
        assert sub.n_indexes == 2
        assert [ix.name for ix in sub.indexes] == ["a", "c"]
        assert [ix.index_id for ix in sub.indexes] == [0, 1]

    def test_drops_plans_referencing_removed(self, tiny3):
        sub = tiny3.restrict_to_indexes([0, 2])
        assert sub.n_plans == 2
        assert all(
            member < sub.n_indexes for p in sub.plans for member in p.indexes
        )

    def test_keeps_queries(self, tiny3):
        sub = tiny3.restrict_to_indexes([0])
        assert sub.n_queries == tiny3.n_queries
        assert sub.total_base_runtime == pytest.approx(
            tiny3.total_base_runtime
        )

    def test_keeps_surviving_interactions(self, paper_example):
        sub = paper_example.restrict_to_indexes([0, 1])
        assert len(sub.build_interactions) == 1
        sub_without = paper_example.restrict_to_indexes([0])
        assert len(sub_without.build_interactions) == 0

    def test_precedences_remapped(self, precedence_example):
        sub = precedence_example.restrict_to_indexes([0, 2])
        assert len(sub.precedences) == 1
        rule = sub.precedences[0]
        assert (rule.before, rule.after) == (0, 1)

    def test_default_name(self, tiny3):
        assert tiny3.restrict_to_indexes([0]).name == "tiny3[1]"


class TestWithPlans:
    def test_plan_ids_renumbered(self, tiny3):
        shuffled = [tiny3.plans[2], tiny3.plans[0]]
        replaced = tiny3.with_plans(shuffled)
        assert [p.plan_id for p in replaced.plans] == [0, 1]
        assert replaced.n_plans == 2

    def test_indexes_untouched(self, tiny3):
        replaced = tiny3.with_plans(list(tiny3.plans))
        assert replaced.indexes == tiny3.indexes


class TestWithBuildInteractions:
    def test_replaces_interactions(self, paper_example):
        stripped = paper_example.with_build_interactions([])
        assert len(stripped.build_interactions) == 0
        assert stripped.min_build_cost(0) == pytest.approx(40.0)


class TestWithoutInteractions:
    def test_all_plans_become_singletons(self, join_example):
        flat = join_example.without_interactions()
        assert all(len(p.indexes) == 1 for p in flat.plans)

    def test_speedup_split_evenly(self, join_example):
        flat = join_example.without_interactions()
        # 150 split over the 2-index plan -> 75 each.
        speedups = sorted(p.speedup for p in flat.plans)
        assert speedups == [pytest.approx(75.0), pytest.approx(75.0)]

    def test_build_interactions_dropped(self, paper_example):
        flat = paper_example.without_interactions()
        assert len(flat.build_interactions) == 0

    def test_keeps_best_share_per_index(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0), IndexDef(1, "b", 1.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 30.0),
                PlanDef(1, 0, frozenset({0, 1}), 40.0),  # share 20 each
            ],
        )
        flat = instance.without_interactions()
        by_index = {next(iter(p.indexes)): p.speedup for p in flat.plans}
        assert by_index[0] == pytest.approx(30.0)  # 30 > 20
        assert by_index[1] == pytest.approx(20.0)
