"""Tests for the vectorized batch neighborhood kernels.

The contract under test: every batch kernel agrees *elementwise* with
the scalar delta path (``eval_swap`` / ``eval_relocate``), and the
vectorized feasibility masks agree cell-for-cell with the scalar
predicates.  Kernel selection degrades gracefully when optional
dependencies are missing.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.constraints import ConstraintSet
from repro.core import batch
from repro.core.batch import (
    HAVE_NUMBA,
    NUMPY_MIN_N,
    BatchNeighborhood,
    FlatInstance,
    relocate_feasibility_mask,
    resolve_kernel,
    swap_feasibility_mask,
)
from repro.core.engine import EvalEngine
from repro.solvers.localsearch.neighborhood import (
    relocate_feasible,
    swap_feasible,
)
from repro.workloads.generator import GeneratorConfig, generate_instance


def make_instance(seed: int, n: int = 12, **overrides):
    config = GeneratorConfig(
        n_indexes=n,
        n_queries=max(3, n // 2),
        multi_index_fraction=0.6,
        build_interaction_rate=1.5,
        **overrides,
    )
    return generate_instance(seed, config)


def shuffled(n: int, seed: int):
    order = list(range(n))
    random.Random(seed).shuffle(order)
    return order


def constraints_for(instance, extra_consecutive: bool = False):
    cons = ConstraintSet(instance.n_indexes)
    for rule in instance.precedences:
        cons.add_precedence(rule.before, rule.after)
    if extra_consecutive and instance.n_indexes >= 4:
        cons.add_consecutive(0, 1)
    return cons


# ----------------------------------------------------------------------
# FlatInstance lowering
# ----------------------------------------------------------------------
class TestFlatInstance:
    def test_arrays_mirror_instance(self):
        instance = make_instance(3, n=10)
        flat = FlatInstance(instance)
        assert flat.n == instance.n_indexes
        assert flat.n_plans == len(instance.plans)
        for pid, plan in enumerate(instance.plans):
            assert flat.plan_query[pid] == plan.query_id
            assert flat.plan_speedup[pid] == plan.speedup
            assert flat.plan_nmem[pid] == len(plan.indexes)
            members = set(
                int(v) for v in flat.plan_members[pid] if v >= 0
            )
            assert members == set(plan.indexes)
        for i in range(flat.n):
            assert list(flat.plans_of(i)) == list(
                instance.plans_containing(i)
            )
            assert flat.ctime[i] == instance.indexes[i].create_cost
            for helper, saving in instance.build_helpers(i):
                assert flat.cs[i, helper] == pytest.approx(saving)

    def test_queries_of_index_covers_plans(self):
        instance = make_instance(4, n=9)
        flat = FlatInstance(instance)
        for i in range(flat.n):
            expected = {
                instance.plans[pid].query_id
                for pid in instance.plans_containing(i)
            }
            assert set(flat.queries_of_index[i]) == expected


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------
class TestKernelSelection:
    def test_auto_splits_on_instance_size(self):
        assert resolve_kernel("auto", NUMPY_MIN_N - 1) == "scalar"
        assert resolve_kernel("auto", NUMPY_MIN_N) == "numpy"

    def test_explicit_kernels_respected(self):
        assert resolve_kernel("scalar", 500) == "scalar"
        assert resolve_kernel("numpy", 3) == "numpy"

    def test_numba_degrades_when_missing(self):
        resolved = resolve_kernel("numba", 100)
        assert resolved == ("numba" if HAVE_NUMBA else "numpy")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel("cuda", 10)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        instance = make_instance(0, n=6)
        assert EvalEngine(instance).batch_kernel() == "numpy"

    def test_engine_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        instance = make_instance(0, n=6)
        assert EvalEngine(instance, kernel="scalar").batch_kernel() == "scalar"


# ----------------------------------------------------------------------
# Swap kernel parity
# ----------------------------------------------------------------------
class TestSwapParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_matrix_matches_scalar_eval_swap(self, seed):
        n = 5 + (seed % 3) * 4
        instance = make_instance(seed, n=n)
        order = shuffled(n, seed)
        engine = EvalEngine(instance)
        engine.set_base(order)
        neigh = BatchNeighborhood(FlatInstance(instance), order)
        matrix = neigh.score_swap_neighborhood()
        for a in range(n):
            for b in range(n):
                assert matrix[a, b] == pytest.approx(
                    engine.eval_swap(a, b), rel=1e-9, abs=1e-7
                )

    def test_diagonal_is_base_objective(self):
        instance = make_instance(1, n=8)
        order = shuffled(8, 1)
        engine = EvalEngine(instance)
        base = engine.set_base(order)
        neigh = BatchNeighborhood(FlatInstance(instance), order)
        matrix = neigh.score_swap_neighborhood()
        assert np.allclose(np.diag(matrix), base)
        assert neigh.base_objective == pytest.approx(base)

    def test_matrix_is_symmetric(self):
        instance = make_instance(2, n=10)
        neigh = BatchNeighborhood(FlatInstance(instance), shuffled(10, 2))
        matrix = neigh.score_swap_neighborhood()
        assert np.allclose(matrix, matrix.T)


# ----------------------------------------------------------------------
# Insert kernel parity
# ----------------------------------------------------------------------
class TestInsertParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_vector_matches_scalar_eval_relocate(self, seed):
        n = 6 + (seed % 3) * 3
        instance = make_instance(seed + 50, n=n)
        order = shuffled(n, seed)
        engine = EvalEngine(instance)
        engine.set_base(order)
        neigh = BatchNeighborhood(FlatInstance(instance), order)
        for index_id in range(n):
            src = order.index(index_id)
            vector = neigh.score_insert_neighborhood(index_id)
            for dst in range(n):
                assert vector[dst] == pytest.approx(
                    engine.eval_relocate(src, dst), rel=1e-9, abs=1e-7
                )


# ----------------------------------------------------------------------
# Feasibility masks
# ----------------------------------------------------------------------
class TestFeasibilityMasks:
    @pytest.mark.parametrize("seed", range(6))
    def test_swap_mask_matches_scalar_predicate(self, seed):
        n = 8 + (seed % 2) * 5
        instance = make_instance(seed, n=n, precedence_rate=3.0)
        cons = constraints_for(instance, extra_consecutive=seed % 2 == 0)
        order = cons.topological_order()
        mask = swap_feasibility_mask(order, cons, swap_feasible)
        for a in range(n):
            for b in range(n):
                assert bool(mask[a, b]) == swap_feasible(order, a, b, cons)

    @pytest.mark.parametrize("seed", range(6))
    def test_relocate_mask_matches_scalar_predicate(self, seed):
        n = 8 + (seed % 2) * 5
        instance = make_instance(seed + 20, n=n, precedence_rate=3.0)
        cons = constraints_for(instance, extra_consecutive=seed % 2 == 0)
        order = cons.topological_order()
        for src in range(n):
            mask = relocate_feasibility_mask(
                order, src, cons, relocate_feasible
            )
            for dst in range(n):
                assert bool(mask[dst]) == relocate_feasible(
                    order, src, dst, cons
                )

    def test_no_constraints_all_feasible(self):
        mask = swap_feasibility_mask(list(range(7)), None)
        assert mask.all()


# ----------------------------------------------------------------------
# Engine batch API
# ----------------------------------------------------------------------
class TestEngineBatchAPI:
    def test_kernels_agree_on_feasible_cells(self):
        instance = make_instance(7, n=11, precedence_rate=2.0)
        cons = constraints_for(instance)
        order = cons.topological_order()
        results = {}
        for kernel in ("scalar", "numpy"):
            engine = EvalEngine(instance, kernel=kernel)
            engine.set_base(order)
            results[kernel] = engine.eval_all_swaps(cons)
        obj_s, feas_s = results["scalar"]
        obj_v, feas_v = results["numpy"]
        assert np.array_equal(np.asarray(feas_s), np.asarray(feas_v))
        n = instance.n_indexes
        for a in range(n):
            for b in range(n):
                if feas_s[a][b]:
                    assert obj_s[a][b] == pytest.approx(
                        obj_v[a][b], rel=1e-9, abs=1e-7
                    )

    def test_insert_kernels_agree_on_feasible_cells(self):
        instance = make_instance(8, n=10, precedence_rate=2.0)
        cons = constraints_for(instance)
        order = cons.topological_order()
        index_id = order[3]
        results = {}
        for kernel in ("scalar", "numpy"):
            engine = EvalEngine(instance, kernel=kernel)
            engine.set_base(order)
            results[kernel] = engine.eval_all_inserts(index_id, cons)
        obj_s, feas_s = results["scalar"]
        obj_v, feas_v = results["numpy"]
        assert np.array_equal(np.asarray(feas_s), np.asarray(feas_v))
        for dst in range(instance.n_indexes):
            if feas_s[dst]:
                assert obj_s[dst] == pytest.approx(
                    obj_v[dst], rel=1e-9, abs=1e-7
                )

    def test_stats_count_batch_work(self):
        instance = make_instance(9, n=9)
        n = instance.n_indexes
        engine = EvalEngine(instance, kernel="numpy")
        engine.set_base(shuffled(n, 9))
        engine.eval_all_swaps()
        engine.eval_all_inserts(0)
        stats = engine.stats
        assert stats.batch_evals == 2
        assert stats.batch_numpy == 2
        assert stats.batch_moves == n * (n - 1) // 2 + n
        assert stats.evaluations >= stats.batch_moves
        as_dict = stats.as_dict()
        for key in ("batch_evals", "batch_moves", "batch_numpy", "batch_numba"):
            assert isinstance(as_dict[key], int)

    def test_scalar_kernel_counts_delta_evals_instead(self):
        instance = make_instance(10, n=8)
        engine = EvalEngine(instance, kernel="scalar")
        engine.set_base(shuffled(8, 10))
        engine.eval_all_swaps()
        assert engine.stats.batch_evals == 1
        assert engine.stats.batch_moves == 0
        assert engine.stats.delta_evals == 8 * 7 // 2

    def test_batch_cache_invalidated_on_rebase(self):
        instance = make_instance(11, n=9)
        engine = EvalEngine(instance, kernel="numpy")
        order_a = shuffled(9, 1)
        order_b = shuffled(9, 2)
        engine.set_base(order_a)
        matrix_a, _ = engine.eval_all_swaps()
        engine.set_base(order_b)
        matrix_b, _ = engine.eval_all_swaps()
        check = EvalEngine(instance)
        check.set_base(order_b)
        assert matrix_b[0, 1] == pytest.approx(
            check.eval_swap(0, 1), rel=1e-9
        )
        # and the first matrix still belongs to the first base
        check.set_base(order_a)
        assert matrix_a[0, 1] == pytest.approx(
            check.eval_swap(0, 1), rel=1e-9
        )


# ----------------------------------------------------------------------
# Optional numba kernel
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_numba_matches_numpy(self, seed):
        n = 10
        instance = make_instance(seed + 70, n=n)
        order = shuffled(n, seed)
        flat = FlatInstance(instance)
        neigh = BatchNeighborhood(flat, order)
        numpy_matrix = neigh.score_swap_neighborhood()
        numba_matrix = batch.numba_swap_neighborhood(flat, neigh)
        assert np.allclose(numpy_matrix, numba_matrix, rtol=1e-9, atol=1e-7)


class TestNumbaFallback:
    def test_numba_request_still_works_without_numba(self):
        instance = make_instance(12, n=9)
        engine = EvalEngine(instance, kernel="numba")
        engine.set_base(shuffled(9, 12))
        matrix, _ = engine.eval_all_swaps()
        check = EvalEngine(instance)
        check.set_base(engine.base_order)
        assert matrix[2, 5] == pytest.approx(check.eval_swap(2, 5), rel=1e-9)
