"""Unit tests for semantic instance/solution validation."""

from __future__ import annotations

import pytest

from repro.core.instance import (
    IndexDef,
    PlanDef,
    PrecedenceRule,
    ProblemInstance,
    QueryDef,
)
from repro.core.validation import (
    check_order_feasible,
    check_precedence_feasibility,
    lint_instance,
)
from repro.errors import InfeasibleError, ValidationError

from tests.conftest import make_paper_example, make_precedence_example


def _instance(plans, indexes=None, precedences=()):
    indexes = indexes or [
        IndexDef(0, "a", 1.0),
        IndexDef(1, "b", 1.0),
        IndexDef(2, "c", 1.0),
    ]
    return ProblemInstance(
        indexes=indexes,
        queries=[QueryDef(0, "q", 100.0)],
        plans=plans,
        precedences=precedences,
    )


class TestLint:
    def test_clean_instance_has_no_warnings(self):
        instance = _instance(
            [
                PlanDef(0, 0, frozenset({0}), 10.0),
                PlanDef(1, 0, frozenset({1}), 20.0),
                PlanDef(2, 0, frozenset({2}), 30.0),
            ]
        )
        assert lint_instance(instance) == []

    def test_duplicate_plan_flagged(self):
        instance = _instance(
            [
                PlanDef(0, 0, frozenset({0}), 10.0),
                PlanDef(1, 0, frozenset({0}), 12.0),
                PlanDef(2, 0, frozenset({1}), 1.0),
                PlanDef(3, 0, frozenset({2}), 1.0),
            ]
        )
        assert any("duplicate plan" in w for w in lint_instance(instance))

    def test_dominated_plan_flagged(self):
        instance = _instance(
            [
                PlanDef(0, 0, frozenset({0}), 10.0),
                PlanDef(1, 0, frozenset({0, 1}), 5.0),  # superset, worse
                PlanDef(2, 0, frozenset({2}), 1.0),
            ]
        )
        assert any("dominated" in w for w in lint_instance(instance))

    def test_useless_index_flagged(self):
        instance = _instance(
            [
                PlanDef(0, 0, frozenset({0}), 10.0),
                PlanDef(1, 0, frozenset({1}), 20.0),
            ]
        )
        warnings = lint_instance(instance)
        assert any("index 2" in w and "overhead" in w for w in warnings)

    def test_paper_example_clean(self):
        assert lint_instance(make_paper_example()) == []


class TestPrecedenceFeasibility:
    def test_acyclic_ok(self):
        check_precedence_feasibility(make_precedence_example())

    def test_cycle_detected(self):
        instance = _instance(
            [PlanDef(0, 0, frozenset({0}), 1.0),
             PlanDef(1, 0, frozenset({1}), 1.0),
             PlanDef(2, 0, frozenset({2}), 1.0)],
            precedences=[
                PrecedenceRule(0, 1),
                PrecedenceRule(1, 2),
                PrecedenceRule(2, 0),
            ],
        )
        with pytest.raises(InfeasibleError, match="cycle"):
            check_precedence_feasibility(instance)

    def test_two_node_cycle_detected(self):
        instance = _instance(
            [PlanDef(0, 0, frozenset({0}), 1.0),
             PlanDef(1, 0, frozenset({1}), 1.0),
             PlanDef(2, 0, frozenset({2}), 1.0)],
            precedences=[PrecedenceRule(0, 1), PrecedenceRule(1, 0)],
        )
        with pytest.raises(InfeasibleError):
            check_precedence_feasibility(instance)


class TestOrderFeasibility:
    def test_valid_order_passes(self):
        instance = make_precedence_example()
        check_order_feasible(instance, [0, 1, 2])
        check_order_feasible(instance, [0, 2, 1])

    def test_precedence_violation_rejected(self):
        instance = make_precedence_example()
        with pytest.raises(ValidationError, match="precedence"):
            check_order_feasible(instance, [1, 0, 2])

    def test_violation_message_includes_reason(self):
        instance = make_precedence_example()
        with pytest.raises(ValidationError, match="clustered first"):
            check_order_feasible(instance, [2, 0, 1])

    def test_non_permutation_rejected(self):
        instance = make_precedence_example()
        with pytest.raises(ValidationError, match="permutation"):
            check_order_feasible(instance, [0, 1])
        with pytest.raises(ValidationError, match="permutation"):
            check_order_feasible(instance, [0, 1, 1])
