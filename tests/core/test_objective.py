"""Unit tests for the objective evaluators (Section 4.1/4.3 semantics)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    ProblemInstance,
    QueryDef,
)
from repro.core.objective import (
    ObjectiveEvaluator,
    PrefixCachedEvaluator,
    normalized_objective,
)
from repro.errors import ValidationError

from tests.conftest import make_paper_example, make_tiny3, small_synthetic


# ----------------------------------------------------------------------
# Hand-computed objective values
# ----------------------------------------------------------------------
class TestEvaluateByHand:
    def test_paper_example_good_order(self, paper_example):
        # i1 first (cost 70, runtime 100), then i0 with the helper
        # (cost 40 - 28 = 12, runtime 100 - 20 = 80).
        evaluator = ObjectiveEvaluator(paper_example)
        assert evaluator.evaluate([1, 0]) == pytest.approx(
            100.0 * 70.0 + 80.0 * 12.0
        )

    def test_paper_example_bad_order(self, paper_example):
        # i0 first (cost 40, runtime 100), then i1 (cost 70, runtime 95).
        evaluator = ObjectiveEvaluator(paper_example)
        assert evaluator.evaluate([0, 1]) == pytest.approx(
            100.0 * 40.0 + 95.0 * 70.0
        )

    def test_good_order_wins(self, paper_example):
        evaluator = ObjectiveEvaluator(paper_example)
        assert evaluator.evaluate([1, 0]) < evaluator.evaluate([0, 1])

    def test_join_example_symmetric(self, join_example):
        # Neither order unlocks the plan before the second build, so both
        # orders pay full runtime during deployment.
        evaluator = ObjectiveEvaluator(join_example)
        assert evaluator.evaluate([0, 1]) == pytest.approx(
            200.0 * 30.0 + 200.0 * 50.0
        )
        assert evaluator.evaluate([0, 1]) == pytest.approx(
            evaluator.evaluate([1, 0])
        )

    def test_tiny3_density_order_optimal(self, tiny3):
        # With independent singleton plans, descending density is optimal.
        evaluator = ObjectiveEvaluator(tiny3)
        best = min(
            itertools.permutations(range(3)), key=evaluator.evaluate
        )
        assert best == (2, 0, 1)

    def test_query_weight_scales_runtime(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 10.0)],
            queries=[QueryDef(0, "q", base_runtime=50.0, weight=3.0)],
            plans=[PlanDef(0, 0, frozenset({0}), 20.0)],
        )
        evaluator = ObjectiveEvaluator(instance)
        # R0 = 150, one step of cost 10.
        assert evaluator.evaluate([0]) == pytest.approx(1500.0)


class TestCheckOrder:
    def test_rejects_short_order(self, tiny3):
        with pytest.raises(ValidationError):
            ObjectiveEvaluator(tiny3).evaluate([0, 1])

    def test_rejects_duplicates(self, tiny3):
        with pytest.raises(ValidationError):
            ObjectiveEvaluator(tiny3).evaluate([0, 1, 1])

    def test_rejects_out_of_range(self, tiny3):
        with pytest.raises(ValidationError):
            ObjectiveEvaluator(tiny3).evaluate([0, 1, 9])


# ----------------------------------------------------------------------
# Prefix evaluation
# ----------------------------------------------------------------------
class TestEvaluatePrefix:
    def test_empty_prefix(self, tiny3):
        objective, runtime, elapsed = ObjectiveEvaluator(
            tiny3
        ).evaluate_prefix([])
        assert objective == 0.0
        assert runtime == pytest.approx(tiny3.total_base_runtime)
        assert elapsed == 0.0

    def test_full_prefix_matches_evaluate(self, paper_example):
        evaluator = ObjectiveEvaluator(paper_example)
        objective, runtime, elapsed = evaluator.evaluate_prefix([1, 0])
        assert objective == pytest.approx(evaluator.evaluate([1, 0]))
        assert runtime == pytest.approx(80.0)
        assert elapsed == pytest.approx(82.0)  # 70 + 12

    def test_prefix_is_monotone_in_objective(self, tiny3):
        evaluator = ObjectiveEvaluator(tiny3)
        last = 0.0
        for length in range(1, 4):
            objective, _, _ = evaluator.evaluate_prefix([2, 0, 1][:length])
            assert objective >= last
            last = objective


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
class TestSchedule:
    def test_steps_cover_order(self, tiny3):
        schedule = ObjectiveEvaluator(tiny3).schedule([2, 0, 1])
        assert schedule.order == (2, 0, 1)
        assert [s.index_id for s in schedule.steps] == [2, 0, 1]
        assert [s.position for s in schedule.steps] == [1, 2, 3]

    def test_objective_equals_sum_of_step_areas(self, paper_example):
        schedule = ObjectiveEvaluator(paper_example).schedule([1, 0])
        assert schedule.objective == pytest.approx(
            sum(step.area for step in schedule.steps)
        )

    def test_step_times_chain(self, paper_example):
        schedule = ObjectiveEvaluator(paper_example).schedule([1, 0])
        first, second = schedule.steps
        assert first.start_time == 0.0
        assert second.start_time == pytest.approx(first.finish_time)

    def test_helper_reported(self, paper_example):
        schedule = ObjectiveEvaluator(paper_example).schedule([1, 0])
        step = schedule.steps[1]
        assert step.helper_id == 1
        assert step.saving == pytest.approx(28.0)
        assert step.build_cost == pytest.approx(12.0)

    def test_no_helper_when_built_late(self, paper_example):
        schedule = ObjectiveEvaluator(paper_example).schedule([0, 1])
        assert schedule.steps[0].helper_id is None
        assert schedule.steps[0].saving == 0.0

    def test_total_deploy_time(self, paper_example):
        schedule = ObjectiveEvaluator(paper_example).schedule([1, 0])
        assert schedule.total_deploy_time == pytest.approx(82.0)

    def test_final_runtime(self, paper_example):
        schedule = ObjectiveEvaluator(paper_example).schedule([1, 0])
        assert schedule.final_runtime == pytest.approx(80.0)

    def test_total_build_saving(self, paper_example):
        good = ObjectiveEvaluator(paper_example).schedule([1, 0])
        bad = ObjectiveEvaluator(paper_example).schedule([0, 1])
        assert good.total_build_saving() == pytest.approx(28.0)
        assert bad.total_build_saving() == 0.0

    def test_average_runtime_identity(self, paper_example):
        schedule = ObjectiveEvaluator(paper_example).schedule([1, 0])
        assert schedule.average_runtime_during_deployment == pytest.approx(
            schedule.objective / schedule.total_deploy_time
        )

    def test_improvement_curve_endpoints(self, paper_example):
        schedule = ObjectiveEvaluator(paper_example).schedule([1, 0])
        curve = schedule.improvement_curve()
        assert curve[0] == (0.0, pytest.approx(100.0))
        assert curve[-1][0] == pytest.approx(schedule.total_deploy_time)
        assert curve[-1][1] == pytest.approx(schedule.final_runtime)

    def test_improvement_curve_area_equals_objective(self, tiny3):
        schedule = ObjectiveEvaluator(tiny3).schedule([1, 2, 0])
        curve = schedule.improvement_curve()
        area = 0.0
        for (t0, _), (t1, r1_prev) in zip(curve[1:], curve):
            pass  # placeholder to keep zip shape obvious below
        area = sum(
            (t1 - t0) * r0
            for (t0, r0), (t1, _) in zip(curve, curve[1:])
        )
        assert area == pytest.approx(schedule.objective)

    def test_runtime_monotone_nonincreasing(self, tiny3):
        schedule = ObjectiveEvaluator(tiny3).schedule([0, 1, 2])
        runtimes = [schedule.steps[0].runtime_before] + [
            s.runtime_after for s in schedule.steps
        ]
        assert runtimes == sorted(runtimes, reverse=True)


# ----------------------------------------------------------------------
# Prefix-cached evaluator
# ----------------------------------------------------------------------
class TestPrefixCachedEvaluator:
    def test_matches_reference_on_base(self, paper_example):
        cached = PrefixCachedEvaluator(paper_example)
        reference = ObjectiveEvaluator(paper_example)
        assert cached.set_base([1, 0]) == pytest.approx(
            reference.evaluate([1, 0])
        )

    def test_matches_reference_on_all_permutations(self):
        instance = small_synthetic(seed=11, n=6)
        reference = ObjectiveEvaluator(instance)
        cached = PrefixCachedEvaluator(instance, checkpoint_stride=2)
        base = list(range(6))
        cached.set_base(base)
        for order in itertools.permutations(range(6)):
            assert cached.evaluate(order) == pytest.approx(
                reference.evaluate(order)
            )

    def test_evaluate_before_set_base_falls_back(self, tiny3):
        cached = PrefixCachedEvaluator(tiny3)
        reference = ObjectiveEvaluator(tiny3)
        assert cached.evaluate([2, 1, 0]) == pytest.approx(
            reference.evaluate([2, 1, 0])
        )

    def test_identical_order_returns_base_objective(self, tiny3):
        cached = PrefixCachedEvaluator(tiny3)
        base_objective = cached.set_base([0, 1, 2])
        assert cached.evaluate([0, 1, 2]) == pytest.approx(base_objective)

    def test_evaluate_swap(self):
        instance = small_synthetic(seed=3, n=7)
        cached = PrefixCachedEvaluator(instance, checkpoint_stride=3)
        reference = ObjectiveEvaluator(instance)
        base = [3, 1, 4, 0, 6, 2, 5]
        cached.set_base(base)
        for pos_a in range(7):
            for pos_b in range(pos_a + 1, 7):
                swapped = base[:]
                swapped[pos_a], swapped[pos_b] = swapped[pos_b], swapped[pos_a]
                assert cached.evaluate_swap(pos_a, pos_b) == pytest.approx(
                    reference.evaluate(swapped)
                )

    def test_swap_same_position_is_base(self, tiny3):
        cached = PrefixCachedEvaluator(tiny3)
        base_objective = cached.set_base([0, 1, 2])
        assert cached.evaluate_swap(1, 1) == pytest.approx(base_objective)

    def test_swap_requires_base(self, tiny3):
        cached = PrefixCachedEvaluator(tiny3)
        with pytest.raises(ValidationError):
            cached.evaluate_swap(0, 1)

    def test_wrong_length_rejected(self, tiny3):
        cached = PrefixCachedEvaluator(tiny3)
        cached.set_base([0, 1, 2])
        with pytest.raises(ValidationError):
            cached.evaluate([0, 1])

    def test_invalid_stride_rejected(self, tiny3):
        with pytest.raises(ValidationError):
            PrefixCachedEvaluator(tiny3, checkpoint_stride=0)

    def test_evaluation_counter(self, tiny3):
        cached = PrefixCachedEvaluator(tiny3)
        cached.set_base([0, 1, 2])
        cached.evaluate([0, 2, 1])
        assert cached.evaluations == 2

    def test_base_order_property(self, tiny3):
        cached = PrefixCachedEvaluator(tiny3)
        assert cached.base_order is None
        cached.set_base([2, 1, 0])
        assert cached.base_order == (2, 1, 0)


# ----------------------------------------------------------------------
# Lower bound and normalization
# ----------------------------------------------------------------------
class TestLowerBound:
    def test_engine_suffix_bound_is_admissible(self):
        # The engine's density bound replaced the evaluator's old
        # simple bound; it must stay admissible at every split point.
        from repro.core.engine import EvalEngine

        instance = small_synthetic(seed=5, n=6)
        evaluator = ObjectiveEvaluator(instance)
        engine = EvalEngine(instance)
        for order in itertools.permutations(range(6)):
            for split in range(6):
                prefix = list(order[:split])
                objective, runtime, _ = evaluator.evaluate_prefix(prefix)
                bound = engine.suffix_bound(runtime, set(prefix))
                total = evaluator.evaluate(list(order))
                assert objective + bound <= total + 1e-6


class TestNormalizedObjective:
    def test_range(self, paper_example):
        evaluator = ObjectiveEvaluator(paper_example)
        worst_rectangle = (
            paper_example.total_base_runtime
            * paper_example.total_create_cost()
        )
        value = normalized_objective(
            paper_example, evaluator.evaluate([1, 0])
        )
        assert 0.0 < value < 100.0
        assert value == pytest.approx(
            100.0 * evaluator.evaluate([1, 0]) / worst_rectangle
        )

    def test_zero_for_degenerate_instance(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0)],
            queries=[QueryDef(0, "q", 0.0)],
            plans=[],
        )
        assert normalized_objective(instance, 0.0) == 0.0
