"""Unit tests for matrix-file serialization."""

from __future__ import annotations

import json

import pytest

from repro.core.serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.errors import ValidationError

from tests.conftest import (
    make_paper_example,
    make_precedence_example,
    small_synthetic,
)


def assert_instances_equal(a, b):
    assert a.name == b.name
    assert a.indexes == b.indexes
    assert a.queries == b.queries
    assert a.plans == b.plans
    assert a.build_interactions == b.build_interactions
    assert a.precedences == b.precedences


class TestRoundTrip:
    def test_dict_roundtrip_paper_example(self):
        instance = make_paper_example()
        again = instance_from_dict(instance_to_dict(instance))
        assert_instances_equal(instance, again)

    def test_dict_roundtrip_with_precedences(self):
        instance = make_precedence_example()
        again = instance_from_dict(instance_to_dict(instance))
        assert_instances_equal(instance, again)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dict_roundtrip_synthetic(self, seed):
        instance = small_synthetic(seed=seed, n=8, precedence_rate=5.0)
        again = instance_from_dict(instance_to_dict(instance))
        assert_instances_equal(instance, again)

    def test_file_roundtrip(self, tmp_path):
        instance = make_paper_example()
        path = tmp_path / "matrix.json"
        save_instance(instance, path)
        again = load_instance(path)
        assert_instances_equal(instance, again)

    def test_file_is_json(self, tmp_path):
        path = tmp_path / "matrix.json"
        save_instance(make_paper_example(), path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-matrix"
        assert data["version"] == 1

    def test_serialized_dict_is_json_safe(self):
        payload = instance_to_dict(small_synthetic(seed=4, n=6))
        json.dumps(payload)  # must not raise

    def test_plan_indexes_sorted_for_stable_diffs(self):
        payload = instance_to_dict(make_paper_example())
        for plan in payload["plans"]:
            assert plan["indexes"] == sorted(plan["indexes"])


class TestMalformedInput:
    def test_wrong_format_marker(self):
        with pytest.raises(ValidationError, match="format"):
            instance_from_dict({"format": "other", "version": 1})

    def test_not_a_dict(self):
        with pytest.raises(ValidationError):
            instance_from_dict([1, 2, 3])

    def test_wrong_version(self):
        payload = instance_to_dict(make_paper_example())
        payload["version"] = 99
        with pytest.raises(ValidationError, match="version"):
            instance_from_dict(payload)

    def test_missing_field(self):
        payload = instance_to_dict(make_paper_example())
        del payload["indexes"][0]["create_cost"]
        with pytest.raises(ValidationError, match="malformed"):
            instance_from_dict(payload)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(ValidationError, match="invalid JSON"):
            load_instance(path)

    def test_defaults_for_optional_sections(self):
        payload = instance_to_dict(make_paper_example())
        del payload["build_interactions"]
        del payload["precedences"]
        instance = instance_from_dict(payload)
        assert instance.build_interactions == ()
        assert instance.precedences == ()


class TestShippedDataFiles:
    """The checked-in TPC-H/TPC-DS matrix files must stay loadable."""

    @pytest.mark.parametrize("stem", ["tpch", "tpcds"])
    def test_data_file_loads(self, stem):
        from repro.workloads.extracted import DATA_DIR

        path = DATA_DIR / f"{stem}.json"
        if not path.exists():
            pytest.skip(f"{path} not materialized")
        instance = load_instance(path)
        assert instance.n_indexes > 0
        assert instance.n_plans > 0
