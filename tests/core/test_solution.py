"""Unit tests for Solution, SolveResult, and AnytimeTrace."""

from __future__ import annotations

import pytest

from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import AnytimeTrace, Solution, SolveResult, SolveStatus
from repro.errors import ValidationError


class TestSolution:
    def test_from_order_evaluates(self, paper_example):
        solution = Solution.from_order(paper_example, [1, 0])
        assert solution.order == (1, 0)
        assert solution.objective == pytest.approx(
            ObjectiveEvaluator(paper_example).evaluate([1, 0])
        )

    def test_validate_against_passes(self, paper_example):
        solution = Solution.from_order(paper_example, [0, 1])
        solution.validate_against(paper_example)  # must not raise

    def test_validate_against_detects_mismatch(self, paper_example):
        solution = Solution((0, 1), objective=1.0)
        with pytest.raises(ValidationError):
            solution.validate_against(paper_example)

    def test_frozen(self, paper_example):
        solution = Solution.from_order(paper_example, [0, 1])
        with pytest.raises(Exception):
            solution.objective = 0.0


class TestSolveResult:
    def _result(self, solution, status=SolveStatus.FEASIBLE):
        return SolveResult(
            solver="test", status=status, solution=solution, runtime=0.5
        )

    def test_objective_none_without_solution(self):
        assert self._result(None).objective is None

    def test_objective_with_solution(self, paper_example):
        solution = Solution.from_order(paper_example, [1, 0])
        assert self._result(solution).objective == solution.objective

    def test_proved_optimal(self, paper_example):
        solution = Solution.from_order(paper_example, [1, 0])
        assert self._result(solution, SolveStatus.OPTIMAL).proved_optimal
        assert not self._result(solution).proved_optimal

    def test_describe_mentions_solver_and_status(self, paper_example):
        solution = Solution.from_order(paper_example, [1, 0])
        text = self._result(solution).describe()
        assert "test" in text
        assert "feasible" in text

    def test_describe_without_solution(self):
        text = self._result(None, SolveStatus.DID_NOT_FINISH).describe()
        assert "did_not_finish" in text
        assert "obj=-" in text


class TestSolveStatus:
    def test_values_are_distinct(self):
        values = {status.value for status in SolveStatus}
        assert len(values) == len(SolveStatus)


class TestAnytimeTrace:
    def test_record_with_explicit_elapsed(self):
        trace = AnytimeTrace()
        trace.record(100.0, elapsed=1.0)
        trace.record(90.0, elapsed=2.0)
        assert trace.events == [(1.0, 100.0), (2.0, 90.0)]

    def test_record_with_clock(self):
        trace = AnytimeTrace(clock=0.0)
        trace.record(5.0)
        (elapsed, objective), = trace.events
        assert objective == 5.0
        assert elapsed > 0.0

    def test_objective_at_returns_best_known(self):
        trace = AnytimeTrace()
        trace.record(100.0, elapsed=1.0)
        trace.record(80.0, elapsed=3.0)
        assert trace.objective_at(0.5) is None
        assert trace.objective_at(1.0) == 100.0
        assert trace.objective_at(2.9) == 100.0
        assert trace.objective_at(3.0) == 80.0
        assert trace.objective_at(100.0) == 80.0

    def test_events_returns_copy(self):
        trace = AnytimeTrace()
        trace.record(1.0, elapsed=0.1)
        trace.events.append((9.9, 9.9))
        assert len(trace.events) == 1
