"""Unit tests for Section-8.1 interaction-density reduction."""

from __future__ import annotations

import pytest

from repro.core.density import DENSITY_LEVELS, reduce_density
from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    ProblemInstance,
    QueryDef,
)
from repro.errors import ValidationError

from tests.conftest import small_synthetic


@pytest.fixture
def dense_instance() -> ProblemInstance:
    return ProblemInstance(
        indexes=[
            IndexDef(0, "a", 100.0),
            IndexDef(1, "b", 100.0),
            IndexDef(2, "c", 100.0),
        ],
        queries=[
            QueryDef(0, "q0", 100.0),
            QueryDef(1, "q1", 100.0),
        ],
        plans=[
            PlanDef(0, 0, frozenset({0}), 10.0),
            PlanDef(1, 0, frozenset({1}), 30.0),     # q0 best
            PlanDef(2, 0, frozenset({0, 1}), 20.0),
            PlanDef(3, 1, frozenset({2}), 50.0),     # q1 best (only)
        ],
        build_interactions=[
            BuildInteraction(0, 1, 20.0),  # 20% of cost: strong
            BuildInteraction(1, 2, 5.0),   # 5% of cost: weak
        ],
        name="dense",
    )


class TestLowDensity:
    def test_keeps_single_best_plan_per_query(self, dense_instance):
        low = reduce_density(dense_instance, "low")
        assert low.n_plans == 2
        speedups = sorted(p.speedup for p in low.plans)
        assert speedups == [30.0, 50.0]

    def test_drops_all_build_interactions(self, dense_instance):
        low = reduce_density(dense_instance, "low")
        assert len(low.build_interactions) == 0

    def test_name_suffix(self, dense_instance):
        assert reduce_density(dense_instance, "low").name == "dense-low"

    def test_indexes_and_queries_untouched(self, dense_instance):
        low = reduce_density(dense_instance, "low")
        assert low.n_indexes == dense_instance.n_indexes
        assert low.n_queries == dense_instance.n_queries


class TestMidDensity:
    def test_keeps_top_two_plans_per_query(self, dense_instance):
        mid = reduce_density(dense_instance, "mid")
        # q0 keeps the 30 and 20 plans; q1 has only one plan.
        assert mid.n_plans == 3
        q0_speedups = sorted(
            mid.plans[pid].speedup for pid in mid.plans_of_query(0)
        )
        assert q0_speedups == [20.0, 30.0]

    def test_keeps_only_strong_build_interactions(self, dense_instance):
        mid = reduce_density(dense_instance, "mid")
        assert len(mid.build_interactions) == 1
        assert mid.build_interactions[0].saving == 20.0

    def test_threshold_is_15_percent(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 100.0), IndexDef(1, "b", 100.0)],
            queries=[QueryDef(0, "q", 10.0)],
            plans=[PlanDef(0, 0, frozenset({0}), 1.0)],
            build_interactions=[BuildInteraction(0, 1, 15.0)],
        )
        mid = reduce_density(instance, "mid")
        assert len(mid.build_interactions) == 1  # >= 15% survives


class TestFullDensity:
    def test_full_returns_same_object(self, dense_instance):
        assert reduce_density(dense_instance, "full") is dense_instance


class TestErrors:
    def test_unknown_level_rejected(self, dense_instance):
        with pytest.raises(ValidationError, match="unknown density"):
            reduce_density(dense_instance, "extreme")

    def test_levels_constant(self):
        assert set(DENSITY_LEVELS) == {"low", "mid", "full"}


class TestMonotonicity:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_plan_counts_monotone(self, seed):
        instance = small_synthetic(
            seed=seed, n=10, plans_per_query=4.0, build_interaction_rate=2.0
        )
        low = reduce_density(instance, "low")
        mid = reduce_density(instance, "mid")
        assert low.n_plans <= mid.n_plans <= instance.n_plans
        assert len(low.build_interactions) <= len(mid.build_interactions)
        assert len(mid.build_interactions) <= len(instance.build_interactions)

    def test_low_keeps_one_plan_per_query_with_plans(self):
        instance = small_synthetic(seed=3, n=8, plans_per_query=5.0)
        low = reduce_density(instance, "low")
        for query in low.queries:
            had_plans = bool(instance.plans_of_query(query.query_id))
            now = len(low.plans_of_query(query.query_id))
            assert now == (1 if had_plans else 0)
