"""Unit tests for the Section-4.4 objective-variant transforms."""

from __future__ import annotations

import itertools

import pytest

from repro.core.objective import ObjectiveEvaluator
from repro.core.transforms import deploy_time_variant, reweighted_variant
from repro.errors import ValidationError
from repro.solvers.exhaustive import ExhaustiveSolver

from tests.conftest import make_paper_example, small_synthetic


class TestDeployTimeVariant:
    def test_objective_equals_deploy_time(self, paper_example):
        variant = deploy_time_variant(paper_example)
        evaluator = ObjectiveEvaluator(variant)
        reference = ObjectiveEvaluator(paper_example)
        for order in itertools.permutations(range(2)):
            schedule = reference.schedule(list(order))
            assert evaluator.evaluate(list(order)) == pytest.approx(
                schedule.total_deploy_time
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_objective_equals_deploy_time_synthetic(self, seed):
        instance = small_synthetic(seed=seed, n=6, build_interaction_rate=2.0)
        variant = deploy_time_variant(instance)
        evaluator = ObjectiveEvaluator(variant)
        reference = ObjectiveEvaluator(instance)
        for order in itertools.permutations(range(6)):
            assert evaluator.evaluate(list(order)) == pytest.approx(
                reference.schedule(list(order)).total_deploy_time
            )

    def test_optimal_order_maximizes_build_savings(self, paper_example):
        # On the paper example the only deploy-time lever is building
        # the wide index before the narrow one.
        variant = deploy_time_variant(paper_example)
        result = ExhaustiveSolver().solve(variant)
        assert result.solution.order == (1, 0)
        assert result.solution.objective == pytest.approx(70.0 + 12.0)

    def test_precedences_preserved(self):
        instance = small_synthetic(seed=1, n=6, precedence_rate=5.0)
        variant = deploy_time_variant(instance)
        assert variant.precedences == instance.precedences

    def test_solvers_run_on_variant(self):
        from repro.solvers.greedy import GreedySolver

        instance = small_synthetic(seed=2, n=8, build_interaction_rate=2.0)
        variant = deploy_time_variant(instance)
        result = GreedySolver().solve(variant)
        result.solution.validate_against(variant)


class TestReweightedVariant:
    def test_scales_weights(self, tiny3):
        variant = reweighted_variant(tiny3, {"q0": 3.0})
        assert variant.queries[0].weight == pytest.approx(3.0)
        assert variant.queries[1].weight == pytest.approx(1.0)

    def test_default_factor(self, tiny3):
        variant = reweighted_variant(tiny3, {}, default=2.0)
        assert all(q.weight == pytest.approx(2.0) for q in variant.queries)

    def test_unknown_query_rejected(self, tiny3):
        with pytest.raises(ValidationError, match="unknown"):
            reweighted_variant(tiny3, {"ghost": 2.0})

    def test_nonpositive_factor_rejected(self, tiny3):
        with pytest.raises(ValidationError):
            reweighted_variant(tiny3, {"q0": 0.0})
        with pytest.raises(ValidationError):
            reweighted_variant(tiny3, {}, default=-1.0)

    def test_weight_shifts_the_optimum(self):
        # Upweighting the slow query's only beneficiary must pull its
        # index earlier in the optimal order.
        from tests.conftest import make_tiny3
        from tests.conftest import brute_force_best

        base = make_tiny3()
        best_base, _ = brute_force_best(base)
        heavy = reweighted_variant(base, {"q1": 50.0})
        best_heavy, _ = brute_force_best(heavy)
        # Index 1 serves q1; it must move to the front under the weight.
        assert best_heavy.index(1) < best_base.index(1)

    def test_objective_scales_linearly_for_uniform_weights(self, tiny3):
        variant = reweighted_variant(tiny3, {}, default=4.0)
        order = [2, 0, 1]
        assert ObjectiveEvaluator(variant).evaluate(order) == pytest.approx(
            4.0 * ObjectiveEvaluator(tiny3).evaluate(order)
        )
