"""Failure-injection tests: the library must fail loudly and precisely.

Every scenario here feeds the system inconsistent, hostile, or
degenerate input and checks for the *documented* failure mode — a
specific exception type with a useful message, or a graceful degraded
result — never a silent wrong answer.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.analysis.fixpoint import analyze
from repro.core.instance import (
    IndexDef,
    PlanDef,
    PrecedenceRule,
    ProblemInstance,
    QueryDef,
)
from repro.core.serialization import load_instance, save_instance
from repro.core.solution import SolveStatus
from repro.core.validation import check_precedence_feasibility
from repro.errors import (
    InfeasibleError,
    ReproError,
    ValidationError,
)
from repro.solvers.base import Budget
from repro.solvers.cp.search import CPSolver
from repro.solvers.exhaustive import ExhaustiveSolver
from repro.solvers.greedy import GreedySolver
from repro.solvers.localsearch.vns import VNSSolver

from tests.conftest import small_synthetic


class TestHostileConstraints:
    def test_contradictory_constraint_set_cannot_be_built(self):
        constraints = ConstraintSet(3)
        constraints.add_precedence(0, 1)
        constraints.add_precedence(1, 2)
        with pytest.raises(InfeasibleError):
            constraints.add_precedence(2, 0)

    def test_cyclic_hard_precedences_detected_before_solving(self):
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"ix{i}", 1.0) for i in range(3)],
            queries=[QueryDef(0, "q", 10.0)],
            plans=[PlanDef(0, 0, frozenset({0}), 1.0)],
            precedences=[
                PrecedenceRule(0, 1),
                PrecedenceRule(1, 2),
                PrecedenceRule(2, 0),
            ],
        )
        with pytest.raises(InfeasibleError, match="cycle"):
            check_precedence_feasibility(instance)

    def test_analyze_propagates_infeasible_hard_precedences(self):
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"ix{i}", 1.0) for i in range(2)],
            queries=[QueryDef(0, "q", 10.0)],
            plans=[],
            precedences=[PrecedenceRule(0, 1), PrecedenceRule(1, 0)],
        )
        with pytest.raises(InfeasibleError):
            analyze(instance)


class TestCorruptMatrixFiles:
    def test_truncated_file(self, tmp_path):
        instance = small_synthetic(seed=0, n=5)
        path = tmp_path / "matrix.json"
        save_instance(instance, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ValidationError):
            load_instance(path)

    def test_semantically_broken_payload(self, tmp_path):
        instance = small_synthetic(seed=0, n=5)
        path = tmp_path / "matrix.json"
        save_instance(instance, path)
        payload = json.loads(path.read_text())
        # Point a plan at a non-existent index.
        payload["plans"][0]["indexes"] = [999]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValidationError, match="unknown index"):
            load_instance(path)

    def test_negative_cost_payload(self, tmp_path):
        instance = small_synthetic(seed=0, n=5)
        path = tmp_path / "matrix.json"
        save_instance(instance, path)
        payload = json.loads(path.read_text())
        payload["indexes"][0]["create_cost"] = -5.0
        path.write_text(json.dumps(payload))
        with pytest.raises(ValidationError, match="positive"):
            load_instance(path)


class TestBudgetStarvation:
    """Zero/near-zero budgets must degrade, never crash or lie."""

    def test_exhaustive_zero_time(self):
        instance = small_synthetic(seed=1, n=8)
        result = ExhaustiveSolver().solve(
            instance, budget=Budget(time_limit=0.0)
        )
        assert result.status is not SolveStatus.OPTIMAL

    def test_cp_zero_time_returns_greedy_seed(self):
        instance = small_synthetic(seed=1, n=8)
        result = CPSolver().solve(instance, budget=Budget(time_limit=0.0))
        assert result.solution is not None
        result.solution.validate_against(instance)
        assert result.status is not SolveStatus.OPTIMAL

    def test_vns_zero_nodes_returns_initial(self):
        instance = small_synthetic(seed=1, n=8)
        result = VNSSolver(seed=0).solve(
            instance, budget=Budget(node_limit=0)
        )
        assert result.solution is not None
        result.solution.validate_against(instance)

    def test_all_statuses_report_honestly(self):
        # A solver that times out must not claim OPTIMAL even when its
        # incumbent happens to be the optimum.
        instance = small_synthetic(seed=2, n=9)
        result = ExhaustiveSolver().solve(
            instance, budget=Budget(node_limit=50)
        )
        if result.status is SolveStatus.OPTIMAL:
            # Only allowed if the search genuinely closed within 50 nodes.
            assert result.nodes <= 50


class TestDegenerateInstances:
    def test_single_index_single_query(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "only", 5.0)],
            queries=[QueryDef(0, "q", 10.0)],
            plans=[PlanDef(0, 0, frozenset({0}), 3.0)],
        )
        for solver in (GreedySolver(), ExhaustiveSolver(), CPSolver()):
            result = solver.solve(instance)
            assert result.solution.order == (0,)

    def test_all_queries_zero_runtime(self):
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"ix{i}", 2.0 + i) for i in range(4)],
            queries=[QueryDef(0, "q", 0.0)],
            plans=[],
        )
        result = ExhaustiveSolver().solve(instance)
        assert result.solution.objective == 0.0
        assert result.status is SolveStatus.OPTIMAL

    def test_every_index_in_one_giant_alliance(self):
        members = frozenset(range(6))
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"ix{i}", 10.0) for i in range(6)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, members, 50.0)],
        )
        report = analyze(instance)
        # 5 consecutive pairs glue the whole alliance.
        assert len(report.constraints.consecutive_pairs) == 5
        result = ExhaustiveSolver().solve(
            instance, constraints=report.constraints
        )
        assert result.status is SolveStatus.OPTIMAL

    def test_generator_rejects_impossible_shapes(self):
        from repro.workloads.generator import GeneratorConfig, generate_instance

        with pytest.raises(ValidationError):
            generate_instance(
                seed=0, config=GeneratorConfig(n_indexes=0, n_queries=1)
            )
        with pytest.raises(ValidationError):
            generate_instance(
                seed=0, config=GeneratorConfig(n_indexes=1, n_queries=0)
            )


class TestExceptionHierarchy:
    def test_all_library_errors_catchable_as_repro_error(self):
        for exc in (ValidationError, InfeasibleError):
            assert issubclass(exc, ReproError)

    def test_library_never_raises_bare_exception_on_bad_order(self):
        instance = small_synthetic(seed=0, n=4)
        from repro.core.objective import ObjectiveEvaluator

        evaluator = ObjectiveEvaluator(instance)
        with pytest.raises(ReproError):
            evaluator.evaluate([0, 0, 0, 0])
