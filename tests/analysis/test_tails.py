"""Unit tests for tail-index analysis (Sections 5.5-5.6, Figure 9)."""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.analysis.tails import (
    TailPattern,
    apply_tails,
    enumerate_tail_patterns,
)
from repro.core.instance import (
    IndexDef,
    PlanDef,
    ProblemInstance,
    QueryDef,
)
from repro.core.objective import ObjectiveEvaluator

from tests.conftest import brute_force_best, small_synthetic


def laggard_instance() -> ProblemInstance:
    """Index 2 is clearly worst (tiny speed-up, huge cost): forced last."""
    return ProblemInstance(
        indexes=[
            IndexDef(0, "good", 10.0),
            IndexDef(1, "fine", 12.0),
            IndexDef(2, "laggard", 60.0),
            IndexDef(3, "okay", 11.0),
        ],
        queries=[QueryDef(q, f"q{q}", 200.0) for q in range(4)],
        plans=[
            PlanDef(0, 0, frozenset({0}), 80.0),
            PlanDef(1, 1, frozenset({1}), 70.0),
            PlanDef(2, 2, frozenset({2}), 1.0),
            PlanDef(3, 3, frozenset({3}), 60.0),
        ],
        name="laggard",
    )


class TestTailPattern:
    def test_tail_set_and_repr(self):
        pattern = TailPattern((3, 1, 2), 12.5)
        assert pattern.tail_set == frozenset({1, 2, 3})
        assert "3->1->2" in repr(pattern)


class TestEnumerateTailPatterns:
    def test_counts_unconstrained(self):
        instance = laggard_instance()
        constraints = ConstraintSet(4)
        patterns = enumerate_tail_patterns(
            instance, constraints, set(range(4)), length=2
        )
        # C(4,2) sets x 2 orders each.
        assert patterns is not None
        assert len(patterns) == 12

    def test_respects_max_patterns(self):
        instance = laggard_instance()
        constraints = ConstraintSet(4)
        assert (
            enumerate_tail_patterns(
                instance, constraints, set(range(4)), length=2, max_patterns=3
            )
            is None
        )

    def test_length_larger_than_active_returns_empty(self):
        instance = laggard_instance()
        constraints = ConstraintSet(4)
        assert (
            enumerate_tail_patterns(
                instance, constraints, {0, 1}, length=3
            )
            == []
        )

    def test_constraints_prune_infeasible_tails(self):
        instance = laggard_instance()
        constraints = ConstraintSet(4)
        constraints.add_precedence(0, 1)  # 1 after 0
        patterns = enumerate_tail_patterns(
            instance, constraints, set(range(4)), length=2
        )
        orders = {p.order for p in patterns}
        assert (1, 0) not in orders  # violates 0 < 1
        # (0, 1) stays feasible: both in the tail and 0 precedes 1.
        assert (0, 1) in orders

    def test_tail_objective_matches_schedule_suffix(self):
        instance = laggard_instance()
        constraints = ConstraintSet(4)
        patterns = enumerate_tail_patterns(
            instance, constraints, set(range(4)), length=2
        )
        evaluator = ObjectiveEvaluator(instance)
        by_order = {p.order: p.objective for p in patterns}
        # Check one pattern against a full-order evaluation decomposition.
        full_order = [0, 1, 3, 2]
        prefix_obj, _, _ = evaluator.evaluate_prefix([0, 1])
        total = evaluator.evaluate(full_order)
        assert by_order[(3, 2)] == pytest.approx(total - prefix_obj)


class TestApplyTails:
    def test_laggard_forced_last_with_seed_constraints(self):
        # Theorem 10 needs every feasible tail group's champion to end in
        # the same index; with no prior constraints, tail groups avoiding
        # the laggard exist and block the conclusion.  Seeding the
        # (dominance-style) knowledge 0 < 2 and 1 < 2 restricts the tail
        # groups exactly like the paper's TPC-H case, and the analysis
        # then derives the *new* fact 3 < 2.
        instance = laggard_instance()
        constraints = ConstraintSet(4)
        constraints.add_precedence(0, 2)
        constraints.add_precedence(1, 2)
        added = apply_tails(instance, constraints)
        assert added >= 1
        for other in (0, 1, 3):
            assert constraints.is_before(other, 2)

    def test_no_forced_last_without_seed_constraints(self):
        # Without restrictions every 2-subset is a candidate tail group,
        # so no single index closes every champion.
        instance = laggard_instance()
        constraints = ConstraintSet(4)
        assert apply_tails(instance, constraints) == 0

    def test_preserves_optimality(self):
        instance = laggard_instance()
        _, unconstrained = brute_force_best(instance)
        constraints = ConstraintSet(4)
        apply_tails(instance, constraints)
        _, constrained = brute_force_best(instance, constraints)
        assert constrained == pytest.approx(unconstrained)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_preserves_optimality_synthetic(self, seed):
        instance = small_synthetic(seed=seed, n=6)
        _, unconstrained = brute_force_best(instance)
        constraints = ConstraintSet(instance.n_indexes)
        apply_tails(instance, constraints)
        _, constrained = brute_force_best(instance, constraints)
        assert constrained == pytest.approx(unconstrained, rel=1e-9)

    def test_recursion_can_pin_multiple_tails(self):
        # Two clearly terrible indexes behind seed constraints (the good
        # indexes precede both): the first round pins the worst index
        # last and deduces 1 < 2; the recursion then re-runs on the
        # remaining three and confirms 1 closes every champion.
        instance = ProblemInstance(
            indexes=[
                IndexDef(0, "good", 10.0),
                IndexDef(1, "bad", 80.0),
                IndexDef(2, "worse", 90.0),
                IndexDef(3, "fine", 11.0),
            ],
            queries=[QueryDef(q, f"q{q}", 300.0) for q in range(4)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 100.0),
                PlanDef(1, 1, frozenset({1}), 2.0),
                PlanDef(2, 2, frozenset({2}), 1.0),
                PlanDef(3, 3, frozenset({3}), 90.0),
            ],
        )
        constraints = ConstraintSet(4)
        for good in (0, 3):
            for bad in (1, 2):
                constraints.add_precedence(good, bad)
        added = apply_tails(instance, constraints)
        # The genuinely new deduction: the bad index precedes the worse.
        assert added >= 1
        assert constraints.is_before(1, 2)

    def test_no_forced_tail_on_symmetric_instance(self):
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"ix{i}", 10.0) for i in range(3)],
            queries=[QueryDef(q, f"q{q}", 100.0) for q in range(3)],
            plans=[
                PlanDef(q, q, frozenset({q}), 50.0) for q in range(3)
            ],
        )
        constraints = ConstraintSet(3)
        # Perfectly symmetric: ties keep any single index from closing
        # every champion... except id-ordered tie-breaks; just require
        # optimality is preserved.
        _, unconstrained = brute_force_best(instance)
        apply_tails(instance, constraints)
        _, constrained = brute_force_best(instance, constraints)
        assert constrained == pytest.approx(unconstrained)
