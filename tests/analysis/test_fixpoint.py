"""Unit tests for the iterate-and-recurse analysis driver (Section 5.6).

The central guarantee: for every property subset, the emitted constraints
never exclude all optimal solutions — the constrained optimum equals the
unconstrained optimum (checked by brute force on small instances).
"""

from __future__ import annotations

import pytest

from repro.analysis.fixpoint import PROPERTY_ORDER, analyze
from repro.errors import ValidationError

from tests.conftest import (
    brute_force_best,
    make_paper_example,
    make_precedence_example,
    small_synthetic,
)


class TestAnalyzeBasics:
    def test_report_shape(self):
        report = analyze(make_paper_example())
        assert report.iterations >= 1
        assert report.elapsed >= 0.0
        assert set(report.added_by_property) <= set(PROPERTY_ORDER)
        assert report.total_added == sum(report.added_by_property.values())

    def test_describe_mentions_counts(self):
        report = analyze(make_paper_example())
        text = report.describe()
        assert "iterations=" in text
        assert "implied_pairs=" in text

    def test_unknown_property_letter_rejected(self):
        with pytest.raises(ValidationError, match="unknown property"):
            analyze(make_paper_example(), properties="AXZ")

    def test_property_subset_selection(self):
        instance = small_synthetic(seed=2, n=7)
        report = analyze(instance, properties="A")
        assert set(report.added_by_property) <= {"A"}

    def test_empty_property_string(self):
        instance = small_synthetic(seed=2, n=7)
        report = analyze(instance, properties="")
        assert report.total_added == 0

    def test_hard_precedences_included(self):
        instance = make_precedence_example()
        report = analyze(instance, properties="")
        assert report.constraints.is_before(0, 1)
        assert report.constraints.is_before(0, 2)

    def test_case_insensitive_properties(self):
        instance = small_synthetic(seed=2, n=7)
        upper = analyze(instance, properties="ACM")
        lower = analyze(instance, properties="acm")
        assert upper.constraints.summary() == lower.constraints.summary()


class TestOptimalityPreservation:
    """The paper's claim: pruning never loses every optimal solution."""

    @pytest.mark.parametrize("seed", range(8))
    def test_full_analysis_preserves_optimum(self, seed):
        instance = small_synthetic(seed=seed, n=6)
        _, unconstrained = brute_force_best(instance)
        report = analyze(instance)
        _, constrained = brute_force_best(instance, report.constraints)
        assert constrained == pytest.approx(unconstrained, rel=1e-9)

    @pytest.mark.parametrize("properties", ["A", "AC", "ACM", "ACMD", "ACMDT"])
    def test_each_prefix_preserves_optimum(self, properties):
        instance = small_synthetic(seed=13, n=7)
        _, unconstrained = brute_force_best(instance)
        report = analyze(instance, properties=properties)
        _, constrained = brute_force_best(instance, report.constraints)
        assert constrained == pytest.approx(unconstrained, rel=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_preserves_optimum_with_build_interactions(self, seed):
        instance = small_synthetic(
            seed=seed, n=6, build_interaction_rate=2.0
        )
        _, unconstrained = brute_force_best(instance)
        report = analyze(instance)
        _, constrained = brute_force_best(instance, report.constraints)
        assert constrained == pytest.approx(unconstrained, rel=1e-9)

    def test_preserves_optimum_with_hard_precedences(self):
        instance = small_synthetic(seed=9, n=6, precedence_rate=5.0)
        baseline = analyze(instance, properties="")
        _, unconstrained = brute_force_best(instance, baseline.constraints)
        report = analyze(instance)
        _, constrained = brute_force_best(instance, report.constraints)
        assert constrained == pytest.approx(unconstrained, rel=1e-9)


class TestSearchSpaceReduction:
    def test_analysis_adds_constraints_on_reduced_tpch(self, reduced_tpch_13):
        report = analyze(reduced_tpch_13)
        assert report.total_added > 0
        assert report.constraints.implied_pair_count() > 0

    def test_fixpoint_terminates(self):
        instance = small_synthetic(seed=4, n=10, plans_per_query=4.0)
        report = analyze(instance)
        assert report.iterations < 20

    def test_time_budget_respected(self):
        instance = small_synthetic(seed=4, n=10)
        report = analyze(instance, time_budget=0.0)
        # Zero budget: the loop stops after the first pass round.
        assert report.iterations == 1
