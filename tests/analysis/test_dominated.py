"""Unit tests for dominated-index detection (Section 5.3, Figure 7)."""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.analysis.dominated import (
    apply_dominated,
    find_dominated,
    find_useless,
    singleton_speedups,
)
from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    ProblemInstance,
    QueryDef,
)

from tests.conftest import brute_force_best


def simple_domination_instance() -> ProblemInstance:
    """i0 dominated by i1: same cost, i1's speed-up is larger everywhere."""
    return ProblemInstance(
        indexes=[IndexDef(0, "weak", 10.0), IndexDef(1, "strong", 10.0)],
        queries=[QueryDef(0, "q0", 100.0), QueryDef(1, "q1", 100.0)],
        plans=[
            PlanDef(0, 0, frozenset({0}), 4.0),
            PlanDef(1, 0, frozenset({1}), 5.0),
            PlanDef(2, 1, frozenset({1}), 5.0),
        ],
        name="dominated",
    )


class TestSingletonSpeedups:
    def test_collects_best_per_query(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 10.0),
                PlanDef(1, 0, frozenset({0}), 15.0),
            ],
        )
        assert singleton_speedups(instance, 0) == {0: 15.0}

    def test_ignores_multi_index_plans(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0), IndexDef(1, "b", 1.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, frozenset({0, 1}), 10.0)],
        )
        assert singleton_speedups(instance, 0) == {}


class TestFindDominated:
    def test_simple_domination(self):
        pairs = find_dominated(simple_domination_instance())
        assert (0, 1) in pairs
        assert (1, 0) not in pairs

    def test_cheaper_cost_dominates_on_equal_speedups(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "pricey", 20.0), IndexDef(1, "cheap", 10.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 5.0),
                PlanDef(1, 0, frozenset({1}), 5.0),
            ],
        )
        assert (0, 1) in find_dominated(instance)

    def test_higher_cost_cannot_dominate(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "cheap", 10.0), IndexDef(1, "pricey", 20.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 5.0),
                PlanDef(1, 0, frozenset({1}), 50.0),
            ],
        )
        # i1 is stronger but more expensive: the sound special case
        # refuses to call it dominant.
        assert (0, 1) not in find_dominated(instance)

    def test_tie_broken_by_id(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 10.0), IndexDef(1, "b", 10.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 5.0),
                PlanDef(1, 0, frozenset({1}), 5.0),
            ],
        )
        pairs = find_dominated(instance)
        assert (1, 0) in pairs  # lower id becomes the canonical dominator
        assert (0, 1) not in pairs

    def test_multi_index_plan_member_excluded(self):
        instance = ProblemInstance(
            indexes=[
                IndexDef(0, "a", 10.0),
                IndexDef(1, "b", 10.0),
                IndexDef(2, "c", 10.0),
            ],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0, 2}), 4.0),
                PlanDef(1, 0, frozenset({1}), 50.0),
            ],
        )
        # Index 0 participates in a 2-index plan: not a candidate.
        assert all(pair[0] != 0 for pair in find_dominated(instance))

    def test_build_interaction_member_excluded(self):
        instance = simple_domination_instance().with_build_interactions(
            [BuildInteraction(target=0, helper=1, saving=3.0)]
        )
        assert find_dominated(instance) == []


class TestFindUseless:
    def test_index_without_plans_or_helped(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "useful", 1.0), IndexDef(1, "dead", 1.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, frozenset({0}), 10.0)],
        )
        assert find_useless(instance) == [1]

    def test_helper_is_not_useless(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "useful", 10.0), IndexDef(1, "helper", 10.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, frozenset({0}), 10.0)],
            build_interactions=[BuildInteraction(target=0, helper=1, saving=5.0)],
        )
        assert find_useless(instance) == []


class TestApplyDominated:
    def test_adds_dominator_first(self):
        instance = simple_domination_instance()
        constraints = ConstraintSet(instance.n_indexes)
        added = apply_dominated(instance, constraints)
        assert added >= 1
        assert constraints.is_before(1, 0)

    def test_useless_pushed_last(self):
        instance = ProblemInstance(
            indexes=[
                IndexDef(0, "useful", 1.0),
                IndexDef(1, "dead", 1.0),
                IndexDef(2, "useful2", 1.0),
            ],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 10.0),
                PlanDef(1, 0, frozenset({2}), 12.0),
            ],
        )
        constraints = ConstraintSet(instance.n_indexes)
        apply_dominated(instance, constraints)
        assert constraints.is_before(0, 1)
        assert constraints.is_before(2, 1)

    def test_preserves_optimality(self):
        instance = simple_domination_instance()
        _, unconstrained_best = brute_force_best(instance)
        constraints = ConstraintSet(instance.n_indexes)
        apply_dominated(instance, constraints)
        _, constrained_best = brute_force_best(instance, constraints)
        assert constrained_best == pytest.approx(unconstrained_best)

    def test_idempotent(self):
        instance = simple_domination_instance()
        constraints = ConstraintSet(instance.n_indexes)
        apply_dominated(instance, constraints)
        assert apply_dominated(instance, constraints) == 0
