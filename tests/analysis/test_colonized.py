"""Unit tests for colonized-index detection (Section 5.2, Figure 6)."""

from __future__ import annotations

import pytest

from repro.analysis.colonized import apply_colonized, find_colonized
from repro.analysis.constraints import ConstraintSet
from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    ProblemInstance,
    QueryDef,
)


def figure6_instance() -> ProblemInstance:
    """The paper's Figure 6: i1 colonized by i2 (not by i3/i4).

    Plans: {i1,i2,i3}, {i1,i2,i4}, {i2}.  (0-based: i1->0, i2->1,
    i3->2, i4->3.)
    """
    return ProblemInstance(
        indexes=[IndexDef(i, f"i{i + 1}", 10.0) for i in range(4)],
        queries=[QueryDef(q, f"q{q}", 100.0) for q in range(3)],
        plans=[
            PlanDef(0, 0, frozenset({0, 1, 2}), 30.0),
            PlanDef(1, 1, frozenset({0, 1, 3}), 25.0),
            PlanDef(2, 2, frozenset({1}), 10.0),
        ],
        name="figure6",
    )


class TestFindColonized:
    def test_figure6_i1_colonized_by_i2(self):
        pairs = find_colonized(figure6_instance())
        assert (0, 1) in pairs

    def test_figure6_not_colonized_by_i3_or_i4(self):
        pairs = find_colonized(figure6_instance())
        assert (0, 2) not in pairs
        assert (0, 3) not in pairs

    def test_strictness_required(self):
        # Two indexes always together are an alliance, not colonization.
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0), IndexDef(1, "b", 1.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, frozenset({0, 1}), 10.0)],
        )
        assert find_colonized(instance) == []

    def test_build_helper_disqualifies(self):
        # i1 helps build i3: deferring i1 could lose that interaction.
        instance = figure6_instance().with_build_interactions(
            [BuildInteraction(target=2, helper=0, saving=3.0)]
        )
        pairs = find_colonized(instance)
        assert (0, 1) not in pairs

    def test_receiving_build_help_is_fine(self):
        # i1 *receiving* help does not disqualify it.
        instance = figure6_instance().with_build_interactions(
            [BuildInteraction(target=0, helper=1, saving=3.0)]
        )
        assert (0, 1) in find_colonized(instance)

    def test_index_without_plans_skipped(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0), IndexDef(1, "b", 1.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, frozenset({1}), 10.0)],
        )
        assert find_colonized(instance) == []

    def test_multiple_colonizers(self):
        # i0 appears only in {i0, i1, i2}; i1 and i2 each appear alone too.
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"i{i}", 1.0) for i in range(3)],
            queries=[QueryDef(q, f"q{q}", 100.0) for q in range(3)],
            plans=[
                PlanDef(0, 0, frozenset({0, 1, 2}), 30.0),
                PlanDef(1, 1, frozenset({1}), 5.0),
                PlanDef(2, 2, frozenset({2}), 5.0),
            ],
        )
        pairs = find_colonized(instance)
        assert (0, 1) in pairs
        assert (0, 2) in pairs


class TestApplyColonized:
    def test_adds_precedence(self):
        instance = figure6_instance()
        constraints = ConstraintSet(instance.n_indexes)
        added = apply_colonized(instance, constraints)
        assert added >= 1
        assert constraints.is_before(1, 0)  # colonizer i2 before i1

    def test_idempotent(self):
        instance = figure6_instance()
        constraints = ConstraintSet(instance.n_indexes)
        apply_colonized(instance, constraints)
        assert apply_colonized(instance, constraints) == 0

    def test_existing_reverse_constraint_skipped(self):
        instance = figure6_instance()
        constraints = ConstraintSet(instance.n_indexes)
        constraints.add_precedence(0, 1)  # force the reverse
        added = apply_colonized(instance, constraints)
        assert not constraints.is_before(1, 0)
