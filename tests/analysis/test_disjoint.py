"""Unit tests for disjoint indexes and clusters (Section 5.4, Figure 8)."""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.analysis.disjoint import (
    apply_disjoint,
    disjoint_clusters,
    index_density,
    interaction_graph,
)
from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    ProblemInstance,
    QueryDef,
)

from tests.conftest import brute_force_best


def figure8_instance() -> ProblemInstance:
    """Figure 8 shape: cluster M1={i1,i2,i3} and a disjoint index i4.

    (0-based: i1->0, i2->1, i3->2, i4->3.)
    """
    return ProblemInstance(
        indexes=[
            IndexDef(0, "i1", 10.0),
            IndexDef(1, "i2", 10.0),
            IndexDef(2, "i3", 10.0),
            IndexDef(3, "i4", 10.0),
        ],
        queries=[
            QueryDef(0, "q1", 100.0),
            QueryDef(1, "q2", 100.0),
            QueryDef(2, "q3", 100.0),
        ],
        plans=[
            PlanDef(0, 0, frozenset({0, 1}), 30.0),
            PlanDef(1, 1, frozenset({1, 2}), 20.0),
            PlanDef(2, 2, frozenset({3}), 25.0),
        ],
        name="figure8",
    )


class TestInteractionGraph:
    def test_plan_comembership_connects(self):
        adjacency = interaction_graph(figure8_instance())
        assert 1 in adjacency[0]
        assert 0 in adjacency[1]

    def test_competing_plans_connect(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0), IndexDef(1, "b", 1.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 10.0),
                PlanDef(1, 0, frozenset({1}), 20.0),
            ],
        )
        adjacency = interaction_graph(instance)
        assert 1 in adjacency[0]

    def test_build_interactions_connect(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 10.0), IndexDef(1, "b", 10.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, frozenset({0}), 10.0)],
            build_interactions=[BuildInteraction(1, 0, 2.0)],
        )
        adjacency = interaction_graph(instance)
        assert 1 in adjacency[0]

    def test_disjoint_index_isolated(self):
        adjacency = interaction_graph(figure8_instance())
        assert adjacency[3] == set()


class TestDisjointClusters:
    def test_figure8_clusters(self):
        clusters = disjoint_clusters(figure8_instance())
        as_sets = sorted(clusters, key=lambda c: min(c))
        assert {0, 1, 2} in as_sets
        assert {3} in as_sets

    def test_clusters_partition_indexes(self):
        instance = figure8_instance()
        clusters = disjoint_clusters(instance)
        members = sorted(m for cluster in clusters for m in cluster)
        assert members == list(range(instance.n_indexes))


class TestIndexDensity:
    def test_density_definition(self):
        instance = figure8_instance()
        # i4 alone: speedup 25, cost 10.
        assert index_density(instance, 3, set()) == pytest.approx(2.5)

    def test_density_depends_on_context(self):
        instance = figure8_instance()
        # i1 alone unlocks nothing; with i2 built it unlocks plan 0.
        assert index_density(instance, 0, set()) == pytest.approx(0.0)
        assert index_density(instance, 0, {1}) == pytest.approx(3.0)

    def test_density_uses_interacted_build_cost(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 10.0), IndexDef(1, "b", 10.0)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, frozenset({0}), 10.0)],
            build_interactions=[BuildInteraction(0, 1, 5.0)],
        )
        assert index_density(instance, 0, set()) == pytest.approx(1.0)
        assert index_density(instance, 0, {1}) == pytest.approx(2.0)


class TestApplyDisjoint:
    def test_orders_pure_disjoint_indexes_by_density(self):
        instance = ProblemInstance(
            indexes=[
                IndexDef(0, "slow", 10.0),
                IndexDef(1, "fast", 10.0),
            ],
            queries=[QueryDef(0, "q0", 100.0), QueryDef(1, "q1", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 10.0),  # density 1.0
                PlanDef(1, 1, frozenset({1}), 30.0),  # density 3.0
            ],
        )
        constraints = ConstraintSet(2)
        added = apply_disjoint(instance, constraints)
        assert added == 1
        assert constraints.is_before(1, 0)

    def test_preserves_optimality_on_disjoint_instances(self):
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"ix{i}", 10.0 + i) for i in range(5)],
            queries=[QueryDef(q, f"q{q}", 100.0) for q in range(5)],
            plans=[
                PlanDef(q, q, frozenset({q}), 10.0 + 3 * q) for q in range(5)
            ],
        )
        _, unconstrained = brute_force_best(instance)
        constraints = ConstraintSet(5)
        apply_disjoint(instance, constraints)
        _, constrained = brute_force_best(instance, constraints)
        assert constrained == pytest.approx(unconstrained)

    def test_total_order_on_disjoint_instance(self):
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"ix{i}", 10.0) for i in range(4)],
            queries=[QueryDef(q, f"q{q}", 100.0) for q in range(4)],
            plans=[
                PlanDef(q, q, frozenset({q}), 10.0 + q) for q in range(4)
            ],
        )
        constraints = ConstraintSet(4)
        apply_disjoint(instance, constraints)
        # All 4 singletons become totally ordered: C(4,2) implied pairs.
        assert constraints.implied_pair_count() == 6

    def test_figure8_constrains_only_disjoint_index(self):
        instance = figure8_instance()
        constraints = ConstraintSet(instance.n_indexes)
        apply_disjoint(instance, constraints)
        # No constraint may be added inside the M1 cluster by tier 1.
        for a in (0, 1, 2):
            for b in (0, 1, 2):
                if a != b:
                    assert not constraints.is_before(a, b)

    def test_idempotent(self):
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"ix{i}", 10.0) for i in range(3)],
            queries=[QueryDef(q, f"q{q}", 100.0) for q in range(3)],
            plans=[
                PlanDef(q, q, frozenset({q}), 10.0 + q) for q in range(3)
            ],
        )
        constraints = ConstraintSet(3)
        apply_disjoint(instance, constraints)
        assert apply_disjoint(instance, constraints) == 0
