"""Unit tests for the shared ConstraintSet."""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.errors import InfeasibleError, ValidationError


class TestAddPrecedence:
    def test_returns_true_on_new_information(self):
        cs = ConstraintSet(3)
        assert cs.add_precedence(0, 1) is True

    def test_returns_false_when_implied(self):
        cs = ConstraintSet(3)
        cs.add_precedence(0, 1)
        assert cs.add_precedence(0, 1) is False

    def test_transitive_closure(self):
        cs = ConstraintSet(4)
        cs.add_precedence(0, 1)
        cs.add_precedence(1, 2)
        assert cs.is_before(0, 2)
        assert cs.add_precedence(0, 2) is False  # already implied

    def test_closure_propagates_both_sides(self):
        cs = ConstraintSet(5)
        cs.add_precedence(0, 1)
        cs.add_precedence(2, 3)
        cs.add_precedence(1, 2)
        # 0 < 1 < 2 < 3 fully chained
        assert cs.is_before(0, 3)
        assert cs.predecessors(3) == {0, 1, 2}
        assert cs.successors(0) == {1, 2, 3}

    def test_contradiction_raises(self):
        cs = ConstraintSet(3)
        cs.add_precedence(0, 1)
        cs.add_precedence(1, 2)
        with pytest.raises(InfeasibleError):
            cs.add_precedence(2, 0)

    def test_direct_contradiction_raises(self):
        cs = ConstraintSet(2)
        cs.add_precedence(0, 1)
        with pytest.raises(InfeasibleError):
            cs.add_precedence(1, 0)

    def test_self_constraint_rejected(self):
        with pytest.raises(ValidationError):
            ConstraintSet(3).add_precedence(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            ConstraintSet(3).add_precedence(0, 3)

    def test_negative_n_rejected(self):
        with pytest.raises(ValidationError):
            ConstraintSet(-1)


class TestConsecutive:
    def test_implies_precedence(self):
        cs = ConstraintSet(3)
        cs.add_consecutive(0, 1)
        assert cs.is_before(0, 1)

    def test_recorded_once(self):
        cs = ConstraintSet(3)
        cs.add_consecutive(0, 1)
        cs.add_consecutive(0, 1)
        assert cs.consecutive_pairs == [(0, 1)]

    def test_check_order_enforces_adjacency(self):
        cs = ConstraintSet(3)
        cs.add_consecutive(0, 1)
        assert cs.check_order([0, 1, 2])
        assert cs.check_order([2, 0, 1])
        assert not cs.check_order([0, 2, 1])  # gap between the pair


class TestQueries:
    def test_position_bounds(self):
        cs = ConstraintSet(4)
        cs.add_precedence(0, 1)
        cs.add_precedence(1, 2)
        lo, hi = cs.position_bounds(1)
        assert (lo, hi) == (2, 3)  # one predecessor, one successor
        assert cs.position_bounds(3) == (1, 4)  # unconstrained

    def test_implied_pair_count(self):
        cs = ConstraintSet(4)
        cs.add_precedence(0, 1)
        cs.add_precedence(1, 2)
        assert cs.implied_pair_count() == 3  # (0,1), (1,2), (0,2)

    def test_masks_consistent_with_sets(self):
        cs = ConstraintSet(5)
        cs.add_precedence(0, 4)
        cs.add_precedence(2, 4)
        assert cs.predecessor_mask(4) == (1 << 0) | (1 << 2)
        assert cs.successor_mask(0) == (1 << 4)

    def test_check_order_true_on_empty_set(self):
        cs = ConstraintSet(3)
        for order in itertools.permutations(range(3)):
            assert cs.check_order(order)

    def test_check_order_respects_closure(self):
        cs = ConstraintSet(3)
        cs.add_precedence(0, 1)
        cs.add_precedence(1, 2)
        assert cs.check_order([0, 1, 2])
        assert not cs.check_order([0, 2, 1])
        assert not cs.check_order([2, 1, 0])


class TestTopologicalOrder:
    def test_respects_precedences(self):
        cs = ConstraintSet(5)
        cs.add_precedence(3, 0)
        cs.add_precedence(4, 3)
        order = cs.topological_order()
        assert cs.check_order(order) or cs.consecutive_pairs
        assert order.index(4) < order.index(3) < order.index(0)

    def test_unconstrained_is_identity(self):
        assert ConstraintSet(4).topological_order() == [0, 1, 2, 3]


class TestMergeAndCopy:
    def test_merge_absorbs_edges(self):
        a = ConstraintSet(4)
        a.add_precedence(0, 1)
        b = ConstraintSet(4)
        b.add_precedence(1, 2)
        b.add_consecutive(2, 3)
        a.merge(b)
        assert a.is_before(0, 2)
        assert (2, 3) in a.consecutive_pairs

    def test_merge_size_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ConstraintSet(3).merge(ConstraintSet(4))

    def test_merge_conflict_raises(self):
        a = ConstraintSet(2)
        a.add_precedence(0, 1)
        b = ConstraintSet(2)
        b.add_precedence(1, 0)
        with pytest.raises(InfeasibleError):
            a.merge(b)

    def test_copy_is_independent(self):
        cs = ConstraintSet(3)
        cs.add_precedence(0, 1)
        clone = cs.copy()
        clone.add_precedence(1, 2)
        assert not cs.is_before(1, 2)
        assert clone.is_before(0, 2)

    def test_summary_and_repr(self):
        cs = ConstraintSet(3)
        cs.add_consecutive(0, 1)
        summary = cs.summary()
        assert summary["direct_edges"] == 1
        assert summary["consecutive_pairs"] == 1
        assert "ConstraintSet" in repr(cs)


class TestSearchSpaceReduction:
    def test_constraints_shrink_feasible_permutations(self):
        cs = ConstraintSet(5)
        cs.add_precedence(0, 1)
        cs.add_precedence(2, 3)
        feasible = sum(
            1
            for order in itertools.permutations(range(5))
            if cs.check_order(order)
        )
        assert feasible == 120 // 4  # each independent pair halves
