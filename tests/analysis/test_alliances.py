"""Unit tests for alliance detection (Section 5.1, Figure 5)."""

from __future__ import annotations

import pytest

from repro.analysis.alliances import (
    apply_alliances,
    best_internal_order,
    find_alliances,
)
from repro.analysis.constraints import ConstraintSet
from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    ProblemInstance,
    QueryDef,
)


def figure5_instance() -> ProblemInstance:
    """The paper's Figure 5: plans {i1,i3}, {i1,i3,i5}, {i2,i5}, {i4,i6}.

    (0-based here: i1->0, i2->1, i3->2, i4->3, i5->4, i6->5.)
    """
    return ProblemInstance(
        indexes=[IndexDef(i, f"i{i + 1}", 10.0) for i in range(6)],
        queries=[QueryDef(q, f"q{q}", 100.0) for q in range(4)],
        plans=[
            PlanDef(0, 0, frozenset({0, 2}), 10.0),
            PlanDef(1, 1, frozenset({0, 2, 4}), 20.0),
            PlanDef(2, 2, frozenset({1, 4}), 15.0),
            PlanDef(3, 3, frozenset({3, 5}), 12.0),
        ],
        name="figure5",
    )


class TestFindAlliances:
    def test_figure5_groups(self):
        alliances = find_alliances(figure5_instance())
        assert (0, 2) in alliances  # i1, i3 always together
        assert (3, 5) in alliances  # i4, i6 always together

    def test_figure5_i2_i5_not_allied(self):
        # i5 appears in {i1,i3,i5} without i2 (the paper's counterexample).
        alliances = find_alliances(figure5_instance())
        flat = {member for group in alliances for member in group}
        for group in alliances:
            assert not ({1, 4} <= set(group))

    def test_external_build_interaction_blocks_alliance(self):
        base = figure5_instance()
        spoiled = base.with_build_interactions(
            [BuildInteraction(target=0, helper=1, saving=2.0)]
        )
        alliances = find_alliances(spoiled)
        assert (0, 2) not in alliances  # i1 now interacts outside the group
        assert (3, 5) in alliances

    def test_internal_build_interaction_keeps_alliance(self):
        base = figure5_instance()
        internal = base.with_build_interactions(
            [BuildInteraction(target=0, helper=2, saving=2.0)]
        )
        assert (0, 2) in find_alliances(internal)

    def test_index_serving_no_plan_not_allied(self):
        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0), IndexDef(1, "b", 1.0)],
            queries=[QueryDef(0, "q", 1.0)],
            plans=[],
        )
        assert find_alliances(instance) == []

    def test_three_member_alliance(self):
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"i{i}", 5.0) for i in range(3)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, frozenset({0, 1, 2}), 50.0)],
        )
        assert find_alliances(instance) == [(0, 1, 2)]


class TestBestInternalOrder:
    def test_no_internal_interactions_sorted_by_id(self):
        instance = figure5_instance()
        assert best_internal_order(instance, (0, 2)) == [0, 2]

    def test_internal_interaction_prefers_helper_first(self):
        instance = ProblemInstance(
            indexes=[
                IndexDef(0, "narrow", 40.0),
                IndexDef(1, "wide", 50.0),
            ],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[PlanDef(0, 0, frozenset({0, 1}), 50.0)],
            build_interactions=[BuildInteraction(0, 1, 30.0)],
        )
        # Building wide (1) first lets narrow (0) cost 10 instead of 40.
        assert best_internal_order(instance, (0, 1)) == [1, 0]

    def test_singleton_group(self):
        assert best_internal_order(figure5_instance(), (2,)) == [2]

    def test_large_group_greedy(self):
        # > _EXACT_ORDER_LIMIT members forces the greedy path: the
        # cheapest-buildable-next rule takes the cheap helper first and
        # then the index it discounts.
        members = list(range(9))
        costs = {i: 10.0 + i for i in members}
        costs[8] = 5.0  # the helper is the cheapest build
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"i{i}", costs[i]) for i in members],
            queries=[QueryDef(0, "q", 1000.0)],
            plans=[PlanDef(0, 0, frozenset(members), 500.0)],
            build_interactions=[BuildInteraction(0, 8, 9.0)],
        )
        order = best_internal_order(instance, tuple(members))
        assert sorted(order) == members
        assert order[0] == 8  # cheapest first
        assert order[1] == 0  # now costs 10 - 9 = 1


class TestApplyAlliances:
    def test_adds_consecutive_pairs(self):
        instance = figure5_instance()
        constraints = ConstraintSet(instance.n_indexes)
        added = apply_alliances(instance, constraints)
        assert added >= 2
        pairs = set(constraints.consecutive_pairs)
        assert (0, 2) in pairs
        assert (3, 5) in pairs

    def test_idempotent(self):
        instance = figure5_instance()
        constraints = ConstraintSet(instance.n_indexes)
        apply_alliances(instance, constraints)
        assert apply_alliances(instance, constraints) == 0

    def test_conflicting_existing_constraints_skip_group(self):
        instance = figure5_instance()
        constraints = ConstraintSet(instance.n_indexes)
        constraints.add_precedence(2, 0)  # reverse of the chosen order
        apply_alliances(instance, constraints)
        assert (0, 2) not in constraints.consecutive_pairs
        # The other group is still glued.
        assert (3, 5) in constraints.consecutive_pairs
