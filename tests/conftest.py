"""Shared fixtures and brute-force oracles for the test suite.

The key testing strategy: for small instances (n <= 8) we can compute the
true optimal objective by enumerating every permutation with the
reference :class:`ObjectiveEvaluator`.  Every solver, pruning property,
and evaluator optimization is checked against that oracle.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    PrecedenceRule,
    ProblemInstance,
    QueryDef,
)
from repro.core.objective import ObjectiveEvaluator
from repro.workloads.generator import GeneratorConfig, generate_instance


# ----------------------------------------------------------------------
# Hand-built instances with known structure
# ----------------------------------------------------------------------
def make_paper_example() -> ProblemInstance:
    """The Section 4.2 City/Salary example.

    i0 = ix_city(City), i1 = ix_city_salary(City, Salary); one query with
    base runtime 100; i0 alone saves 5, covering i1 saves 20; i1 helps
    build i0 (saving 28 of its 40-cost build).
    """
    return ProblemInstance(
        indexes=[
            IndexDef(0, "ix_city", create_cost=40.0),
            IndexDef(1, "ix_city_salary", create_cost=70.0),
        ],
        queries=[QueryDef(0, "avg_salary_by_city", base_runtime=100.0)],
        plans=[
            PlanDef(0, 0, frozenset({0}), speedup=5.0),
            PlanDef(1, 0, frozenset({1}), speedup=20.0),
        ],
        build_interactions=[BuildInteraction(target=0, helper=1, saving=28.0)],
        name="paper-4.2",
    )


def make_join_example() -> ProblemInstance:
    """The Section 4.2 query-interaction (self-join) example.

    i0(City) and i1(EmpID) are each useless alone but fast together.
    """
    return ProblemInstance(
        indexes=[
            IndexDef(0, "ix_city", create_cost=30.0),
            IndexDef(1, "ix_empid", create_cost=50.0),
        ],
        queries=[QueryDef(0, "self_join", base_runtime=200.0)],
        plans=[PlanDef(0, 0, frozenset({0, 1}), speedup=150.0)],
        name="paper-join",
    )


def make_tiny3() -> ProblemInstance:
    """Three independent indexes with distinct densities.

    With no interactions the optimal order is by descending density
    (speedup / cost): i2 (10/5=2.0) -> i0 (12/10=1.2) -> i1 (8/20=0.4).
    """
    return ProblemInstance(
        indexes=[
            IndexDef(0, "a", create_cost=10.0),
            IndexDef(1, "b", create_cost=20.0),
            IndexDef(2, "c", create_cost=5.0),
        ],
        queries=[
            QueryDef(0, "q0", base_runtime=50.0),
            QueryDef(1, "q1", base_runtime=40.0),
            QueryDef(2, "q2", base_runtime=30.0),
        ],
        plans=[
            PlanDef(0, 0, frozenset({0}), speedup=12.0),
            PlanDef(1, 1, frozenset({1}), speedup=8.0),
            PlanDef(2, 2, frozenset({2}), speedup=10.0),
        ],
        name="tiny3",
    )


def make_precedence_example() -> ProblemInstance:
    """Clustered-before-secondary precedence (MV example of Section 4.2)."""
    return ProblemInstance(
        indexes=[
            IndexDef(0, "cx_mv", create_cost=60.0),
            IndexDef(1, "ix_mv_a", create_cost=20.0),
            IndexDef(2, "ix_mv_b", create_cost=25.0),
        ],
        queries=[QueryDef(0, "q", base_runtime=100.0)],
        plans=[
            PlanDef(0, 0, frozenset({0}), speedup=10.0),
            PlanDef(1, 0, frozenset({1}), speedup=40.0),
            PlanDef(2, 0, frozenset({2}), speedup=60.0),
        ],
        precedences=[
            PrecedenceRule(0, 1, reason="clustered first"),
            PrecedenceRule(0, 2, reason="clustered first"),
        ],
        name="mv-precedence",
    )


# ----------------------------------------------------------------------
# Brute-force oracles
# ----------------------------------------------------------------------
def order_feasible(
    order: Sequence[int], constraints: Optional[ConstraintSet]
) -> bool:
    """True when ``order`` satisfies all constraints (or there are none)."""
    if constraints is None:
        return True
    return constraints.check_order(order)


def brute_force_best(
    instance: ProblemInstance,
    constraints: Optional[ConstraintSet] = None,
) -> Tuple[Tuple[int, ...], float]:
    """Enumerate every feasible permutation; return (best order, objective).

    Only usable for small ``n`` (8! = 40320 evaluations).
    """
    evaluator = ObjectiveEvaluator(instance)
    best_order: Optional[Tuple[int, ...]] = None
    best_objective = float("inf")
    for order in itertools.permutations(range(instance.n_indexes)):
        if not order_feasible(order, constraints):
            continue
        objective = evaluator.evaluate(order)
        if objective < best_objective:
            best_objective = objective
            best_order = order
    assert best_order is not None, "no feasible permutation"
    return best_order, best_objective


def brute_force_all(
    instance: ProblemInstance,
) -> List[Tuple[Tuple[int, ...], float]]:
    """All (order, objective) pairs, for distribution-level assertions."""
    evaluator = ObjectiveEvaluator(instance)
    return [
        (order, evaluator.evaluate(order))
        for order in itertools.permutations(range(instance.n_indexes))
    ]


def small_synthetic(seed: int, n: int = 6, **overrides) -> ProblemInstance:
    """A deterministic small synthetic instance for oracle comparisons."""
    overrides.setdefault("n_queries", max(3, n - 1))
    config = GeneratorConfig(n_indexes=n, **overrides)
    return generate_instance(seed=seed, config=config)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def paper_example() -> ProblemInstance:
    return make_paper_example()


@pytest.fixture
def join_example() -> ProblemInstance:
    return make_join_example()


@pytest.fixture
def tiny3() -> ProblemInstance:
    return make_tiny3()


@pytest.fixture
def precedence_example() -> ProblemInstance:
    return make_precedence_example()


@pytest.fixture(scope="session")
def tpch_full() -> ProblemInstance:
    from repro.experiments.instances import tpch_instance

    return tpch_instance()


@pytest.fixture(scope="session")
def tpcds_full() -> ProblemInstance:
    from repro.experiments.instances import tpcds_instance

    return tpcds_instance()


@pytest.fixture(scope="session")
def reduced_tpch_13() -> ProblemInstance:
    from repro.experiments.instances import reduced_tpch

    return reduced_tpch(13, "low")
