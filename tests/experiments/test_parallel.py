"""Tests for the sharded experiment runner (repro.experiments.parallel).

The core guarantee: a merged run at any worker count produces outcomes
in the exact sequential cell order, with deterministic shard assignment
and per-cell seeds, and crashes/timeouts become structured error cells
instead of hanging or killing the grid.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.harness import DF, ResultTable
from repro.experiments.parallel import (
    Cell,
    CellOutcome,
    derive_seed,
    run_cells,
    shard_cells,
)


# ----------------------------------------------------------------------
# Module-level cell functions (must be picklable for worker processes)
# ----------------------------------------------------------------------
def _square(value: int) -> int:
    return value * value


def _seeded_payload(seed: int, size: int) -> str:
    """A deterministic pseudo-experiment: objective of a seeded shuffle."""
    import random

    rng = random.Random(seed)
    values = [rng.random() for _ in range(size)]
    return f"{sum(v * (i + 1) for i, v in enumerate(values)):.6f}"


def _boom(message: str) -> None:
    raise RuntimeError(message)


def _hard_crash() -> None:
    os._exit(17)  # bypasses Python cleanup: simulates a segfaulting worker


def _sleep_forever() -> None:
    time.sleep(600)


def _make_cells(fn, payloads):
    return [
        Cell(index=i, label=f"cell[{i}]", fn=fn, args=args)
        for i, args in enumerate(payloads)
    ]


class TestShardAssignment:
    def test_round_robin_partition(self):
        shards = shard_cells(10, 3)
        assert shards == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_partition_is_exact(self):
        for n_cells in (0, 1, 5, 17):
            for workers in (1, 2, 4, 32):
                shards = shard_cells(n_cells, workers)
                flat = sorted(i for shard in shards for i in shard)
                assert flat == list(range(n_cells))

    def test_more_workers_than_cells_caps_shards(self):
        shards = shard_cells(2, 8)
        assert len(shards) == 2

    def test_deterministic(self):
        assert shard_cells(23, 4) == shard_cells(23, 4)


class TestDeriveSeed:
    def test_depends_only_on_base_and_index(self):
        assert derive_seed(0, 3) == derive_seed(0, 3)
        assert derive_seed(0, 3) != derive_seed(0, 4)
        assert derive_seed(1, 3) != derive_seed(0, 3)

    def test_in_rng_range(self):
        for index in range(100):
            assert 0 <= derive_seed(7, index) < 2**31


class TestRunCellsInline:
    def test_sequential_order_and_values(self):
        cells = _make_cells(_square, [(i,) for i in range(7)])
        outcomes = run_cells(cells, workers=1)
        assert [o.index for o in outcomes] == list(range(7))
        assert [o.value for o in outcomes] == [i * i for i in range(7)]
        assert all(o.ok for o in outcomes)

    def test_exception_becomes_error_cell(self):
        cells = [
            Cell(index=0, label="ok", fn=_square, args=(3,)),
            Cell(index=1, label="bad", fn=_boom, args=("kapow",)),
            Cell(index=2, label="ok2", fn=_square, args=(4,)),
        ]
        outcomes = run_cells(cells, workers=1)
        assert outcomes[0].value == 9
        assert not outcomes[1].ok
        assert "kapow" in outcomes[1].error
        assert outcomes[2].value == 16

    def test_duplicate_indexes_rejected(self):
        cells = [
            Cell(index=0, label="a", fn=_square, args=(1,)),
            Cell(index=0, label="b", fn=_square, args=(2,)),
        ]
        with pytest.raises(ValueError, match="unique"):
            run_cells(cells, workers=1)


class TestRunCellsSharded:
    def test_merged_outcomes_identical_to_sequential(self):
        """The headline determinism property: N workers == 1 worker.

        Cell payloads here are deterministic (seeded), so the merged
        values — and a ResultTable rendered from them — must be
        byte-identical between the inline and sharded paths.
        """
        cells = [
            Cell(
                index=i,
                label=f"det[{i}]",
                fn=_seeded_payload,
                args=(derive_seed(0, i), 50),
            )
            for i in range(12)
        ]
        sequential = run_cells(cells, workers=1)
        sharded = run_cells(cells, workers=4, timeout=120.0)
        assert [o.index for o in sharded] == [o.index for o in sequential]
        assert [o.value for o in sharded] == [o.value for o in sequential]

        def render(outcomes):
            table = ResultTable("grid", headers=["cell", "objective"])
            for outcome in outcomes:
                table.add_row(outcome.label, outcome.value)
            return table.render()

        assert render(sharded) == render(sequential)

    def test_exception_in_worker_is_isolated(self):
        cells = [
            Cell(index=0, label="ok0", fn=_square, args=(2,)),
            Cell(index=1, label="bad", fn=_boom, args=("worker blew up",)),
            Cell(index=2, label="ok2", fn=_square, args=(5,)),
            Cell(index=3, label="ok3", fn=_square, args=(6,)),
        ]
        outcomes = run_cells(cells, workers=2, timeout=60.0)
        assert outcomes[0].value == 4
        assert not outcomes[1].ok
        assert "worker blew up" in outcomes[1].error
        assert outcomes[2].value == 25
        assert outcomes[3].value == 36

    def test_hard_crash_yields_error_cells_for_lost_shard(self):
        # Shard 1 (round-robin) owns cells 1 and 3; it dies on cell 1,
        # so both its cells must come back as structured errors while
        # shard 0's cells survive.
        cells = [
            Cell(index=0, label="ok0", fn=_square, args=(2,)),
            Cell(index=1, label="crash", fn=_hard_crash),
            Cell(index=2, label="ok2", fn=_square, args=(3,)),
            Cell(index=3, label="lost", fn=_square, args=(4,)),
        ]
        outcomes = run_cells(cells, workers=2, timeout=60.0)
        assert outcomes[0].value == 4
        assert outcomes[2].value == 9
        assert not outcomes[1].ok and "crash" in outcomes[1].error
        assert not outcomes[3].ok and "crash" in outcomes[3].error

    def test_timeout_yields_error_cells_instead_of_hanging(self):
        cells = [
            Cell(index=0, label="ok", fn=_square, args=(2,)),
            Cell(index=1, label="hung", fn=_sleep_forever),
        ]
        start = time.monotonic()
        outcomes = run_cells(cells, workers=2, timeout=3.0)
        assert time.monotonic() - start < 30.0
        assert outcomes[0].value == 4
        assert not outcomes[1].ok
        assert "timed out" in outcomes[1].error


class TestExperimentRunnersSharded:
    """The real grid runners produce the same table shape at any worker
    count; measured-runtime digits are nondeterministic even between two
    sequential runs, so the comparison projects each cell to its status
    category (DF / starred / finished / empty)."""

    @staticmethod
    def _categories(table):
        def category(cell):
            text = str(cell)
            if text == DF:
                return "DF"
            if text.endswith("*"):
                return "star"
            return "done" if text else "empty"

        return [
            [row[0]] + [category(cell) for cell in row[1:]]
            for row in table.rows
        ]

    def test_table5_sharded_matches_sequential_projection(self):
        from repro.experiments import table5

        grid = [(6, "low")]
        sequential = table5.run(time_limit=3.0, grid=grid, workers=1)
        sharded = table5.run(time_limit=3.0, grid=grid, workers=2)
        assert sharded.headers == sequential.headers
        assert [row[0] for row in sharded.rows] == [
            row[0] for row in sequential.rows
        ]
        assert self._categories(sharded) == self._categories(sequential)
        assert not any("sharded cell failed" in n for n in sharded.notes)

    def test_table6_sharded_matches_sequential_projection(self):
        from repro.experiments import table6

        sequential = table6.run(time_limit=3.0, sizes=[6], workers=1)
        sharded = table6.run(time_limit=3.0, sizes=[6], workers=3)
        assert sharded.headers == sequential.headers
        assert [row[0] for row in sharded.rows] == [
            row[0] for row in sequential.rows
        ]
        assert self._categories(sharded) == self._categories(sequential)
        # The implied-pair counts are exact and must merge identically.
        assert [row[-1] for row in sharded.rows] == [
            row[-1] for row in sequential.rows
        ]
        assert not any("sharded cell failed" in n for n in sharded.notes)

    def test_fig13_seed_race_runs_sharded(self):
        from repro.experiments import fig13

        # The reduced instance keeps greedy construction + the first
        # VNS descent cheap; the full TPC-DS instance takes minutes
        # per cell regardless of time_limit.
        table = fig13.run(
            time_limit=1.0,
            workers=2,
            seeds=(0, 1),
            instance_name="reduced-10",
        )
        assert table.headers == [
            "Elapsed [s]",
            "Deployment time",
            "Avg query runtime",
        ]
        assert len(table.rows) >= 1
        assert any("seed race" in note for note in table.notes)
        assert not any("sharded cell failed" in n for n in table.notes)
