"""Smoke tests for the experiment modules behind the benchmarks.

Each experiment must run end to end under tiny budgets and produce a
paper-shaped table.  These tests pin the *structure* (headers, row
labels, shape claims) rather than timing values.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation,
    build_savings,
    fig9,
    fig11,
    fig12,
    fig13,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.harness import ResultTable


class TestTable4:
    def test_rows_and_headers(self):
        table = table4.run()
        assert isinstance(table, ResultTable)
        labels = [row[0] for row in table.rows]
        assert "TPC-H" in labels
        assert "TPC-DS" in labels
        assert any("paper" in str(label) for label in labels)

    def test_measured_matches_instance(self, tpch_full):
        table = table4.run()
        tpch_row = next(row for row in table.rows if row[0] == "TPC-H")
        counts = tpch_full.interaction_counts()
        assert tpch_row[1] == counts["queries"]
        assert tpch_row[2] == counts["indexes"]


class TestTable5:
    def test_small_grid_runs(self):
        table = table5.run(time_limit=3.0, grid=[(6, "low"), (7, "low")])
        methods = [row[0] for row in table.rows]
        assert methods == ["MIP", "CP", "MIP+", "CP+", "VNS"]
        assert len(table.headers) == 3

    def test_cp_solves_small_low_density(self):
        table = table5.run(time_limit=5.0, grid=[(6, "low")])
        by_method = {row[0]: row[1] for row in table.rows}
        # CP and CP+ must close a 6-index low-density instance quickly.
        assert by_method["CP"] != "DF"
        assert by_method["CP+"] != "DF"


class TestTable6:
    def test_property_drilldown_rows(self):
        table = table6.run(time_limit=3.0, sizes=[6, 7])
        labels = [row[0] for row in table.rows]
        assert labels == ["CP", "+A", "+AC", "+ACM", "+ACMD", "+ACMDT"]

    def test_implied_pairs_monotone_down_the_ladder(self):
        table = table6.run(time_limit=3.0, sizes=[7])
        implied = [row[-1] for row in table.rows]
        assert implied == sorted(implied)


class TestTable7:
    def test_initial_solution_comparison(self):
        table = table7.run(samples=20)
        labels = [row[0] for row in table.rows]
        assert "TPC-H" in labels
        assert "TPC-DS" in labels
        assert [h.lower() for h in table.headers[1:5]] == [
            "greedy",
            "dp",
            "random (avg)",
            "random (min)",
        ]

    def test_greedy_beats_dp_and_random(self):
        # The paper's Table-7 ordering: Greedy < DP and Greedy < both
        # random statistics, on both workloads.
        table = table7.run(samples=30)
        for row in table.rows:
            label, greedy, dp, random_avg, random_min = row[:5]
            assert greedy <= dp, label
            assert greedy <= random_avg, label
            assert greedy <= random_min, label


class TestFig9:
    def test_tail_listing_structure(self):
        table = fig9.run(n_indexes=8, tail_length=2, max_rows=16)
        assert table.headers[0] == "Tail pattern"
        # Champion markers appear.
        champions = [row for row in table.rows if row[2]]
        assert champions


class TestFig11:
    def test_anytime_series(self):
        table = fig11.run(time_limit=1.5, n_runs=1)
        methods = [row[0] for row in table.rows]
        assert "VNS" in methods
        assert "LNS" in methods
        assert "TS-BSWAP" in methods
        assert "CP" in methods

    def test_series_monotone_nonincreasing(self):
        table = fig11.run(time_limit=1.5, n_runs=1)
        # Each method's row must be non-increasing over time.
        for row in table.rows:
            series = [cell for cell in row[1:] if isinstance(cell, float)]
            assert series == sorted(series, reverse=True), row[0]


class TestFig12:
    def test_tpcds_anytime_series(self):
        table = fig12.run(time_limit=2.0, n_runs=1)
        methods = [row[0] for row in table.rows]
        assert "VNS" in methods
        assert "TS-BSWAP" in methods
        assert "TS-FSWAP" in methods


class TestFig13:
    def test_decomposition_series(self):
        table = fig13.run(time_limit=1.5)
        assert table.rows
        headers = [h.lower() for h in table.headers]
        assert any("deploy" in h for h in headers)
        assert any("runtime" in h for h in headers)

    def test_deployment_time_improves(self):
        table = fig13.run(time_limit=2.0)
        deploy = [row[1] for row in table.rows if isinstance(row[1], float)]
        assert deploy[-1] <= deploy[0] + 1e-9


class TestBuildSavings:
    def test_section12_claims_measured(self):
        table = build_savings.run(time_limit=1.5)
        quantities = [str(row[0]).lower() for row in table.rows]
        assert any("single-index" in q or "build" in q for q in quantities)
        assert any("deployment" in q for q in quantities)

    def test_best_single_saving_substantial(self, tpcds_full):
        best = max(
            (
                bi.saving / tpcds_full.indexes[bi.target].create_cost
                for bi in tpcds_full.build_interactions
            ),
            default=0.0,
        )
        # Paper: up to ~80%.
        assert best >= 0.4


class TestAblation:
    def test_interactions_matter(self):
        table = ablation.run(time_limit=1.0)
        assert table.rows
        # Full-model objective must not be worse than interaction-blind.
        for row in table.rows:
            label, full, naive = row[0], row[1], row[2]
            if isinstance(full, float) and isinstance(naive, float):
                assert full <= naive * 1.02, label
