"""Unit tests for the experiment harness utilities."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    DF,
    ResultTable,
    engine_stats_note,
    format_cell,
    make_solver,
    quick_mode,
)


class TestFormatCell:
    def test_none_is_empty(self):
        assert format_cell(None) == ""

    def test_float_two_decimals(self):
        assert format_cell(3.14159) == "3.14"

    def test_tiny_positive_float(self):
        assert format_cell(0.001) == "<0.01"

    def test_zero(self):
        assert format_cell(0.0) == "0.00"

    def test_nan_is_empty(self):
        assert format_cell(float("nan")) == ""

    def test_string_passthrough(self):
        assert format_cell(DF) == "DF"

    def test_int(self):
        assert format_cell(42) == "42"


class TestResultTable:
    def test_render_contains_all_cells(self):
        table = ResultTable("T", headers=["a", "b"])
        table.add_row("x", 1.5)
        table.add_row("y", None)
        text = table.render()
        assert "T" in text
        assert "x" in text
        assert "1.50" in text

    def test_columns_aligned(self):
        table = ResultTable("T", headers=["method", "t"])
        table.add_row("very-long-method-name", 1.0)
        table.add_row("m", 2.0)
        lines = table.render().splitlines()
        data = [line for line in lines if "|" in line]
        pipes = {line.index("|") for line in data}
        assert len(pipes) == 1  # every row breaks at the same column

    def test_notes_rendered(self):
        table = ResultTable("T", headers=["a"])
        table.add_note("hello note")
        assert "hello note" in table.render()

    def test_row_wider_than_headers_renders_every_cell(self):
        # Merged shard tables can carry more cells per row than headers;
        # this used to raise IndexError while sizing the extra columns.
        table = ResultTable("T", headers=["method", "t"])
        table.add_row("base", 1.0)
        table.add_row("wide", 2.0, 3.0, "extra")
        text = table.render()
        assert "2.00" in text
        assert "3.00" in text
        assert "extra" in text

    def test_wide_rows_stay_aligned(self):
        table = ResultTable("T", headers=["m"])
        table.add_row("a", 1.0)
        table.add_row("bb", 22.0)
        lines = table.render().splitlines()
        data = [line for line in lines if "|" in line]
        pipes = {line.index("|") for line in data}
        assert len(pipes) == 1

    def test_as_dict_roundtrip_fields(self):
        table = ResultTable("T", headers=["a"])
        table.add_row(1.0)
        payload = table.as_dict()
        assert payload["title"] == "T"
        assert payload["headers"] == ["a"]
        assert payload["rows"] == [[1.0]]


class TestQuickMode:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert quick_mode()

    def test_full_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert not quick_mode()


class TestMakeSolver:
    def test_resolves_through_registry(self):
        from repro.solvers.localsearch.vns import VNSSolver

        solver = make_solver("vns", seed=9)
        assert isinstance(solver, VNSSolver)
        assert solver.seed == 9

    def test_unknown_name_raises(self):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            make_solver("nope")


class TestEngineStatsNote:
    def test_none_for_missing_stats(self):
        assert engine_stats_note("x", None) is None
        assert engine_stats_note("x", {}) is None

    def test_delta_format_is_parseable(self):
        import re

        note = engine_stats_note(
            "ts-bswap",
            {
                "delta_evals": 10,
                "replayed_steps": 40,
                "baseline_steps": 100,
                "memo_hits": 0,
                "memo_misses": 0,
            },
        )
        match = re.search(
            r"replayed (\d+) steps vs (\d+) prefix-cache baseline", note
        )
        assert match is not None
        assert int(match.group(1)) == 40
        assert int(match.group(2)) == 100
        assert "60% saved" in note

    def test_full_eval_only_stats(self):
        note = engine_stats_note("cp", {"full_evals": 7, "delta_evals": 0})
        assert note.startswith("engine[cp]:")
        assert "7 full evals" in note

    def test_memo_misses_without_hits_key(self):
        # Partial stats dicts (e.g. from a trimmed as_dict) used to
        # raise KeyError on the missing memo_hits key.
        note = engine_stats_note(
            "vns", {"full_evals": 3, "memo_misses": 5}
        )
        assert "memo 0/5 hits" in note

    def test_memo_hits_without_misses_key(self):
        note = engine_stats_note(
            "vns", {"full_evals": 3, "memo_hits": 4}
        )
        assert "memo 4/4 hits" in note
