"""Unit tests for the experiment harness utilities."""

from __future__ import annotations

import pytest

from repro.experiments.harness import DF, ResultTable, format_cell, quick_mode


class TestFormatCell:
    def test_none_is_empty(self):
        assert format_cell(None) == ""

    def test_float_two_decimals(self):
        assert format_cell(3.14159) == "3.14"

    def test_tiny_positive_float(self):
        assert format_cell(0.001) == "<0.01"

    def test_zero(self):
        assert format_cell(0.0) == "0.00"

    def test_nan_is_empty(self):
        assert format_cell(float("nan")) == ""

    def test_string_passthrough(self):
        assert format_cell(DF) == "DF"

    def test_int(self):
        assert format_cell(42) == "42"


class TestResultTable:
    def test_render_contains_all_cells(self):
        table = ResultTable("T", headers=["a", "b"])
        table.add_row("x", 1.5)
        table.add_row("y", None)
        text = table.render()
        assert "T" in text
        assert "x" in text
        assert "1.50" in text

    def test_columns_aligned(self):
        table = ResultTable("T", headers=["method", "t"])
        table.add_row("very-long-method-name", 1.0)
        table.add_row("m", 2.0)
        lines = table.render().splitlines()
        data = [line for line in lines if "|" in line]
        pipes = {line.index("|") for line in data}
        assert len(pipes) == 1  # every row breaks at the same column

    def test_notes_rendered(self):
        table = ResultTable("T", headers=["a"])
        table.add_note("hello note")
        assert "hello note" in table.render()

    def test_as_dict_roundtrip_fields(self):
        table = ResultTable("T", headers=["a"])
        table.add_row(1.0)
        payload = table.as_dict()
        assert payload["title"] == "T"
        assert payload["headers"] == ["a"]
        assert payload["rows"] == [[1.0]]


class TestQuickMode:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert quick_mode()

    def test_full_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert not quick_mode()
