"""End-to-end integration tests across the whole pipeline.

These mirror the paper's Figure-3 flow: workload -> design tool ->
what-if extraction -> matrix file -> pre-analysis -> solver ->
deployment schedule.
"""

from __future__ import annotations

import pytest

from repro.analysis.fixpoint import analyze
from repro.core.objective import ObjectiveEvaluator
from repro.core.serialization import load_instance, save_instance
from repro.core.solution import SolveStatus
from repro.core.validation import (
    check_order_feasible,
    check_precedence_feasibility,
)
from repro.dbms.advisor import AdvisorConfig, IndexAdvisor
from repro.dbms.catalog import Catalog
from repro.dbms.extract import InstanceExtractor
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query, Workload
from repro.dbms.schema import Column, IndexSpec, Table
from repro.solvers.base import Budget
from repro.solvers.cp.search import CPSolver
from repro.solvers.exhaustive import ExhaustiveSolver
from repro.solvers.greedy import GreedySolver
from repro.solvers.localsearch.vns import VNSSolver


def izunes_catalog() -> Catalog:
    """The introduction's iZunes store, post schema evolution."""
    catalog = Catalog()
    catalog.add_table(
        Table(
            "customer",
            [
                Column("custid", width=8, distinct=2_000_000),
                Column("name", width=32, distinct=1_500_000),
                Column("plan_tier", width=4, distinct=4),
                Column("signup_date", width=8, distinct=3_000),
            ],
            row_count=2_000_000,
        )
    )
    catalog.add_table(
        Table(
            "cust_countries",
            [
                Column("custid", width=8, distinct=2_000_000),
                Column("country", width=4, distinct=150),
            ],
            row_count=3_000_000,
        )
    )
    catalog.add_table(
        Table(
            "purchases",
            [
                Column("purchase_id", width=8, distinct=20_000_000),
                Column("custid", width=8, distinct=2_000_000),
                Column("track_id", width=8, distinct=500_000),
                Column("price", width=8, distinct=200),
                Column("purchase_date", width=8, distinct=3_000),
            ],
            row_count=20_000_000,
        )
    )
    return catalog


def izunes_workload() -> Workload:
    return Workload(
        "izunes",
        [
            Query(
                "rollup_by_country",
                tables=["customer", "cust_countries"],
                predicates=[
                    Predicate(
                        "cust_countries", "country", PredicateOp.EQ
                    )
                ],
                joins=[
                    JoinEdge(
                        "customer", "custid", "cust_countries", "custid"
                    )
                ],
                select=[("customer", "plan_tier")],
            ),
            Query(
                "revenue_by_country",
                tables=["cust_countries", "purchases"],
                predicates=[
                    Predicate(
                        "purchases",
                        "purchase_date",
                        PredicateOp.RANGE,
                        selectivity=0.1,
                    )
                ],
                joins=[
                    JoinEdge(
                        "cust_countries", "custid", "purchases", "custid"
                    )
                ],
                group_by=[("cust_countries", "country")],
                select=[("purchases", "price")],
            ),
            Query(
                "recent_signups",
                tables=["customer"],
                predicates=[
                    Predicate(
                        "customer",
                        "signup_date",
                        PredicateOp.RANGE,
                        selectivity=0.02,
                    )
                ],
                select=[("customer", "plan_tier")],
            ),
        ],
    )


@pytest.fixture(scope="module")
def izunes_instance():
    catalog = izunes_catalog()
    workload = izunes_workload()
    advisor = IndexAdvisor(catalog, workload, AdvisorConfig(max_indexes=8))
    suggested = advisor.select()
    extractor = InstanceExtractor(catalog, workload)
    return extractor.extract(suggested, name="izunes")


class TestFullPipeline:
    def test_extraction_produces_solvable_instance(self, izunes_instance):
        assert 2 <= izunes_instance.n_indexes <= 8
        assert izunes_instance.n_plans >= izunes_instance.n_queries - 1
        check_precedence_feasibility(izunes_instance)

    def test_matrix_file_roundtrip_through_disk(
        self, izunes_instance, tmp_path
    ):
        path = tmp_path / "izunes.json"
        save_instance(izunes_instance, path)
        again = load_instance(path)
        order = list(range(again.n_indexes))
        assert ObjectiveEvaluator(again).evaluate(order) == pytest.approx(
            ObjectiveEvaluator(izunes_instance).evaluate(order)
        )

    def test_analysis_then_exact_solve(self, izunes_instance):
        report = analyze(izunes_instance)
        if izunes_instance.n_indexes <= 8:
            result = ExhaustiveSolver().solve(
                izunes_instance, constraints=report.constraints
            )
            assert result.status is SolveStatus.OPTIMAL
            check_order_feasible(izunes_instance, result.solution.order)

    def test_greedy_vns_improvement_chain(self, izunes_instance):
        greedy = GreedySolver().solve(izunes_instance)
        vns = VNSSolver(seed=0).solve(
            izunes_instance, budget=Budget(time_limit=1.0)
        )
        assert vns.solution.objective <= greedy.solution.objective + 1e-9

    def test_schedule_narrates_deployment(self, izunes_instance):
        result = GreedySolver().solve(izunes_instance)
        schedule = ObjectiveEvaluator(izunes_instance).schedule(
            result.solution.order
        )
        assert len(schedule.steps) == izunes_instance.n_indexes
        assert schedule.total_deploy_time > 0
        # The improvement curve ends at the fully-tuned runtime.
        final = izunes_instance.total_runtime(
            range(izunes_instance.n_indexes)
        )
        assert schedule.final_runtime == pytest.approx(final)


class TestCrossSolverAgreement:
    """CP and exhaustive must agree on extracted (not just synthetic) data."""

    def test_cp_matches_exhaustive(self, izunes_instance):
        if izunes_instance.n_indexes > 7:
            pytest.skip("CP would be slow; covered by reduced instance")
        exhaustive = ExhaustiveSolver().solve(izunes_instance)
        cp = CPSolver().solve(izunes_instance)
        assert cp.solution.objective == pytest.approx(
            exhaustive.solution.objective
        )

    def test_reduced_tpch_cross_check(self, reduced_tpch_13):
        # 13-index low-density TPC-H: exhaustive B&B with bounding and
        # pre-analysis constraints closes it quickly; CP+ must agree.
        report = analyze(reduced_tpch_13)
        exhaustive = ExhaustiveSolver().solve(
            reduced_tpch_13,
            constraints=report.constraints,
            budget=Budget(time_limit=60.0),
        )
        cp = CPSolver().solve(
            reduced_tpch_13,
            constraints=report.constraints,
            budget=Budget(time_limit=60.0),
        )
        if (
            exhaustive.status is SolveStatus.OPTIMAL
            and cp.status is SolveStatus.OPTIMAL
        ):
            assert cp.solution.objective == pytest.approx(
                exhaustive.solution.objective
            )
        else:
            # Budgets too tight on this machine: both must still hold
            # feasible solutions.
            assert exhaustive.solution is not None
            assert cp.solution is not None
