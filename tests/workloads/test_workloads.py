"""Unit tests for the TPC-H / TPC-DS workload models and the generator."""

from __future__ import annotations

import pytest

from repro.workloads.generator import GeneratorConfig, generate_instance
from repro.workloads.tpch import tpch_catalog, tpch_workload
from repro.workloads.tpcds import tpcds_catalog, tpcds_workload
from repro.errors import ValidationError


class TestTPCHCatalog:
    def test_eight_tables(self):
        catalog = tpch_catalog()
        names = {t.name for t in catalog.tables}
        assert names == {
            "region",
            "nation",
            "supplier",
            "customer",
            "part",
            "partsupp",
            "orders",
            "lineitem",
        }

    def test_official_cardinality_ratios(self):
        catalog = tpch_catalog()
        assert catalog.table("region").row_count == 5
        assert catalog.table("nation").row_count == 25
        orders = catalog.table("orders").row_count
        lineitem = catalog.table("lineitem").row_count
        customer = catalog.table("customer").row_count
        assert orders == 10 * customer
        assert 3.9 <= lineitem / orders <= 4.1

    def test_scale_factor(self):
        small = tpch_catalog(scale=1.0)
        large = tpch_catalog(scale=2.0)
        assert (
            large.table("lineitem").row_count
            == 2 * small.table("lineitem").row_count
        )
        # Fixed tables do not scale.
        assert large.table("region").row_count == 5


class TestTPCHWorkload:
    def test_22_queries(self):
        assert len(tpch_workload()) == 22

    def test_queries_reference_catalog_columns(self):
        catalog = tpch_catalog()
        for query in tpch_workload():
            for table_name in query.tables:
                table = catalog.table(table_name)
                for column in query.columns_needed(table_name):
                    assert table.has_column(column), (
                        f"{query.name}: {table_name}.{column}"
                    )

    def test_join_graphs_connected(self):
        import networkx as nx

        for query in tpch_workload():
            if len(query.tables) == 1:
                continue
            graph = nx.Graph()
            graph.add_nodes_from(query.tables)
            for join in query.joins:
                graph.add_edge(join.left, join.right)
            assert nx.is_connected(graph), query.name


class TestTPCDS:
    def test_102_queries(self):
        assert len(tpcds_workload()) == 102

    def test_star_schema_tables_present(self):
        catalog = tpcds_catalog()
        names = {t.name for t in catalog.tables}
        assert "store_sales" in names
        assert "catalog_sales" in names
        assert "web_sales" in names
        assert "date_dim" in names
        assert "item" in names

    def test_queries_reference_catalog_columns(self):
        catalog = tpcds_catalog()
        for query in tpcds_workload():
            for table_name in query.tables:
                table = catalog.table(table_name)
                for column in query.columns_needed(table_name):
                    assert table.has_column(column), (
                        f"{query.name}: {table_name}.{column}"
                    )

    def test_deterministic_workload(self):
        first = tpcds_workload(seed=2012)
        second = tpcds_workload(seed=2012)
        assert [q.name for q in first] == [q.name for q in second]
        assert [len(q.joins) for q in first] == [len(q.joins) for q in second]

    def test_substantially_more_complex_than_tpch(self):
        # The motivation for TPC-DS in the paper: bigger joins, more
        # queries.
        tpch_joins = sum(len(q.joins) for q in tpch_workload())
        tpcds_joins = sum(len(q.joins) for q in tpcds_workload())
        assert tpcds_joins > 2 * tpch_joins


class TestGenerator:
    def test_deterministic(self):
        a = generate_instance(seed=3)
        b = generate_instance(seed=3)
        assert a.indexes == b.indexes
        assert a.plans == b.plans

    def test_different_seeds_differ(self):
        a = generate_instance(seed=1)
        b = generate_instance(seed=2)
        assert a.plans != b.plans

    def test_respects_shape_knobs(self):
        config = GeneratorConfig(
            n_indexes=15, n_queries=7, max_plan_size=3
        )
        instance = generate_instance(seed=0, config=config)
        assert instance.n_indexes == 15
        assert instance.n_queries == 7
        assert all(len(p.indexes) <= 3 for p in instance.plans)

    def test_every_query_has_a_plan(self):
        instance = generate_instance(
            seed=5, config=GeneratorConfig(n_queries=9)
        )
        for query in instance.queries:
            assert instance.plans_of_query(query.query_id)

    def test_build_interaction_rate(self):
        sparse = generate_instance(
            seed=0, config=GeneratorConfig(build_interaction_rate=0.0)
        )
        dense = generate_instance(
            seed=0, config=GeneratorConfig(build_interaction_rate=3.0)
        )
        assert len(sparse.build_interactions) == 0
        assert len(dense.build_interactions) > len(sparse.build_interactions)

    def test_precedences_generated_acyclic(self):
        from repro.core.validation import check_precedence_feasibility

        instance = generate_instance(
            seed=0,
            config=GeneratorConfig(n_indexes=20, precedence_rate=10.0),
        )
        assert instance.precedences
        check_precedence_feasibility(instance)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            generate_instance(
                seed=0, config=GeneratorConfig(n_indexes=0)
            )

    def test_instance_is_self_consistent(self):
        # Every generated instance passes ProblemInstance validation by
        # construction; additionally the custom name must be honoured.
        instance = generate_instance(seed=7, name="custom")
        assert instance.name == "custom"
