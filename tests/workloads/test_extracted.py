"""Tests for the packaged TPC-H / TPC-DS extracted instances.

These check the Table-4 shape claims the benchmarks rely on: instance
sizes within the paper's ballpark and a clear density gap between TPC-H
and TPC-DS.
"""

from __future__ import annotations

import pytest

from repro.core.validation import check_precedence_feasibility, lint_instance


class TestTPCHInstance:
    def test_shape_near_paper(self, tpch_full):
        counts = tpch_full.interaction_counts()
        assert counts["queries"] == 22
        assert 25 <= counts["indexes"] <= 40  # paper: 31
        assert 100 <= counts["plans"] <= 350  # paper: 221
        assert 4 <= counts["largest_plan"] <= 7  # paper: 5

    def test_has_build_and_query_interactions(self, tpch_full):
        counts = tpch_full.interaction_counts()
        assert counts["build_interactions"] > 0
        assert counts["query_interactions"] > 0

    def test_precedences_feasible(self, tpch_full):
        check_precedence_feasibility(tpch_full)

    def test_no_duplicate_plans(self, tpch_full):
        warnings = lint_instance(tpch_full)
        assert not [w for w in warnings if "duplicate" in w]


class TestTPCDSInstance:
    def test_shape_near_paper(self, tpcds_full):
        counts = tpcds_full.interaction_counts()
        assert counts["queries"] == 102
        assert 100 <= counts["indexes"] <= 160  # paper: 148
        assert 1500 <= counts["plans"] <= 5000  # paper: 3386
        assert counts["largest_plan"] >= 5  # paper: 13

    def test_denser_than_tpch(self, tpch_full, tpcds_full):
        tpch = tpch_full.interaction_counts()
        tpcds = tpcds_full.interaction_counts()
        assert tpcds["indexes"] > 3 * tpch["indexes"]
        assert tpcds["plans"] > 5 * tpch["plans"]
        assert tpcds["query_interactions"] > 5 * tpch["query_interactions"]
        assert tpcds["build_interactions"] > tpch["build_interactions"]

    def test_precedences_feasible(self, tpcds_full):
        check_precedence_feasibility(tpcds_full)


class TestReducedInstances:
    def test_reduced_size(self, reduced_tpch_13):
        assert reduced_tpch_13.n_indexes == 13

    def test_low_density_semantics(self, reduced_tpch_13):
        # low density: no build interactions, one plan per served query.
        assert len(reduced_tpch_13.build_interactions) == 0
        for query in reduced_tpch_13.queries:
            assert len(reduced_tpch_13.plans_of_query(query.query_id)) <= 1

    @pytest.mark.parametrize("n", [6, 11, 16])
    def test_varied_sizes(self, n):
        from repro.experiments.instances import reduced_tpch

        instance = reduced_tpch(n, "low")
        assert instance.n_indexes == n

    def test_mid_density_keeps_some_interactions(self):
        from repro.experiments.instances import reduced_tpch

        instance = reduced_tpch(16, "mid")
        for query in instance.queries:
            assert len(instance.plans_of_query(query.query_id)) <= 2
