"""Unit tests for the subset-lattice machinery shared by A* and DP."""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.core.objective import ObjectiveEvaluator
from repro.solvers.astar import AStarSolver, _Lattice, _deployment_units

from tests.conftest import brute_force_best, make_paper_example, small_synthetic


class TestDeploymentUnits:
    def test_no_constraints_singletons(self):
        assert _deployment_units(3, None) == [(0,), (1,), (2,)]

    def test_consecutive_pair_collapsed(self):
        constraints = ConstraintSet(4)
        constraints.add_consecutive(1, 3)
        units = _deployment_units(4, constraints)
        assert (1, 3) in units
        assert (0,) in units
        assert (2,) in units

    def test_chain_of_three(self):
        constraints = ConstraintSet(4)
        constraints.add_consecutive(0, 2)
        constraints.add_consecutive(2, 3)
        units = _deployment_units(4, constraints)
        assert (0, 2, 3) in units
        assert len(units) == 2

    def test_units_partition_indexes(self):
        constraints = ConstraintSet(6)
        constraints.add_consecutive(4, 1)
        units = _deployment_units(6, constraints)
        members = sorted(m for unit in units for m in unit)
        assert members == list(range(6))


class TestLattice:
    def test_runtime_cached_and_correct(self):
        instance = small_synthetic(seed=0, n=5)
        lattice = _Lattice(instance, None)
        full = (1 << 5) - 1
        assert lattice.runtime(0) == pytest.approx(
            instance.total_base_runtime
        )
        assert lattice.runtime(full) == pytest.approx(
            instance.total_runtime(range(5))
        )
        # Second call hits the cache (same object identity not required,
        # just correctness).
        assert lattice.runtime(full) == lattice.runtime(full)

    def test_unit_cost_matches_evaluator_step(self):
        instance = make_paper_example()
        lattice = _Lattice(instance, None)
        evaluator = ObjectiveEvaluator(instance)
        # Deploy index 1 first, then unit 0 from mask {1}.
        objective_0, cost_0 = lattice.unit_cost(1, 0)
        schedule = evaluator.schedule([1, 0])
        assert objective_0 == pytest.approx(schedule.steps[0].area)
        objective_1, cost_1 = lattice.unit_cost(0, 1 << 1)
        assert objective_1 == pytest.approx(schedule.steps[1].area)
        assert cost_1 == pytest.approx(schedule.steps[1].build_cost)

    def test_heuristic_admissible(self):
        instance = small_synthetic(seed=3, n=6)
        lattice = _Lattice(instance, None)
        _, optimum = brute_force_best(instance)
        assert lattice.heuristic(0) <= optimum + 1e-6

    def test_expandable_blocks_predecessors(self):
        instance = small_synthetic(seed=1, n=4)
        constraints = ConstraintSet(4)
        constraints.add_precedence(2, 0)
        lattice = _Lattice(instance, constraints)
        unit_of = {unit: i for i, unit in enumerate(lattice.units)}
        unit_0 = unit_of[(0,)]
        assert not lattice.expandable(unit_0, 0)  # 2 not built yet
        assert lattice.expandable(unit_0, 1 << 2)

    def test_expandable_rejects_already_built(self):
        instance = small_synthetic(seed=1, n=4)
        lattice = _Lattice(instance, None)
        assert not lattice.expandable(0, 1 << 0)


class TestAStarWithUnits:
    def test_astar_respects_consecutive_constraints(self):
        instance = small_synthetic(seed=5, n=6)
        constraints = ConstraintSet(6)
        constraints.add_consecutive(0, 4)
        result = AStarSolver().solve(instance, constraints=constraints)
        order = result.solution.order
        assert order.index(4) == order.index(0) + 1
        _, best = brute_force_best(instance, constraints)
        assert result.solution.objective == pytest.approx(best)
