"""Unit tests for solver infrastructure: Budget, the engine bound, repair."""

from __future__ import annotations

import time

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.core.engine import EvalEngine
from repro.core.objective import ObjectiveEvaluator
from repro.solvers.base import Budget, glue_consecutive, repair_order

from tests.conftest import make_paper_example, small_synthetic


class TestBudget:
    def test_no_limits_never_exhausted(self):
        budget = Budget()
        budget.tick(10_000)
        assert not budget.exhausted

    def test_node_limit(self):
        budget = Budget(node_limit=5)
        budget.tick(4)
        assert not budget.exhausted
        budget.tick(1)
        assert budget.exhausted

    def test_time_limit(self):
        budget = Budget(time_limit=0.0)
        assert budget.exhausted

    def test_elapsed_increases(self):
        budget = Budget()
        first = budget.elapsed
        time.sleep(0.01)
        assert budget.elapsed > first

    def test_restart_resets(self):
        budget = Budget(node_limit=3)
        budget.tick(3)
        assert budget.exhausted
        budget.restart()
        assert budget.nodes == 0
        assert not budget.exhausted


class TestEngineSuffixBound:
    """The engine's density bound is the single bound of the stack."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_admissible_at_root(self, seed):
        import itertools

        instance = small_synthetic(seed=seed, n=6)
        engine = EvalEngine(instance)
        evaluator = ObjectiveEvaluator(instance)
        root_bound = engine.suffix_bound(instance.total_base_runtime, set())
        optimum = min(
            evaluator.evaluate(list(order))
            for order in itertools.permutations(range(6))
        )
        assert root_bound <= optimum + 1e-6

    def test_admissible_mid_search(self):
        import itertools

        instance = small_synthetic(seed=7, n=6)
        engine = EvalEngine(instance)
        evaluator = ObjectiveEvaluator(instance)
        for order in itertools.permutations(range(6)):
            prefix = list(order[:3])
            prefix_obj, runtime, _ = evaluator.evaluate_prefix(prefix)
            suffix_bound = engine.suffix_bound(runtime, set(prefix))
            total = evaluator.evaluate(list(order))
            assert prefix_obj + suffix_bound <= total + 1e-6

    def test_mask_and_set_agree(self):
        instance = small_synthetic(seed=2, n=6)
        engine = EvalEngine(instance)
        built = {0, 3, 4}
        runtime = instance.total_runtime(built)
        assert engine.suffix_bound(runtime, built) == pytest.approx(
            engine.suffix_bound(runtime, engine.mask_of(built))
        )

    def test_bound_positive_when_work_remains(self, paper_example):
        engine = EvalEngine(paper_example)
        assert (
            engine.suffix_bound(paper_example.total_base_runtime, set()) > 0.0
        )


class TestRepairOrder:
    def test_identity_without_constraints(self):
        order = [3, 1, 2, 0]
        assert repair_order(order, None) == order

    def test_moves_predecessors_first(self):
        constraints = ConstraintSet(4)
        constraints.add_precedence(2, 0)
        repaired = repair_order([0, 1, 2, 3], constraints)
        assert constraints.check_order(repaired) or constraints.consecutive_pairs
        assert repaired.index(2) < repaired.index(0)

    def test_result_is_permutation(self):
        constraints = ConstraintSet(5)
        constraints.add_precedence(4, 0)
        constraints.add_precedence(3, 1)
        repaired = repair_order([0, 1, 2, 3, 4], constraints)
        assert sorted(repaired) == list(range(5))


class TestGlueConsecutive:
    def test_glues_pairs_adjacently(self):
        constraints = ConstraintSet(4)
        constraints.add_consecutive(1, 3)
        glued = glue_consecutive([3, 0, 1, 2], constraints)
        assert sorted(glued) == [0, 1, 2, 3]
        assert glued.index(3) == glued.index(1) + 1

    def test_no_pairs_is_identity(self):
        constraints = ConstraintSet(3)
        assert glue_consecutive([2, 0, 1], constraints) == [2, 0, 1]

    def test_full_feasibility_after_glue(self):
        constraints = ConstraintSet(5)
        constraints.add_consecutive(0, 1)
        constraints.add_precedence(2, 0)
        order = repair_order([4, 1, 0, 3, 2], constraints)
        glued = glue_consecutive(order, constraints)
        assert constraints.check_order(glued)
