"""Unit tests for the time-indexed MIP formulation (Appendix B).

The MIP is the paper's weakest method; it only handles tiny instances.
Tests keep ``n <= 5`` and use generous discretization so the model stays
exact enough to order correctly.
"""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import SolveStatus
from repro.solvers.base import Budget
from repro.solvers.mip.branch_bound import MIPSolver
from repro.solvers.mip.model import build_model

from tests.conftest import brute_force_best, make_paper_example, small_synthetic


class TestMIPModel:
    def test_model_builds(self, paper_example):
        model = build_model(paper_example, steps_per_index=4)
        assert model.n_variables > 0

    def test_variable_count_grows_with_discretization(self, paper_example):
        small = build_model(paper_example, steps_per_index=2)
        large = build_model(paper_example, steps_per_index=8)
        assert large.n_variables > small.n_variables

    def test_discretized_objective_ranks_orders(self, paper_example):
        # The discretized objective must agree with the exact evaluator
        # on which order is better.
        model = build_model(paper_example, steps_per_index=8)
        evaluator = ObjectiveEvaluator(paper_example)
        good = model.discretized_objective([1, 0])
        bad = model.discretized_objective([0, 1])
        assert (good < bad) == (
            evaluator.evaluate([1, 0]) < evaluator.evaluate([0, 1])
        )


class TestMIPSolver:
    def test_paper_example_order(self, paper_example):
        result = MIPSolver(steps_per_index=8).solve(
            paper_example, budget=Budget(time_limit=60.0)
        )
        assert result.solution is not None
        assert result.solution.order == (1, 0)

    def test_tiny_synthetic(self):
        instance = small_synthetic(seed=0, n=3, n_queries=3)
        _, best = brute_force_best(instance)
        result = MIPSolver(steps_per_index=6).solve(
            instance, budget=Budget(time_limit=120.0)
        )
        assert result.solution is not None
        # Discretization error allows small slack; the returned order is
        # re-evaluated exactly, so compare objectives directly.
        assert result.solution.objective <= best * 1.10 + 1e-9

    def test_did_not_finish_on_variable_blowup(self, tpcds_full):
        result = MIPSolver(variable_limit=1000).solve(tpcds_full)
        assert result.status is SolveStatus.DID_NOT_FINISH
        assert result.solution is None
        assert "variable" in result.message.lower() or result.message

    def test_budget_timeout_reported(self):
        instance = small_synthetic(seed=2, n=5)
        result = MIPSolver(steps_per_index=6).solve(
            instance, budget=Budget(time_limit=0.01)
        )
        assert result.status in (
            SolveStatus.TIMEOUT,
            SolveStatus.DID_NOT_FINISH,
            SolveStatus.FEASIBLE,
        )

    def test_constraints_respected(self, paper_example):
        constraints = ConstraintSet(2)
        constraints.add_precedence(0, 1)  # force the bad order
        result = MIPSolver(steps_per_index=8).solve(
            paper_example,
            constraints=constraints,
            budget=Budget(time_limit=60.0),
        )
        assert result.solution is not None
        assert result.solution.order == (0, 1)
