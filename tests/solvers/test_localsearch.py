"""Unit tests for the local-search solvers (Section 7)."""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import SolveStatus
from repro.solvers.base import Budget
from repro.solvers.greedy import greedy_order
from repro.solvers.localsearch.lns import LNSSolver
from repro.solvers.localsearch.neighborhood import apply_swap, swap_feasible
from repro.solvers.localsearch.tabu import TabuSolver
from repro.solvers.localsearch.vns import VNSSolver

from tests.conftest import brute_force_best, small_synthetic

LOCAL_SOLVERS = [
    pytest.param(TabuSolver(variant="best"), id="ts-bswap"),
    pytest.param(TabuSolver(variant="first"), id="ts-fswap"),
    pytest.param(LNSSolver(seed=0), id="lns"),
    pytest.param(VNSSolver(seed=0), id="vns"),
]


class TestNeighborhood:
    def test_apply_swap(self):
        assert apply_swap([0, 1, 2, 3], 1, 3) == [0, 3, 2, 1]

    def test_swap_feasible_without_constraints(self):
        assert swap_feasible([0, 1, 2], 0, 2, None)

    def test_swap_feasible_respects_precedence(self):
        constraints = ConstraintSet(3)
        constraints.add_precedence(0, 2)
        order = [0, 1, 2]
        assert not swap_feasible(order, 0, 2, constraints)
        assert swap_feasible(order, 0, 1, constraints)

    def test_swap_feasible_respects_consecutive(self):
        constraints = ConstraintSet(4)
        constraints.add_consecutive(0, 1)
        order = [0, 1, 2, 3]
        # Swapping 1 away from its partner breaks adjacency.
        assert not swap_feasible(order, 1, 3, constraints)
        assert swap_feasible(order, 2, 3, constraints)


@pytest.mark.parametrize("solver", LOCAL_SOLVERS)
class TestLocalSearchCommon:
    def test_valid_solution(self, solver):
        instance = small_synthetic(seed=1, n=8)
        result = solver.solve(instance, budget=Budget(time_limit=0.5))
        assert result.solution is not None
        result.solution.validate_against(instance)

    def test_never_worse_than_greedy_start(self, solver):
        instance = small_synthetic(seed=2, n=10)
        evaluator = ObjectiveEvaluator(instance)
        greedy_objective = evaluator.evaluate(greedy_order(instance))
        result = solver.solve(instance, budget=Budget(time_limit=0.5))
        assert result.solution.objective <= greedy_objective + 1e-9

    def test_constraints_respected(self, solver):
        instance = small_synthetic(seed=3, n=8)
        constraints = ConstraintSet(8)
        constraints.add_precedence(7, 0)
        constraints.add_consecutive(1, 4)
        result = solver.solve(
            instance, constraints=constraints, budget=Budget(time_limit=0.5)
        )
        assert constraints.check_order(result.solution.order)

    def test_trace_is_monotone_improving(self, solver):
        instance = small_synthetic(seed=4, n=10)
        result = solver.solve(instance, budget=Budget(time_limit=0.5))
        objectives = [objective for _, objective in result.trace]
        assert objectives == sorted(objectives, reverse=True)

    def test_status_is_feasible_or_timeout(self, solver):
        instance = small_synthetic(seed=5, n=8)
        result = solver.solve(instance, budget=Budget(time_limit=0.3))
        assert result.status in (SolveStatus.FEASIBLE, SolveStatus.TIMEOUT)


class TestLocalSearchQuality:
    @pytest.mark.parametrize(
        "solver",
        [
            pytest.param(TabuSolver(variant="best"), id="ts-bswap"),
            pytest.param(VNSSolver(seed=0), id="vns"),
        ],
    )
    def test_strong_methods_reach_optimum(self, solver):
        # n=6: 720 permutations; the full-scan tabu and the adaptive VNS
        # must find the optimum.
        instance = small_synthetic(seed=6, n=6)
        _, best = brute_force_best(instance)
        result = solver.solve(instance, budget=Budget(time_limit=1.0))
        assert result.solution.objective == pytest.approx(best, rel=1e-9)

    @pytest.mark.parametrize(
        "solver",
        [
            pytest.param(TabuSolver(variant="first"), id="ts-fswap"),
            pytest.param(LNSSolver(seed=0), id="lns"),
        ],
    )
    def test_weak_methods_get_close(self, solver):
        # TS-FSwap and fixed-parameter LNS may stall in local optima
        # (the paper's motivation for VNS); they must still land within
        # 10% of the optimum on a tiny instance.
        instance = small_synthetic(seed=6, n=6)
        _, best = brute_force_best(instance)
        result = solver.solve(instance, budget=Budget(time_limit=1.0))
        assert result.solution.objective <= best * 1.10


class TestTabuSpecifics:
    def test_variant_names(self):
        assert TabuSolver(variant="best").name == "ts-bswap"
        assert TabuSolver(variant="first").name == "ts-fswap"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            TabuSolver(variant="worst")

    def test_custom_initial_order_used(self):
        instance = small_synthetic(seed=7, n=6)
        initial = list(range(6))
        result = TabuSolver(variant="best", initial_order=initial).solve(
            instance, budget=Budget(time_limit=0.3)
        )
        start_objective = ObjectiveEvaluator(instance).evaluate(initial)
        assert result.solution.objective <= start_objective + 1e-9


class TestVNSSpecifics:
    def test_deterministic_per_seed(self):
        instance = small_synthetic(seed=8, n=10)
        first = VNSSolver(seed=5).solve(instance, budget=Budget(node_limit=300))
        second = VNSSolver(seed=5).solve(instance, budget=Budget(node_limit=300))
        assert first.solution.order == second.solution.order

    def test_improvement_callback_fires(self):
        instance = small_synthetic(seed=9, n=10)
        events = []
        solver = VNSSolver(
            seed=0, on_improvement=lambda elapsed, order: events.append(order)
        )
        solver.solve(instance, budget=Budget(time_limit=0.5))
        assert events  # greedy start improved at least once

    def test_beats_or_matches_lns_given_same_budget(self):
        # Not a strict theorem, but with the same seed/budget on a rugged
        # instance VNS should not be dramatically worse; guard with a
        # generous factor to stay deterministic.
        instance = small_synthetic(seed=10, n=14, plans_per_query=4.0)
        budget_vns = Budget(node_limit=2000)
        budget_lns = Budget(node_limit=2000)
        vns = VNSSolver(seed=1).solve(instance, budget=budget_vns)
        lns = LNSSolver(seed=1).solve(instance, budget=budget_lns)
        assert vns.solution.objective <= lns.solution.objective * 1.05
