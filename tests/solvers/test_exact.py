"""Unit tests for the exact solvers: exhaustive B&B, subset DP, A*.

Every exact solver must find the brute-force optimum and prove
optimality on instances small enough for the oracle.
"""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.analysis.fixpoint import analyze
from repro.core.solution import SolveStatus
from repro.errors import SolverError, ValidationError
from repro.solvers.astar import AStarSolver, SubsetDPSolver
from repro.solvers.base import Budget
from repro.solvers.exhaustive import ExhaustiveSolver

from tests.conftest import (
    brute_force_best,
    make_paper_example,
    make_precedence_example,
    small_synthetic,
)

EXACT_SOLVERS = [
    pytest.param(ExhaustiveSolver(), id="exhaustive"),
    pytest.param(ExhaustiveSolver(use_bound=False), id="exhaustive-nobound"),
    pytest.param(SubsetDPSolver(), id="subset-dp"),
    pytest.param(AStarSolver(), id="astar"),
]


@pytest.mark.parametrize("solver", EXACT_SOLVERS)
class TestExactOptimality:
    def test_paper_example(self, solver, paper_example):
        best_order, best_objective = brute_force_best(paper_example)
        result = solver.solve(paper_example)
        assert result.status is SolveStatus.OPTIMAL
        assert result.solution.objective == pytest.approx(best_objective)

    @pytest.mark.parametrize("seed", range(5))
    def test_synthetic_optimum(self, solver, seed):
        instance = small_synthetic(seed=seed, n=6)
        _, best_objective = brute_force_best(instance)
        result = solver.solve(instance)
        assert result.status is SolveStatus.OPTIMAL
        assert result.solution.objective == pytest.approx(best_objective)
        result.solution.validate_against(instance)

    def test_build_interactions_handled(self, solver):
        instance = small_synthetic(seed=3, n=6, build_interaction_rate=2.0)
        _, best_objective = brute_force_best(instance)
        result = solver.solve(instance)
        assert result.solution.objective == pytest.approx(best_objective)

    def test_single_index_instance(self, solver):
        instance = small_synthetic(seed=0, n=1)
        result = solver.solve(instance)
        assert result.solution.order == (0,)
        assert result.status is SolveStatus.OPTIMAL


class TestExactWithConstraints:
    @pytest.mark.parametrize(
        "solver",
        [
            pytest.param(ExhaustiveSolver(), id="exhaustive"),
        ],
    )
    def test_constraints_change_feasible_set(self, solver):
        instance = small_synthetic(seed=8, n=6)
        constraints = ConstraintSet(6)
        constraints.add_precedence(5, 0)
        _, best_constrained = brute_force_best(instance, constraints)
        result = solver.solve(instance, constraints=constraints)
        assert result.solution.objective == pytest.approx(best_constrained)
        assert constraints.check_order(result.solution.order)

    def test_analysis_constraints_preserve_exhaustive_optimum(self):
        instance = small_synthetic(seed=4, n=7)
        _, unconstrained = brute_force_best(instance)
        report = analyze(instance)
        result = ExhaustiveSolver().solve(
            instance, constraints=report.constraints
        )
        assert result.solution.objective == pytest.approx(unconstrained)

    def test_precedence_example(self):
        instance = make_precedence_example()
        constraints = ConstraintSet(3)
        for rule in instance.precedences:
            constraints.add_precedence(rule.before, rule.after)
        result = ExhaustiveSolver().solve(instance, constraints=constraints)
        assert result.solution.order[0] == 0  # clustered index first
        _, best = brute_force_best(instance, constraints)
        assert result.solution.objective == pytest.approx(best)


class TestBudgets:
    def test_exhaustive_times_out_gracefully(self):
        instance = small_synthetic(seed=1, n=9)
        result = ExhaustiveSolver().solve(
            instance, budget=Budget(node_limit=5)
        )
        assert result.status in (SolveStatus.TIMEOUT, SolveStatus.FEASIBLE)
        if result.solution is not None:
            result.solution.validate_against(instance)

    def test_astar_node_budget(self):
        instance = small_synthetic(seed=1, n=9)
        result = AStarSolver().solve(instance, budget=Budget(node_limit=3))
        assert result.status is not SolveStatus.OPTIMAL


class TestSubsetDPGuard:
    def test_refuses_large_instances(self):
        instance = small_synthetic(seed=0, n=6)
        solver = SubsetDPSolver(max_indexes=5)
        with pytest.raises(ValidationError, match="limited to"):
            solver.solve(instance)

    def test_nodes_counted(self):
        instance = small_synthetic(seed=0, n=6)
        result = SubsetDPSolver().solve(instance)
        assert result.nodes > 0


class TestSolversAgreeOnDegenerateShapes:
    def test_no_plans_at_all(self):
        from repro.core.instance import IndexDef, ProblemInstance, QueryDef

        instance = ProblemInstance(
            indexes=[IndexDef(i, f"ix{i}", 10.0 + i) for i in range(4)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[],
        )
        # Runtime never changes; any order has the same objective.
        _, best = brute_force_best(instance)
        for solver in (ExhaustiveSolver(), SubsetDPSolver(), AStarSolver()):
            result = solver.solve(instance)
            assert result.solution.objective == pytest.approx(best)

    def test_zero_runtime_queries(self):
        from repro.core.instance import IndexDef, ProblemInstance, QueryDef

        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 5.0), IndexDef(1, "b", 3.0)],
            queries=[QueryDef(0, "q", 0.0)],
            plans=[],
        )
        result = ExhaustiveSolver().solve(instance)
        assert result.solution.objective == pytest.approx(0.0)
