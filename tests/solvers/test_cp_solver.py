"""Unit tests for the CP solver (Section 6)."""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.analysis.fixpoint import analyze
from repro.core.solution import SolveStatus
from repro.solvers.base import Budget
from repro.solvers.cp.search import CPModel, CPSearch, CPSolver

from tests.conftest import (
    brute_force_best,
    make_paper_example,
    make_precedence_example,
    small_synthetic,
)


class TestCPSolverOptimality:
    @pytest.mark.parametrize("seed", range(4))
    def test_finds_and_proves_optimum(self, seed):
        instance = small_synthetic(seed=seed, n=6)
        _, best = brute_force_best(instance)
        result = CPSolver().solve(instance)
        assert result.status is SolveStatus.OPTIMAL
        assert result.solution.objective == pytest.approx(best)
        result.solution.validate_against(instance)

    def test_paper_example(self, paper_example):
        result = CPSolver().solve(paper_example)
        assert result.status is SolveStatus.OPTIMAL
        assert result.solution.order == (1, 0)

    @pytest.mark.parametrize("strategy", ["first_fail", "sequential"])
    def test_both_strategies_agree(self, strategy):
        instance = small_synthetic(seed=2, n=6)
        _, best = brute_force_best(instance)
        result = CPSolver(strategy=strategy).solve(instance)
        assert result.solution.objective == pytest.approx(best)

    def test_without_hall_filtering_still_exact(self):
        instance = small_synthetic(seed=2, n=6)
        _, best = brute_force_best(instance)
        result = CPSolver(hall=False).solve(instance)
        assert result.solution.objective == pytest.approx(best)

    def test_without_greedy_seed_still_exact(self):
        instance = small_synthetic(seed=2, n=6)
        _, best = brute_force_best(instance)
        result = CPSolver(seed_incumbent=False).solve(instance)
        assert result.solution.objective == pytest.approx(best)

    def test_build_interactions(self):
        instance = small_synthetic(seed=5, n=6, build_interaction_rate=2.0)
        _, best = brute_force_best(instance)
        result = CPSolver().solve(instance)
        assert result.solution.objective == pytest.approx(best)


class TestCPWithConstraints:
    def test_respects_added_constraints(self):
        instance = small_synthetic(seed=1, n=6)
        constraints = ConstraintSet(6)
        constraints.add_precedence(5, 0)
        constraints.add_consecutive(1, 2)
        _, best = brute_force_best(instance, constraints)
        result = CPSolver().solve(instance, constraints=constraints)
        assert constraints.check_order(result.solution.order)
        assert result.solution.objective == pytest.approx(best)

    def test_analysis_constraints_preserve_optimum(self):
        instance = small_synthetic(seed=6, n=7)
        _, unconstrained = brute_force_best(instance)
        report = analyze(instance)
        result = CPSolver().solve(instance, constraints=report.constraints)
        assert result.status is SolveStatus.OPTIMAL
        assert result.solution.objective == pytest.approx(unconstrained)

    def test_analysis_constraints_shrink_search(self):
        instance = small_synthetic(seed=6, n=7)
        plain = CPSolver().solve(instance)
        report = analyze(instance)
        pruned = CPSolver().solve(instance, constraints=report.constraints)
        if report.constraints.implied_pair_count() > 0:
            assert pruned.nodes <= plain.nodes

    def test_hard_precedences(self):
        instance = make_precedence_example()
        constraints = ConstraintSet(3)
        for rule in instance.precedences:
            constraints.add_precedence(rule.before, rule.after)
        result = CPSolver().solve(instance, constraints=constraints)
        assert result.solution.order[0] == 0


class TestCPBudget:
    def test_node_budget_times_out(self):
        instance = small_synthetic(seed=0, n=10)
        result = CPSolver().solve(instance, budget=Budget(node_limit=10))
        assert result.status in (SolveStatus.TIMEOUT, SolveStatus.FEASIBLE)
        # The greedy seed guarantees a solution even on immediate timeout.
        assert result.solution is not None

    def test_time_budget_times_out(self):
        instance = small_synthetic(seed=0, n=12)
        result = CPSolver().solve(instance, budget=Budget(time_limit=0.05))
        assert result.solution is not None
        assert result.status is not SolveStatus.OPTIMAL

    def test_trace_recorded(self):
        instance = small_synthetic(seed=3, n=6)
        result = CPSolver().solve(instance)
        assert result.trace  # at least one incumbent event


class TestCPModel:
    def test_rejects_unknown_strategy(self):
        instance = small_synthetic(seed=0, n=4)
        model = CPModel(instance, None)
        with pytest.raises(Exception):
            CPSearch(model, strategy="nonsense").run()

    def test_store_reflects_position_bounds(self):
        instance = small_synthetic(seed=0, n=5)
        constraints = ConstraintSet(5)
        constraints.add_precedence(0, 1)
        model = CPModel(instance, constraints)
        store = model.create_store()
        engine = model.create_engine()
        engine.propagate(store)
        assert store.min_value(1) >= 1
        assert store.max_value(0) <= 3
