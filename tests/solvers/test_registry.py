"""Unit tests for the solver registry (name -> factory resolution)."""

from __future__ import annotations

import pytest

from repro.errors import SolverError
from repro.solvers.base import Solver
from repro.solvers.registry import (
    SolverSpec,
    available_solvers,
    create,
    get_spec,
    register_factory,
    solver_specs,
)

EXPECTED = {
    "astar",
    "cp",
    "dp",
    "exhaustive",
    "greedy",
    "lns",
    "mip",
    "random",
    "subset-dp",
    "ts-bswap",
    "ts-fswap",
    "vns",
}


class TestDiscovery:
    def test_every_solver_registered(self):
        assert EXPECTED <= set(available_solvers())

    def test_names_sorted(self):
        names = available_solvers()
        assert list(names) == sorted(names)

    def test_create_returns_solver(self):
        for name in EXPECTED:
            solver = create(name)
            assert isinstance(solver, Solver)

    def test_create_forwards_kwargs(self):
        solver = create("vns", seed=7)
        assert solver.seed == 7
        tabu = create("ts-fswap", tabu_length=3)
        assert tabu.variant == "first"
        assert tabu.tabu_length == 3

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(SolverError, match="available:"):
            get_spec("does-not-exist")


class TestCapabilityFlags:
    def test_exact_solvers_flagged(self):
        specs = solver_specs()
        for name in ("exhaustive", "subset-dp", "astar", "cp", "mip"):
            assert specs[name].exact, name
        for name in ("greedy", "vns", "lns", "ts-bswap", "random"):
            assert not specs[name].exact, name

    def test_local_search_is_anytime_with_warm_start(self):
        specs = solver_specs()
        for name in ("vns", "lns", "ts-bswap", "ts-fswap"):
            assert specs[name].anytime, name
            assert specs[name].accepts_initial_order, name

    def test_stochastic_solvers_accept_seed(self):
        specs = solver_specs()
        for name, spec in specs.items():
            if spec.stochastic:
                assert create(name, seed=5) is not None, name


class TestRegistration:
    def test_register_factory_roundtrip(self):
        class _Dummy(Solver):
            name = "dummy"

            def solve(self, instance, constraints=None, budget=None):
                raise NotImplementedError

        spec = register_factory(
            "test-dummy", _Dummy, summary="test only", exact=False
        )
        try:
            assert isinstance(spec, SolverSpec)
            assert get_spec("test-dummy").summary == "test only"
            assert isinstance(create("test-dummy"), _Dummy)
        finally:
            from repro.solvers import registry

            registry._REGISTRY.pop("test-dummy", None)

    def test_cli_solver_table_mirrors_registry(self):
        from repro.cli import SOLVERS

        assert set(SOLVERS) == set(available_solvers())

    def test_duplicate_registration_raises(self):
        class _Dummy(Solver):
            name = "dummy"

            def solve(self, instance, constraints=None, budget=None):
                raise NotImplementedError

        register_factory("test-dup", _Dummy)
        try:
            # Silent overwrites used to mask name collisions; now they
            # fail loudly unless the caller opts in with replace=True.
            with pytest.raises(SolverError, match="already registered"):
                register_factory("test-dup", _Dummy)
            assert get_spec("test-dup").summary == ""
            replaced = register_factory(
                "test-dup", _Dummy, replace=True, summary="v2"
            )
            assert replaced.summary == "v2"
            assert get_spec("test-dup").summary == "v2"
        finally:
            from repro.solvers import registry

            registry._REGISTRY.pop("test-dup", None)
