"""Unit tests for the CP engine: domain store and propagators."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.solvers.cp.domains import Conflict, DomainStore
from repro.solvers.cp.propagators import (
    AllDifferent,
    Consecutive,
    Precedence,
    PropagationEngine,
)


class TestDomainStore:
    def test_initial_domains_full(self):
        store = DomainStore(4)
        for var in range(4):
            assert store.domain_values(var) == [0, 1, 2, 3]
            assert store.size(var) == 4
            assert not store.is_assigned(var)

    def test_n_must_be_positive(self):
        with pytest.raises(ValidationError):
            DomainStore(0)

    def test_assign(self):
        store = DomainStore(3)
        store.assign(1, 2)
        assert store.is_assigned(1)
        assert store.value(1) == 2
        assert store.domain_values(1) == [2]

    def test_remove(self):
        store = DomainStore(3)
        store.remove(0, 1)
        assert store.domain_values(0) == [0, 2]
        assert store.has(0, 0)
        assert not store.has(0, 1)

    def test_remove_to_empty_raises_conflict(self):
        store = DomainStore(2)
        store.remove(0, 0)
        with pytest.raises(Conflict):
            store.remove(0, 1)

    def test_set_mask_reports_change(self):
        store = DomainStore(3)
        assert store.set_mask(0, 0b011) is True
        assert store.set_mask(0, 0b111) is False  # no narrowing

    def test_min_max_value(self):
        store = DomainStore(4)
        store.set_mask(2, 0b0110)
        assert store.min_value(2) == 1
        assert store.max_value(2) == 2

    def test_backtracking_restores_domains(self):
        store = DomainStore(3)
        store.push_level()
        store.assign(0, 1)
        store.remove(1, 2)
        assert store.size(0) == 1
        store.pop_level()
        assert store.domain_values(0) == [0, 1, 2]
        assert store.domain_values(1) == [0, 1, 2]

    def test_nested_levels(self):
        store = DomainStore(3)
        store.push_level()
        store.assign(0, 0)
        store.push_level()
        store.assign(1, 1)
        store.pop_level()
        assert store.is_assigned(0)
        assert not store.is_assigned(1)
        store.pop_level()
        assert not store.is_assigned(0)

    def test_all_assigned_and_assignment(self):
        store = DomainStore(2)
        assert not store.all_assigned()
        store.assign(0, 1)
        store.assign(1, 0)
        assert store.all_assigned()
        assert store.assignment() == [1, 0]

    def test_union_mask(self):
        store = DomainStore(3)
        store.assign(0, 0)
        store.assign(1, 2)
        assert store.union_mask([0, 1]) == 0b101


class TestAllDifferent:
    def test_assigned_value_removed_from_others(self):
        store = DomainStore(3)
        store.assign(0, 1)
        AllDifferent(range(3)).propagate(store)
        assert not store.has(1, 1)
        assert not store.has(2, 1)

    def test_pigeonhole_conflict(self):
        store = DomainStore(3)
        # Three variables squeezed into two values.
        for var in range(3):
            store.set_mask(var, 0b011)
        engine = PropagationEngine([AllDifferent(range(3))])
        with pytest.raises(Conflict):
            engine.propagate(store)

    def test_hall_interval_pruning(self):
        store = DomainStore(3)
        store.set_mask(0, 0b011)  # {0, 1}
        store.set_mask(1, 0b011)  # {0, 1}
        # {0,1} is a Hall set: var 2 loses both values.
        AllDifferent(range(3), hall=True).propagate(store)
        assert store.domain_values(2) == [2]

    def test_without_hall_weaker(self):
        store = DomainStore(3)
        store.set_mask(0, 0b011)
        store.set_mask(1, 0b011)
        AllDifferent(range(3), hall=False).propagate(store)
        # Value-based filtering alone cannot deduce anything here.
        assert store.size(2) == 3

    def test_propagation_chains(self):
        store = DomainStore(3)
        engine = PropagationEngine([AllDifferent(range(3))])
        store.assign(0, 0)
        store.set_mask(1, 0b011)
        engine.propagate(store)
        # 1 forced to value 1, 2 forced to value 2.
        assert store.value(1) == 1
        assert store.value(2) == 2


class TestPrecedence:
    def test_bounds_tightened(self):
        store = DomainStore(3)
        Precedence([(0, 1)]).propagate(store)
        assert store.min_value(1) >= 1  # after cannot take position 0
        assert store.max_value(0) <= 1  # before cannot take the last slot

    def test_chain_propagates(self):
        store = DomainStore(3)
        engine = PropagationEngine([Precedence([(0, 1), (1, 2)])])
        engine.propagate(store)
        assert store.value(0) == 0
        assert store.value(1) == 1
        assert store.value(2) == 2

    def test_conflicting_assignment_detected(self):
        store = DomainStore(2)
        store.assign(0, 1)
        store.assign(1, 0)
        engine = PropagationEngine([Precedence([(0, 1)])])
        with pytest.raises(Conflict):
            engine.propagate(store)


class TestConsecutive:
    def test_channeling_both_directions(self):
        store = DomainStore(4)
        store.assign(0, 1)
        engine = PropagationEngine([Consecutive([(0, 1)])])
        engine.propagate(store)
        assert store.value(1) == 2

    def test_second_constrains_first(self):
        store = DomainStore(4)
        store.assign(1, 3)
        engine = PropagationEngine([Consecutive([(0, 1)])])
        engine.propagate(store)
        assert store.value(0) == 2

    def test_domains_shift_aligned(self):
        store = DomainStore(4)
        store.set_mask(0, 0b0011)  # first in {0, 1}
        engine = PropagationEngine([Consecutive([(0, 1)])])
        engine.propagate(store)
        assert set(store.domain_values(1)) <= {1, 2}

    def test_impossible_pair_conflicts(self):
        store = DomainStore(2)
        store.assign(0, 1)  # first at the last position: no slot for second
        engine = PropagationEngine([Consecutive([(0, 1)])])
        with pytest.raises(Conflict):
            engine.propagate(store)


class TestEngineFixpoint:
    def test_combined_model_reaches_fixpoint(self):
        store = DomainStore(4)
        engine = PropagationEngine(
            [
                AllDifferent(range(4)),
                Precedence([(0, 1)]),
                Consecutive([(2, 3)]),
            ]
        )
        store.assign(0, 0)
        engine.propagate(store)
        # 0 at position 0 forces 1, 2, 3 into {1, 2, 3}; the consecutive
        # pair (2, 3) then fits only (1,2) or (2,3).
        assert not store.has(1, 0)
        assert set(store.domain_values(2)) <= {1, 2}
