"""Tests for the portfolio solver (repro.solvers.portfolio)."""

from __future__ import annotations

import pytest

from repro.analysis.fixpoint import analyze
from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import SolveStatus
from repro.solvers.base import Budget
from repro.solvers.portfolio import PortfolioSolver, anytime_members
from repro.solvers.registry import create, get_spec, solver_specs
from repro.errors import SolverError

from tests.conftest import brute_force_best, small_synthetic


class TestMembership:
    def test_capability_driven_default_members(self):
        members = anytime_members()
        specs = solver_specs()
        for member in members:
            assert specs[member].anytime
            assert not specs[member].composite
        # Every non-composite anytime solver joins automatically.
        expected = {
            name
            for name, spec in specs.items()
            if spec.anytime and not spec.composite
        }
        assert set(members) == expected
        assert {"vns", "ts-bswap", "ts-fswap", "cp", "lns"} <= set(members)

    def test_portfolio_registered_as_composite(self):
        spec = get_spec("portfolio")
        assert spec.composite
        assert spec.anytime
        assert "portfolio" not in anytime_members()
        assert "portfolio-ls" not in anytime_members()

    def test_non_anytime_member_rejected(self):
        solver = PortfolioSolver(members=("greedy",))
        with pytest.raises(SolverError, match="anytime"):
            solver._member_specs()

    def test_nested_portfolio_rejected(self):
        solver = PortfolioSolver(members=("portfolio-ls",))
        with pytest.raises(SolverError, match="nest"):
            solver._member_specs()

    def test_registry_create(self):
        solver = create("portfolio", seed=3)
        assert isinstance(solver, PortfolioSolver)
        assert solver.seed == 3
        ls = create("portfolio-ls")
        assert ls.members == ("ts-bswap", "ts-fswap", "vns")


class TestSolve:
    def test_returns_valid_solution(self, tiny3):
        result = PortfolioSolver(rounds=1).solve(
            tiny3, None, Budget(time_limit=1.0)
        )
        assert result.solution is not None
        assert sorted(result.solution.order) == [0, 1, 2]
        result.solution.validate_against(tiny3)

    def test_finds_optimum_on_small_instance(self):
        instance = small_synthetic(seed=11, n=6)
        _, optimum = brute_force_best(instance)
        result = PortfolioSolver(rounds=2).solve(
            instance, None, Budget(time_limit=4.0)
        )
        assert result.objective == pytest.approx(optimum, rel=1e-6)

    def test_optimality_short_circuit(self):
        # CP closes a 5-index instance instantly; the portfolio must
        # adopt the proof and report OPTIMAL instead of burning budget.
        instance = small_synthetic(seed=4, n=5)
        result = PortfolioSolver(members=("cp",), rounds=1).solve(
            instance, None, Budget(time_limit=10.0)
        )
        assert result.status is SolveStatus.OPTIMAL
        _, optimum = brute_force_best(instance)
        assert result.objective == pytest.approx(optimum, rel=1e-9)
        assert result.runtime < 9.0

    def test_respects_constraints(self, precedence_example):
        report = analyze(precedence_example)
        result = PortfolioSolver(rounds=1).solve(
            precedence_example, report.constraints, Budget(time_limit=1.5)
        )
        assert result.solution is not None
        assert report.constraints.check_order(result.solution.order)

    def test_warm_start_respected(self, tiny3):
        evaluator = ObjectiveEvaluator(tiny3)
        warm = [2, 0, 1]
        result = PortfolioSolver(
            rounds=1, initial_order=warm
        ).solve(tiny3, None, Budget(time_limit=0.5))
        # The shared incumbent starts at the warm start and only improves.
        assert result.objective <= evaluator.evaluate(warm) + 1e-9

    def test_shared_engine_stats_exposed(self, tiny3):
        solver = PortfolioSolver(rounds=1)
        solver.solve(tiny3, None, Budget(time_limit=0.8))
        stats = solver.last_engine_stats
        assert stats is not None
        assert stats["full_evals"] + stats["delta_evals"] > 0
        assert solver.last_race_log, "race log records member slices"

    def test_shared_engine_reused_across_members(self):
        from repro.core.engine import EvalEngine

        instance = small_synthetic(seed=2, n=6)
        engine = EvalEngine(instance)
        solver = PortfolioSolver(members=("vns", "ts-fswap"), rounds=1)
        solver.engine = engine
        solver.solve(instance, None, Budget(time_limit=0.6))
        # Both member families worked through the injected engine:
        # tabu's swap scan uses the delta path, everything else full
        # evaluations — all booked on the one shared stats object.
        assert engine.stats.delta_evals > 0
        assert engine.stats.full_evals > 0


class TestNeverWorseThanWorstMember:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_portfolio_not_worse_than_worst_member(self, seed):
        """The shared-incumbent race can only improve on the common
        greedy start, so the portfolio must never lose to its *worst*
        member given the same budget."""
        instance = small_synthetic(seed=seed, n=8)
        members = ("vns", "ts-fswap")
        budget = 1.2
        member_objectives = []
        for name in members:
            result = create(name).solve(
                instance, None, Budget(time_limit=budget)
            )
            member_objectives.append(result.objective)
        portfolio = PortfolioSolver(members=members, rounds=2).solve(
            instance, None, Budget(time_limit=budget)
        )
        worst = max(member_objectives)
        assert portfolio.objective <= worst * (1 + 1e-9)
