"""Unit tests for the random baseline and the Schnaitter-style DP."""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import SolveStatus
from repro.solvers.dp import DPSolver, dp_order, interaction_weights
from repro.solvers.random_search import RandomSolver, random_statistics

from tests.conftest import make_join_example, make_tiny3, small_synthetic


class TestRandomStatistics:
    def test_shapes(self, tiny3):
        average, minimum, objectives = random_statistics(
            tiny3, samples=20, seed=0
        )
        assert len(objectives) == 20
        assert minimum <= average
        assert minimum == min(objectives)
        assert average == pytest.approx(sum(objectives) / 20)

    def test_deterministic_per_seed(self, tiny3):
        first = random_statistics(tiny3, samples=10, seed=42)
        second = random_statistics(tiny3, samples=10, seed=42)
        assert first == second

    def test_different_seeds_differ(self):
        instance = small_synthetic(seed=0, n=8)
        a = random_statistics(instance, samples=10, seed=1)
        b = random_statistics(instance, samples=10, seed=2)
        assert a[2] != b[2]

    def test_constraints_respected_in_samples(self):
        instance = small_synthetic(seed=0, n=6)
        constraints = ConstraintSet(6)
        constraints.add_consecutive(0, 3)
        # Must not raise (repaired permutations are evaluated).
        average, minimum, _ = random_statistics(
            instance, samples=10, seed=0, constraints=constraints
        )
        assert minimum <= average


class TestRandomSolver:
    def test_returns_best_of_samples(self, tiny3):
        result = RandomSolver(samples=30, seed=0).solve(tiny3)
        assert result.status is SolveStatus.FEASIBLE
        _, minimum, _ = random_statistics(tiny3, samples=30, seed=0)
        assert result.solution.objective <= minimum + 1e-9

    def test_solution_valid(self, tiny3):
        result = RandomSolver(samples=5, seed=3).solve(tiny3)
        result.solution.validate_against(tiny3)


class TestInteractionWeights:
    def test_pairs_within_plan_weighted(self, join_example):
        weights = interaction_weights(join_example)
        # One plan {0,1} with speedup 150 over 2 indexes: share 75.
        assert weights[(0, 1)] == pytest.approx(75.0)

    def test_competing_plans_cross_weighted(self):
        from repro.core.instance import (
            IndexDef,
            PlanDef,
            ProblemInstance,
            QueryDef,
        )

        # Paper's Appendix C example: plan A {0,1,2} speedup 10 (share
        # 3.33), plan B {3,4} speedup 5 (share 2.5); cross pairs get 2.5.
        instance = ProblemInstance(
            indexes=[IndexDef(i, f"i{i}", 1.0) for i in range(5)],
            queries=[QueryDef(0, "q", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0, 1, 2}), 10.0),
                PlanDef(1, 0, frozenset({3, 4}), 5.0),
            ],
        )
        weights = interaction_weights(instance)
        assert weights[(0, 1)] == pytest.approx(10.0 / 3)
        assert weights[(3, 4)] == pytest.approx(2.5)
        assert weights[(0, 3)] == pytest.approx(2.5)  # min(3.33, 2.5)

    def test_weights_accumulate_over_queries(self):
        from repro.core.instance import (
            IndexDef,
            PlanDef,
            ProblemInstance,
            QueryDef,
        )

        instance = ProblemInstance(
            indexes=[IndexDef(0, "a", 1.0), IndexDef(1, "b", 1.0)],
            queries=[QueryDef(0, "q0", 100.0), QueryDef(1, "q1", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0, 1}), 10.0),
                PlanDef(1, 1, frozenset({0, 1}), 6.0),
            ],
        )
        weights = interaction_weights(instance)
        assert weights[(0, 1)] == pytest.approx(5.0 + 3.0)


class TestDPOrder:
    def test_returns_permutation(self, tiny3):
        assert sorted(dp_order(tiny3)) == [0, 1, 2]

    @pytest.mark.parametrize("seed", range(4))
    def test_permutation_on_synthetic(self, seed):
        instance = small_synthetic(seed=seed, n=9)
        assert sorted(dp_order(instance)) == list(range(9))

    def test_single_index(self):
        instance = small_synthetic(seed=0, n=1)
        assert dp_order(instance) == [0]

    def test_cost_blindness_documented_weakness(self):
        """The DP ignores build costs; greedy exploits them (Table 7)."""
        from repro.core.instance import (
            IndexDef,
            PlanDef,
            ProblemInstance,
            QueryDef,
        )
        from repro.solvers.greedy import greedy_order

        # Same benefit, wildly different costs: greedy puts the cheap
        # index first, the benefit-only DP interleave cannot tell.
        instance = ProblemInstance(
            indexes=[
                IndexDef(0, "expensive", 100.0),
                IndexDef(1, "cheap", 1.0),
            ],
            queries=[QueryDef(0, "q0", 100.0), QueryDef(1, "q1", 100.0)],
            plans=[
                PlanDef(0, 0, frozenset({0}), 10.0),
                PlanDef(1, 1, frozenset({1}), 10.0),
            ],
        )
        evaluator = ObjectiveEvaluator(instance)
        greedy_objective = evaluator.evaluate(greedy_order(instance))
        dp_objective = evaluator.evaluate(dp_order(instance))
        assert greedy_objective <= dp_objective


class TestDPSolver:
    def test_solve_result(self, tiny3):
        result = DPSolver().solve(tiny3)
        assert result.status is SolveStatus.FEASIBLE
        result.solution.validate_against(tiny3)

    def test_constraint_repair(self):
        instance = small_synthetic(seed=2, n=7)
        constraints = ConstraintSet(7)
        constraints.add_precedence(6, 0)
        constraints.add_consecutive(1, 4)
        result = DPSolver().solve(instance, constraints=constraints)
        assert constraints.check_order(result.solution.order)
