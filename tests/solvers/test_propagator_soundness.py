"""Property tests: propagators must preserve the solution set.

A propagator is *sound* when pruning a value never removes a complete
feasible assignment.  For small n we can enumerate every assignment in
the original domains, filter by the constraint's semantics, and check
the same set survives propagation (or a Conflict is raised only when
the set is empty).
"""

from __future__ import annotations

import itertools
from typing import List, Set, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.cp.domains import Conflict, DomainStore
from repro.solvers.cp.propagators import (
    AllDifferent,
    Consecutive,
    Precedence,
    PropagationEngine,
)


def enumerate_solutions(
    domains: List[List[int]], feasible
) -> Set[Tuple[int, ...]]:
    """All assignments within ``domains`` passing ``feasible``."""
    return {
        assignment
        for assignment in itertools.product(*domains)
        if feasible(assignment)
    }


def store_from_domains(domains: List[List[int]]) -> DomainStore:
    store = DomainStore(len(domains))
    for var, values in enumerate(domains):
        mask = 0
        for value in values:
            mask |= 1 << value
        store.set_mask(var, mask)
    return store


@st.composite
def random_domains(draw, n_min: int = 2, n_max: int = 5):
    n = draw(st.integers(min_value=n_min, max_value=n_max))
    domains = []
    for _ in range(n):
        values = draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=n,
            )
        )
        domains.append(sorted(values))
    return domains


def alldifferent_feasible(assignment) -> bool:
    return len(set(assignment)) == len(assignment)


SOUNDNESS_SETTINGS = settings(max_examples=120, deadline=None)


class TestAllDifferentSoundness:
    @SOUNDNESS_SETTINGS
    @given(random_domains())
    def test_propagation_preserves_solutions(self, domains):
        before = enumerate_solutions(domains, alldifferent_feasible)
        store = store_from_domains(domains)
        engine = PropagationEngine(
            [AllDifferent(range(len(domains)), hall=True)]
        )
        try:
            engine.propagate(store)
        except Conflict:
            assert before == set(), "conflict raised but solutions existed"
            return
        after_domains = [
            store.domain_values(var) for var in range(len(domains))
        ]
        after = enumerate_solutions(after_domains, alldifferent_feasible)
        assert after == before

    @SOUNDNESS_SETTINGS
    @given(random_domains())
    def test_hall_and_plain_agree_on_solutions(self, domains):
        outcomes = []
        for hall in (True, False):
            store = store_from_domains(domains)
            engine = PropagationEngine(
                [AllDifferent(range(len(domains)), hall=hall)]
            )
            try:
                engine.propagate(store)
            except Conflict:
                outcomes.append(None)
                continue
            after = [store.domain_values(v) for v in range(len(domains))]
            outcomes.append(
                enumerate_solutions(after, alldifferent_feasible)
            )
        solutions = [o for o in outcomes if o is not None]
        if len(solutions) == 2:
            assert solutions[0] == solutions[1]
        else:
            # One raised Conflict: the other must have no solutions left.
            for o in solutions:
                assert o == set()


class TestPrecedenceSoundness:
    @SOUNDNESS_SETTINGS
    @given(random_domains(n_min=3, n_max=5), st.data())
    def test_propagation_preserves_solutions(self, domains, data):
        n = len(domains)
        before_var = data.draw(st.integers(min_value=0, max_value=n - 1))
        after_var = data.draw(
            st.integers(min_value=0, max_value=n - 1).filter(
                lambda v: v != before_var
            )
        )

        def feasible(assignment):
            return (
                alldifferent_feasible(assignment)
                and assignment[before_var] < assignment[after_var]
            )

        before = enumerate_solutions(domains, feasible)
        store = store_from_domains(domains)
        engine = PropagationEngine(
            [
                AllDifferent(range(n)),
                Precedence([(before_var, after_var)]),
            ]
        )
        try:
            engine.propagate(store)
        except Conflict:
            assert before == set()
            return
        after_domains = [store.domain_values(v) for v in range(n)]
        after = enumerate_solutions(after_domains, feasible)
        assert after == before


class TestConsecutiveSoundness:
    @SOUNDNESS_SETTINGS
    @given(random_domains(n_min=3, n_max=5), st.data())
    def test_propagation_preserves_solutions(self, domains, data):
        n = len(domains)
        first = data.draw(st.integers(min_value=0, max_value=n - 1))
        second = data.draw(
            st.integers(min_value=0, max_value=n - 1).filter(
                lambda v: v != first
            )
        )

        def feasible(assignment):
            return (
                alldifferent_feasible(assignment)
                and assignment[second] == assignment[first] + 1
            )

        before = enumerate_solutions(domains, feasible)
        store = store_from_domains(domains)
        engine = PropagationEngine(
            [AllDifferent(range(n)), Consecutive([(first, second)])]
        )
        try:
            engine.propagate(store)
        except Conflict:
            assert before == set()
            return
        after_domains = [store.domain_values(v) for v in range(n)]
        after = enumerate_solutions(after_domains, feasible)
        assert after == before
