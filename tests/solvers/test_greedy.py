"""Unit tests for the interaction-guided greedy (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.analysis.constraints import ConstraintSet
from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import SolveStatus
from repro.solvers.greedy import GreedySolver, greedy_order
from repro.solvers.random_search import random_statistics

from tests.conftest import (
    make_join_example,
    make_precedence_example,
    make_tiny3,
    small_synthetic,
)


class TestGreedyOrder:
    def test_returns_permutation(self, tiny3):
        assert sorted(greedy_order(tiny3)) == [0, 1, 2]

    def test_density_order_on_independent_indexes(self, tiny3):
        # Densities: c=2.0, a=1.2, b=0.4.
        assert greedy_order(tiny3) == [2, 0, 1]

    def test_interaction_credit_groups_joint_plan(self, join_example):
        # Both indexes only matter together; the greedy must still order
        # them (via the future-opportunity credit) without crashing on
        # zero immediate benefit.
        order = greedy_order(join_example)
        assert sorted(order) == [0, 1]

    def test_respects_precedence_constraints(self, precedence_example):
        constraints = ConstraintSet(3)
        for rule in precedence_example.precedences:
            constraints.add_precedence(rule.before, rule.after)
        order = greedy_order(precedence_example, constraints)
        assert order.index(0) < order.index(1)
        assert order.index(0) < order.index(2)

    def test_respects_consecutive_constraints(self):
        instance = small_synthetic(seed=1, n=6)
        constraints = ConstraintSet(6)
        constraints.add_consecutive(2, 5)
        order = greedy_order(instance, constraints)
        assert order.index(5) == order.index(2) + 1

    @pytest.mark.parametrize("seed", range(6))
    def test_beats_random_average(self, seed):
        # Table 7's claim: greedy better than the random average.
        instance = small_synthetic(seed=seed, n=10, plans_per_query=3.0)
        evaluator = ObjectiveEvaluator(instance)
        greedy_objective = evaluator.evaluate(greedy_order(instance))
        average, _, _ = random_statistics(instance, samples=50, seed=seed)
        assert greedy_objective <= average


class TestGreedySolver:
    def test_solve_result_shape(self, tiny3):
        result = GreedySolver().solve(tiny3)
        assert result.status is SolveStatus.FEASIBLE
        assert result.solution is not None
        result.solution.validate_against(tiny3)

    def test_solver_name(self):
        assert GreedySolver().name == "greedy"

    def test_objective_matches_reference(self, tiny3):
        result = GreedySolver().solve(tiny3)
        reference = ObjectiveEvaluator(tiny3).evaluate(result.solution.order)
        assert result.solution.objective == pytest.approx(reference)

    def test_constraint_feasible_output(self):
        instance = small_synthetic(seed=5, n=8, precedence_rate=5.0)
        constraints = ConstraintSet(8)
        for rule in instance.precedences:
            constraints.add_precedence(rule.before, rule.after)
        result = GreedySolver().solve(instance, constraints=constraints)
        assert constraints.check_order(result.solution.order)
