"""Unit tests for the command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import SOLVERS, build_parser, main
from repro.core.serialization import save_instance

from tests.conftest import make_paper_example, small_synthetic


@pytest.fixture
def matrix_path(tmp_path):
    path = tmp_path / "matrix.json"
    save_instance(small_synthetic(seed=0, n=6), path)
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solver_choices_cover_registry(self):
        parser = build_parser()
        for name in SOLVERS:
            args = parser.parse_args(["solve", "m.json", "--solver", name])
            assert args.solver == name

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "m.json", "--solver", "magic"])


class TestSolve:
    def test_greedy_solve(self, matrix_path):
        code, text = run_cli(
            ["solve", matrix_path, "--solver", "greedy", "--time-limit", "2"]
        )
        assert code == 0
        assert "objective:" in text
        assert "deployment time:" in text

    def test_exact_solve_reports_optimal(self, matrix_path):
        code, text = run_cli(
            ["solve", matrix_path, "--solver", "exhaustive", "--time-limit", "30"]
        )
        assert code == 0
        assert "status=optimal" in text

    def test_schedule_flag_prints_steps(self, matrix_path):
        code, text = run_cli(
            [
                "solve",
                matrix_path,
                "--solver",
                "greedy",
                "--schedule",
            ]
        )
        assert code == 0
        assert "runtime after" in text
        assert text.count("ix0") >= 1

    def test_output_file_written(self, matrix_path, tmp_path):
        out_path = tmp_path / "order.json"
        code, _ = run_cli(
            [
                "solve",
                matrix_path,
                "--solver",
                "greedy",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["solver"] == "greedy"
        assert sorted(payload["order_ids"]) == list(range(6))
        assert len(payload["order"]) == 6

    def test_no_analysis_flag(self, matrix_path):
        code, text = run_cli(
            ["solve", matrix_path, "--solver", "greedy", "--no-analysis"]
        )
        assert code == 0
        assert "analysis:" not in text

    def test_missing_file_reports_error(self):
        code, text = run_cli(["solve", "/nonexistent/matrix.json"])
        assert code == 1
        assert "error:" in text

    def test_vns_solve_within_budget(self, matrix_path):
        code, text = run_cli(
            ["solve", matrix_path, "--solver", "vns", "--time-limit", "1"]
        )
        assert code == 0


class TestAnalyze:
    def test_analyze_reports_constraints(self, tmp_path):
        path = tmp_path / "paper.json"
        save_instance(make_paper_example(), path)
        code, text = run_cli(["analyze", str(path)])
        assert code == 0
        assert "implied_pairs=" in text
        assert "direct_edges:" in text

    def test_property_subset(self, matrix_path):
        code, text = run_cli(["analyze", matrix_path, "--properties", "A"])
        assert code == 0

    def test_invalid_property_reports_error(self, matrix_path):
        code, text = run_cli(["analyze", matrix_path, "--properties", "XYZ"])
        assert code == 1
        assert "error:" in text


class TestExperiment:
    def test_table4(self):
        code, text = run_cli(["experiment", "table4"])
        assert code == 0
        assert "TPC-H" in text

    def test_unknown_experiment(self):
        code, text = run_cli(["experiment", "table99"])
        assert code == 2
        assert "available:" in text
