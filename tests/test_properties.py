"""Property-based tests (hypothesis) on the core invariants.

Strategy: generate random valid instances (via the library's own
generator, seeded by hypothesis) and random permutations, then check the
model-level invariants the whole system relies on.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.constraints import ConstraintSet
from repro.analysis.fixpoint import analyze
from repro.core.engine import EvalEngine
from repro.core.instance import ProblemInstance
from repro.core.objective import ObjectiveEvaluator, PrefixCachedEvaluator
from repro.core.serialization import instance_from_dict, instance_to_dict
from repro.workloads.generator import GeneratorConfig, generate_instance

from tests.conftest import brute_force_best


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def instances(draw, max_indexes: int = 8) -> ProblemInstance:
    """Random valid instances driven by the library's generator."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=2, max_value=max_indexes))
    config = GeneratorConfig(
        n_indexes=n,
        n_queries=draw(st.integers(min_value=1, max_value=6)),
        plans_per_query=draw(
            st.floats(min_value=1.0, max_value=4.0, allow_nan=False)
        ),
        max_plan_size=draw(st.integers(min_value=2, max_value=4)),
        multi_index_fraction=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        build_interaction_rate=draw(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
        ),
    )
    return generate_instance(seed=seed, config=config)


@st.composite
def instances_with_order(draw, max_indexes: int = 8):
    instance = draw(instances(max_indexes=max_indexes))
    order = draw(st.permutations(list(range(instance.n_indexes))))
    return instance, list(order)


COMMON_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Objective invariants
# ----------------------------------------------------------------------
class TestObjectiveProperties:
    @COMMON_SETTINGS
    @given(instances_with_order())
    def test_objective_bounded(self, pair):
        instance, order = pair
        objective = ObjectiveEvaluator(instance).evaluate(order)
        worst = instance.total_base_runtime * instance.total_create_cost()
        assert 0.0 <= objective <= worst + 1e-6

    @COMMON_SETTINGS
    @given(instances_with_order())
    def test_schedule_consistent_with_evaluate(self, pair):
        instance, order = pair
        evaluator = ObjectiveEvaluator(instance)
        schedule = evaluator.schedule(order)
        assert schedule.objective == pytest.approx(
            evaluator.evaluate(order), rel=1e-12
        )
        assert schedule.objective == pytest.approx(
            sum(step.area for step in schedule.steps), rel=1e-9
        )

    @COMMON_SETTINGS
    @given(instances_with_order())
    def test_runtime_curve_monotone(self, pair):
        instance, order = pair
        schedule = ObjectiveEvaluator(instance).schedule(order)
        last = float("inf")
        for step in schedule.steps:
            assert step.runtime_before <= last + 1e-9
            assert step.runtime_after <= step.runtime_before + 1e-9
            last = step.runtime_after

    @COMMON_SETTINGS
    @given(instances_with_order())
    def test_build_costs_within_bounds(self, pair):
        instance, order = pair
        schedule = ObjectiveEvaluator(instance).schedule(order)
        for step in schedule.steps:
            create = instance.indexes[step.index_id].create_cost
            assert 0.0 < step.build_cost <= create + 1e-9
            assert step.saving >= 0.0

    @COMMON_SETTINGS
    @given(instances_with_order())
    def test_prefix_cached_matches_reference(self, pair):
        instance, order = pair
        reference = ObjectiveEvaluator(instance)
        cached = PrefixCachedEvaluator(instance, checkpoint_stride=3)
        cached.set_base(list(range(instance.n_indexes)))
        assert cached.evaluate(order) == pytest.approx(
            reference.evaluate(order), rel=1e-12
        )

    @COMMON_SETTINGS
    @given(instances())
    def test_total_runtime_monotone_in_built_set(self, instance):
        # Adding indexes never makes the workload slower.
        built = set()
        last = instance.total_runtime(built)
        for index_id in range(instance.n_indexes):
            built.add(index_id)
            current = instance.total_runtime(built)
            assert current <= last + 1e-9
            last = current

    @COMMON_SETTINGS
    @given(instances_with_order())
    def test_deploy_time_invariant_total(self, pair):
        # Total deployment time <= sum of create costs (savings only help),
        # and >= sum of minimum build costs.
        instance, order = pair
        schedule = ObjectiveEvaluator(instance).schedule(order)
        upper = instance.total_create_cost()
        lower = sum(
            instance.min_build_cost(i) for i in range(instance.n_indexes)
        )
        assert lower - 1e-9 <= schedule.total_deploy_time <= upper + 1e-9


# ----------------------------------------------------------------------
# Engine delta evaluation: the guard rails of the shared backend.
# Every solver trusts EvalEngine's delta results; these properties pin
# them to the reference full evaluation at 1e-9 over random instances.
# ----------------------------------------------------------------------
@st.composite
def instances_with_base_and_move(draw, max_indexes: int = 8):
    instance = draw(instances(max_indexes=max_indexes))
    n = instance.n_indexes
    base = list(draw(st.permutations(list(range(n)))))
    pos_a = draw(st.integers(min_value=0, max_value=n - 1))
    pos_b = draw(st.integers(min_value=0, max_value=n - 1))
    return instance, base, pos_a, pos_b


class TestEngineDeltaProperties:
    @COMMON_SETTINGS
    @given(instances_with_base_and_move())
    def test_swap_matches_full_evaluation(self, quad):
        instance, base, pos_a, pos_b = quad
        engine = EvalEngine(instance)
        engine.set_base(base)
        candidate = list(base)
        candidate[pos_a], candidate[pos_b] = candidate[pos_b], candidate[pos_a]
        expected = ObjectiveEvaluator(instance).evaluate(candidate)
        assert engine.eval_swap(pos_a, pos_b) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )

    @COMMON_SETTINGS
    @given(instances_with_base_and_move())
    def test_relocate_and_insert_match_full_evaluation(self, quad):
        instance, base, src, dst = quad
        engine = EvalEngine(instance)
        engine.set_base(base)
        candidate = list(base)
        moved = candidate.pop(src)
        candidate.insert(dst, moved)
        expected = ObjectiveEvaluator(instance).evaluate(candidate)
        assert engine.eval_relocate(src, dst) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )
        assert engine.eval_insert(base[src], dst) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )

    @COMMON_SETTINGS
    @given(instances_with_order())
    def test_neighbor_evaluation_matches_full(self, pair):
        instance, order = pair
        engine = EvalEngine(instance)
        engine.set_base(list(range(instance.n_indexes)))
        expected = ObjectiveEvaluator(instance).evaluate(order)
        assert engine.evaluate_neighbor(order) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )

    @COMMON_SETTINGS
    @given(instances_with_base_and_move())
    def test_swap_under_analysis_constraints(self, quad):
        # Delta results must stay exact on orders drawn from the
        # constrained search space the solvers actually explore.
        instance, _, pos_a, pos_b = quad
        report = analyze(instance)
        base = report.constraints.topological_order()
        engine = EvalEngine(instance)
        engine.set_base(base)
        candidate = list(base)
        candidate[pos_a], candidate[pos_b] = candidate[pos_b], candidate[pos_a]
        expected = ObjectiveEvaluator(instance).evaluate(candidate)
        assert engine.eval_swap(pos_a, pos_b) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )

    @COMMON_SETTINGS
    @given(instances_with_base_and_move())
    def test_memo_survives_rebase(self, quad):
        # Re-basing must invalidate nothing in the built-set memo (it is
        # order-independent) and delta results must stay exact.
        instance, base, pos_a, pos_b = quad
        engine = EvalEngine(instance)
        engine.set_base(list(range(instance.n_indexes)))
        full_mask = engine.mask_of(range(instance.n_indexes))
        runtime_before = engine.runtime_of(full_mask)
        engine.set_base(base)
        assert engine.runtime_of(full_mask) == runtime_before
        candidate = list(base)
        candidate[pos_a], candidate[pos_b] = candidate[pos_b], candidate[pos_a]
        assert engine.eval_swap(pos_a, pos_b) == pytest.approx(
            ObjectiveEvaluator(instance).evaluate(candidate),
            rel=1e-9,
            abs=1e-9,
        )


# ----------------------------------------------------------------------
# Batch kernels: vectorized neighborhood scoring must agree elementwise
# with the scalar delta path, and the vectorized feasibility mask with
# the scalar predicate, on arbitrary generated instances.
# ----------------------------------------------------------------------
class TestBatchKernelProperties:
    @COMMON_SETTINGS
    @given(instances_with_order())
    def test_eval_all_swaps_matches_scalar_elementwise(self, pair):
        pytest.importorskip("numpy")
        instance, base = pair
        n = instance.n_indexes
        vector_engine = EvalEngine(instance, kernel="numpy")
        vector_engine.set_base(base)
        scalar_engine = EvalEngine(instance, kernel="scalar")
        scalar_engine.set_base(base)
        matrix, feasible = vector_engine.eval_all_swaps()
        assert all(feasible[a][b] for a in range(n) for b in range(n))
        for pos_a in range(n):
            for pos_b in range(n):
                assert matrix[pos_a][pos_b] == pytest.approx(
                    scalar_engine.eval_swap(pos_a, pos_b),
                    rel=1e-9,
                    abs=1e-7,
                )

    @COMMON_SETTINGS
    @given(instances_with_base_and_move())
    def test_eval_all_inserts_matches_scalar_elementwise(self, quad):
        pytest.importorskip("numpy")
        instance, base, src, _ = quad
        engine = EvalEngine(instance, kernel="numpy")
        engine.set_base(base)
        scalar_engine = EvalEngine(instance, kernel="scalar")
        scalar_engine.set_base(base)
        vector, _ = engine.eval_all_inserts(base[src])
        for dst in range(instance.n_indexes):
            assert vector[dst] == pytest.approx(
                scalar_engine.eval_relocate(src, dst), rel=1e-9, abs=1e-7
            )

    @COMMON_SETTINGS
    @given(instances())
    def test_feasibility_mask_matches_swap_feasible(self, instance):
        pytest.importorskip("numpy")
        from repro.core.batch import swap_feasibility_mask
        from repro.solvers.localsearch.neighborhood import swap_feasible

        report = analyze(instance)
        constraints = report.constraints
        base = constraints.topological_order()
        mask = swap_feasibility_mask(base, constraints, swap_feasible)
        n = instance.n_indexes
        for pos_a in range(n):
            for pos_b in range(n):
                assert bool(mask[pos_a][pos_b]) == swap_feasible(
                    base, pos_a, pos_b, constraints
                )


# ----------------------------------------------------------------------
# swap_feasible: the windowed check must agree with the full scan on
# feasible orders (its documented domain).
# ----------------------------------------------------------------------
class TestSwapFeasibleProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=12),
        st.randoms(use_true_random=False),
    )
    def test_matches_full_scan_on_feasible_orders(self, n, rng):
        from repro.errors import InfeasibleError
        from repro.solvers.base import repair_order
        from repro.solvers.localsearch.neighborhood import swap_feasible

        constraints = ConstraintSet(n)
        for _ in range(rng.randint(0, 4)):
            a, b = rng.randrange(n), rng.randrange(n)
            if a == b:
                continue
            try:
                if rng.random() < 0.5:
                    constraints.add_precedence(a, b)
                else:
                    constraints.add_consecutive(a, b)
            except InfeasibleError:
                continue
        order = list(range(n))
        rng.shuffle(order)
        order = repair_order(order, constraints)
        if not constraints.check_order(order):
            return  # repair_order glues pairs last; rare clashes skip
        position_free = list(range(n))
        for _ in range(15):
            pos_a = rng.randrange(n)
            pos_b = rng.randrange(n)
            got = swap_feasible(order, pos_a, pos_b, constraints)
            swapped = list(order)
            swapped[pos_a], swapped[pos_b] = swapped[pos_b], swapped[pos_a]
            want = constraints.check_order(swapped)
            assert got == want, (order, pos_a, pos_b)
        assert swap_feasible(position_free, 0, n - 1, None)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class TestSerializationProperties:
    @COMMON_SETTINGS
    @given(instances())
    def test_roundtrip_preserves_objective(self, instance):
        again = instance_from_dict(instance_to_dict(instance))
        order = list(range(instance.n_indexes))
        assert ObjectiveEvaluator(again).evaluate(order) == pytest.approx(
            ObjectiveEvaluator(instance).evaluate(order)
        )

    @COMMON_SETTINGS
    @given(instances())
    def test_roundtrip_preserves_structure(self, instance):
        again = instance_from_dict(instance_to_dict(instance))
        assert again.indexes == instance.indexes
        assert again.queries == instance.queries
        assert again.plans == instance.plans
        assert again.build_interactions == instance.build_interactions


# ----------------------------------------------------------------------
# Pruning soundness (the paper's Theorems 1-10 in aggregate)
# ----------------------------------------------------------------------
class TestPruningProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instances(max_indexes=6))
    def test_analysis_never_loses_the_optimum(self, instance):
        _, unconstrained = brute_force_best(instance)
        report = analyze(instance)
        _, constrained = brute_force_best(instance, report.constraints)
        assert constrained == pytest.approx(unconstrained, rel=1e-9)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instances(max_indexes=6))
    def test_constraints_remain_satisfiable(self, instance):
        report = analyze(instance)
        order = report.constraints.topological_order()
        assert sorted(order) == list(range(instance.n_indexes))


# ----------------------------------------------------------------------
# ConstraintSet algebra
# ----------------------------------------------------------------------
class TestConstraintSetProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=10),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=12,
        ),
    )
    def test_closure_is_transitive_and_acyclic(self, n, raw_edges):
        from repro.errors import InfeasibleError, ValidationError

        constraints = ConstraintSet(n)
        for a, b in raw_edges:
            if a >= n or b >= n or a == b:
                continue
            try:
                constraints.add_precedence(a, b)
            except InfeasibleError:
                continue
        # Transitivity.
        for a in range(n):
            for b in range(n):
                for c in range(n):
                    if constraints.is_before(a, b) and constraints.is_before(
                        b, c
                    ):
                        assert constraints.is_before(a, c)
        # Antisymmetry (acyclicity of the closure).
        for a in range(n):
            for b in range(n):
                if a != b and constraints.is_before(a, b):
                    assert not constraints.is_before(b, a)
        # A witness order exists and satisfies everything.
        order = constraints.topological_order()
        position = {ix: pos for pos, ix in enumerate(order)}
        for a in range(n):
            for b in range(n):
                if constraints.is_before(a, b):
                    assert position[a] < position[b]
