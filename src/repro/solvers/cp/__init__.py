"""Constraint-programming solver stack (Section 6 of the paper).

Layers: :class:`DomainStore` (bitmask finite domains with a trail),
propagators (``alldifferent`` with Hall intervals, precedence bounds,
alliance channeling), and :class:`CPSearch` branch-and-prune with
first-fail or sequential branching.  :class:`CPSolver` is the public
solver facade; LNS/VNS reuse :class:`CPSearch` directly.
"""

from repro.solvers.cp.domains import Conflict, DomainStore
from repro.solvers.cp.propagators import (
    AllDifferent,
    Consecutive,
    Precedence,
    PropagationEngine,
    Propagator,
)
from repro.solvers.cp.search import CPModel, CPSearch, CPSolver, SearchOutcome

__all__ = [
    "Conflict",
    "DomainStore",
    "AllDifferent",
    "Consecutive",
    "Precedence",
    "PropagationEngine",
    "Propagator",
    "CPModel",
    "CPSearch",
    "CPSolver",
    "SearchOutcome",
]
