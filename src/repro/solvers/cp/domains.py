"""Finite-domain store with trail-based backtracking.

Variables are the position variables ``T[i]`` of the CP model
(Section 6.1); values are 0-based deployment positions.  Domains are
Python-int bitmasks, which makes removal, intersection, and Hall-set
reasoning cheap at the problem sizes this library targets (|I| up to a
few hundred).

State is restored on backtrack through a trail of ``(var, old_mask)``
entries delimited by levels, the classic CP solver design.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import ReproError, ValidationError

__all__ = ["Conflict", "DomainStore"]


class Conflict(ReproError):
    """A domain became empty: the current search branch is infeasible."""


class DomainStore:
    """Bitmask domains for ``n`` variables over values ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValidationError(f"DomainStore needs n >= 1, got {n}")
        self.n = n
        full = (1 << n) - 1
        self._domains: List[int] = [full] * n
        self._trail: List[Tuple[int, int]] = []
        self._marks: List[int] = []

    # ------------------------------------------------------------------
    # Trail management
    # ------------------------------------------------------------------
    def push_level(self) -> None:
        """Open a new backtracking level."""
        self._marks.append(len(self._trail))

    def pop_level(self) -> None:
        """Undo every change since the matching :meth:`push_level`."""
        mark = self._marks.pop()
        while len(self._trail) > mark:
            var, old_mask = self._trail.pop()
            self._domains[var] = old_mask

    # ------------------------------------------------------------------
    # Domain access
    # ------------------------------------------------------------------
    def domain_mask(self, var: int) -> int:
        """Raw bitmask of the variable's domain."""
        return self._domains[var]

    def domain_values(self, var: int) -> List[int]:
        """Domain values in increasing order."""
        mask = self._domains[var]
        values = []
        while mask:
            low = mask & -mask
            values.append(low.bit_length() - 1)
            mask ^= low
        return values

    def size(self, var: int) -> int:
        """Number of values remaining for ``var``."""
        return bin(self._domains[var]).count("1")

    def has(self, var: int, value: int) -> bool:
        """True when ``value`` is still in the domain of ``var``."""
        return bool(self._domains[var] & (1 << value))

    def is_assigned(self, var: int) -> bool:
        """True when the domain of ``var`` is a singleton."""
        mask = self._domains[var]
        return mask != 0 and mask & (mask - 1) == 0

    def value(self, var: int) -> int:
        """The assigned value of ``var`` (requires a singleton domain)."""
        mask = self._domains[var]
        if mask == 0 or mask & (mask - 1):
            raise ValidationError(f"variable {var} is not assigned")
        return mask.bit_length() - 1

    def min_value(self, var: int) -> int:
        """Smallest value in the domain."""
        mask = self._domains[var]
        if mask == 0:
            raise Conflict(f"variable {var} has an empty domain")
        return (mask & -mask).bit_length() - 1

    def max_value(self, var: int) -> int:
        """Largest value in the domain."""
        mask = self._domains[var]
        if mask == 0:
            raise Conflict(f"variable {var} has an empty domain")
        return mask.bit_length() - 1

    # ------------------------------------------------------------------
    # Domain mutation (all trailed)
    # ------------------------------------------------------------------
    def set_mask(self, var: int, new_mask: int) -> bool:
        """Intersect the domain of ``var`` down to ``new_mask``.

        Returns ``True`` when the domain changed.

        Raises:
            Conflict: If the domain would become empty.
        """
        old = self._domains[var]
        updated = old & new_mask
        if updated == old:
            return False
        if updated == 0:
            raise Conflict(f"variable {var}: domain wiped out")
        self._trail.append((var, old))
        self._domains[var] = updated
        return True

    def remove(self, var: int, value: int) -> bool:
        """Remove a single value; returns ``True`` if it was present."""
        return self.set_mask(var, ~(1 << value))

    def assign(self, var: int, value: int) -> bool:
        """Reduce ``var`` to the singleton ``{value}``."""
        if not self.has(var, value):
            raise Conflict(f"variable {var}: value {value} not in domain")
        return self.set_mask(var, 1 << value)

    # ------------------------------------------------------------------
    def all_assigned(self) -> bool:
        """True when every variable has a singleton domain."""
        return all(self.is_assigned(v) for v in range(self.n))

    def assignment(self) -> List[int]:
        """Values of all variables (requires all assigned)."""
        return [self.value(v) for v in range(self.n)]

    def union_mask(self, variables: Iterable[int]) -> int:
        """Union of the domains of ``variables``."""
        out = 0
        for var in variables:
            out |= self._domains[var]
        return out
