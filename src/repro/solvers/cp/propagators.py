"""Constraint propagators for the CP model (Section 6.1).

Three propagators cover the model's combinatorial structure:

* :class:`AllDifferent` — the ``alldifferent(T)`` constraint, with
  assigned-value elimination plus Hall-interval bounds reasoning (the
  "single computationally efficient constraint" the paper contrasts
  with MIP's ``|I|^2`` inequalities),
* :class:`Precedence` — ``T_a < T_b`` edges from hard rules and from the
  Section-5 pre-analysis,
* :class:`Consecutive` — alliance gluing ``T_b = T_a + 1``.

Propagators are run to a fixed point by :class:`PropagationEngine` after
every branching decision.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.solvers.cp.domains import Conflict, DomainStore

__all__ = ["Propagator", "AllDifferent", "Precedence", "Consecutive", "PropagationEngine"]


class Propagator:
    """Base class: ``propagate`` returns True when it changed a domain."""

    def propagate(self, store: DomainStore) -> bool:
        raise NotImplementedError


class AllDifferent(Propagator):
    """All position variables take pairwise distinct values."""

    def __init__(self, variables: Sequence[int], hall: bool = True) -> None:
        self.variables = list(variables)
        self.hall = hall

    def propagate(self, store: DomainStore) -> bool:
        changed = False
        # Assigned-value elimination (forward checking) in one pass: the
        # union of singleton domains is removed from every non-singleton.
        assigned_mask = 0
        for var in self.variables:
            mask = store.domain_mask(var)
            if mask & (mask - 1) == 0:  # singleton
                if assigned_mask & mask:
                    raise Conflict(
                        "alldifferent: two variables share a value"
                    )
                assigned_mask |= mask
        if assigned_mask:
            keep = ~assigned_mask
            for var in self.variables:
                mask = store.domain_mask(var)
                if mask & (mask - 1) and mask & assigned_mask:
                    if store.set_mask(var, keep):
                        changed = True
        # Pigeonhole over the full value set.
        union = store.union_mask(self.variables)
        if bin(union).count("1") < len(self.variables):
            raise Conflict("alldifferent: fewer values than variables")
        if self.hall:
            changed |= self._hall_intervals(store)
        return changed

    def _hall_intervals(self, store: DomainStore) -> bool:
        """Bounds-based Hall-interval filtering.

        For every value interval ``[lo, hi]``, if exactly ``hi - lo + 1``
        variables have domains inside it, those variables saturate the
        interval and it can be removed from everyone else; if more
        variables are inside, the branch is infeasible.  Inside-counts
        for all O(n^2) intervals come from a 2-D suffix/prefix sum over
        the (min, max) bound matrix, so a full pass costs O(n^2) plus a
        scan per saturated interval.
        """
        changed = False
        n = store.n
        bounds = [
            (store.min_value(var), store.max_value(var))
            for var in self.variables
        ]
        # matrix[lo][hi] = number of variables with exactly these bounds;
        # loose[lo][hi] counts only non-singletons.  Saturated intervals
        # whose members are all singletons were fully handled by forward
        # checking, and skipping their rescans is what keeps sequential
        # search (whose assigned prefix saturates O(k^2) subintervals)
        # from degenerating to O(k^2 n) per propagation call.
        matrix = [[0] * n for _ in range(n)]
        loose = [[0] * n for _ in range(n)]
        for vlo, vhi in bounds:
            matrix[vlo][vhi] += 1
            if vlo != vhi:
                loose[vlo][vhi] += 1
        # count[lo][hi] = #vars with vlo >= lo and vhi <= hi.
        count = [[0] * n for _ in range(n + 1)]
        loose_count = [[0] * n for _ in range(n + 1)]
        for lo in range(n - 1, -1, -1):
            row = 0
            loose_row = 0
            matrix_row = matrix[lo]
            loose_matrix_row = loose[lo]
            below = count[lo + 1]
            loose_below = loose_count[lo + 1]
            current = count[lo]
            loose_current = loose_count[lo]
            for hi in range(n):
                row += matrix_row[hi]
                loose_row += loose_matrix_row[hi]
                current[hi] = below[hi] + row
                loose_current[hi] = loose_below[hi] + loose_row
        for lo in range(n):
            count_row = count[lo]
            loose_row = loose_count[lo]
            for hi in range(lo, n):
                width = hi - lo + 1
                inside = count_row[hi]
                if inside > width:
                    raise Conflict(
                        f"alldifferent: {inside} variables packed into "
                        f"interval [{lo}, {hi}]"
                    )
                if inside == width and width < n and loose_row[hi]:
                    interval_mask = ((1 << width) - 1) << lo
                    for position, var in enumerate(self.variables):
                        vlo, vhi = bounds[position]
                        if vlo >= lo and vhi <= hi:
                            continue
                        if store.domain_mask(var) & interval_mask:
                            store.set_mask(var, ~interval_mask)
                            changed = True
        return changed


class Precedence(Propagator):
    """Bounds propagation for a set of ``T_a < T_b`` edges."""

    def __init__(self, edges: Sequence[Tuple[int, int]]) -> None:
        self.edges = list(edges)

    def propagate(self, store: DomainStore) -> bool:
        changed = False
        for before, after in self.edges:
            lo = store.min_value(before)
            hi = store.max_value(after)
            # after must exceed the smallest feasible value of before.
            low_mask = ~((1 << (lo + 1)) - 1)
            if store.set_mask(after, low_mask):
                changed = True
            # before must stay below the largest feasible value of after.
            hi = store.max_value(after)
            high_mask = (1 << hi) - 1
            if store.set_mask(before, high_mask):
                changed = True
        return changed


class Consecutive(Propagator):
    """Channeling for alliance pairs: ``T_b = T_a + 1``."""

    def __init__(self, pairs: Sequence[Tuple[int, int]]) -> None:
        self.pairs = list(pairs)

    def propagate(self, store: DomainStore) -> bool:
        changed = False
        full = (1 << store.n) - 1
        for first, second in self.pairs:
            shifted_up = (store.domain_mask(first) << 1) & full
            if store.set_mask(second, shifted_up):
                changed = True
            shifted_down = store.domain_mask(second) >> 1
            if store.set_mask(first, shifted_down):
                changed = True
        return changed


class PropagationEngine:
    """Runs all propagators to a common fixed point."""

    def __init__(self, propagators: Sequence[Propagator]) -> None:
        self.propagators = list(propagators)

    def propagate(self, store: DomainStore) -> None:
        """Propagate until no propagator changes any domain.

        Raises:
            Conflict: When any propagator wipes out a domain.
        """
        changed = True
        while changed:
            changed = False
            for propagator in self.propagators:
                if propagator.propagate(store):
                    changed = True
