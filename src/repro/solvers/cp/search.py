"""Branch-and-prune search for the CP model (Section 6.2).

The searcher assigns position variables depth-first with a pluggable
branching strategy:

* ``"first_fail"`` — dynamic variable ordering by smallest domain (the
  paper's FF heuristic; the Section-5 constraints skew domain sizes,
  which is exactly what makes FF effective here),
* ``"sequential"`` — fill deployment positions left to right, which
  keeps an exact prefix objective available and enables the
  branch-and-bound style pruning the exhaustive solver uses.

An incumbent objective is maintained; complete assignments are evaluated
exactly, and (for sequential search) partial assignments are pruned with
the admissible remaining-area bound.  The searcher also powers LNS/VNS
through ``fixed`` variable assignments and a failure limit.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.engine import EvalEngine
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.solvers.base import Budget, Solver
from repro.solvers.cp.domains import Conflict, DomainStore
from repro.solvers.cp.propagators import (
    AllDifferent,
    Consecutive,
    Precedence,
    PropagationEngine,
)
from repro.solvers.registry import register

__all__ = ["CPModel", "CPSearch", "CPSolver", "SearchOutcome"]


class CPModel:
    """The CP formulation of one ordering instance (Section 6.1)."""

    def __init__(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        hall: bool = True,
        engine: Optional[EvalEngine] = None,
    ) -> None:
        self.instance = instance
        self.constraints = constraints
        self.n = instance.n_indexes
        self.hall = hall
        if engine is not None and engine.instance is not instance:
            engine = None  # a foreign engine's caches would be wrong
        self._engine: Optional[EvalEngine] = engine

    @property
    def engine(self) -> EvalEngine:
        """Shared evaluation backend for every search over this model.

        LNS/VNS run thousands of :class:`CPSearch` instances against one
        model; sharing the engine lets them reuse the built-set memo and
        the delta-evaluation base across relaxations.
        """
        if self._engine is None:
            self._engine = EvalEngine(self.instance)
        return self._engine

    def create_store(self) -> DomainStore:
        """Fresh domain store with constraint-derived initial bounds."""
        store = DomainStore(self.n)
        if self.constraints is not None:
            for var in range(self.n):
                lo, hi = self.constraints.position_bounds(var)
                # Convert 1-based inclusive bounds to a 0-based mask.
                mask = 0
                for value in range(lo - 1, hi):
                    mask |= 1 << value
                store.set_mask(var, mask)
        return store

    def create_engine(self) -> PropagationEngine:
        """Propagators for alldifferent, precedences, and alliances."""
        propagators = [
            AllDifferent(list(range(self.n)), hall=self.hall)
        ]
        if self.constraints is not None:
            edges = sorted(self.constraints.precedence_edges)
            if edges:
                propagators.append(Precedence(edges))
            pairs = self.constraints.consecutive_pairs
            if pairs:
                propagators.append(Consecutive(pairs))
        return PropagationEngine(propagators)


class SearchOutcome:
    """Result of one :class:`CPSearch` run (used directly by LNS/VNS)."""

    def __init__(self) -> None:
        self.best_order: Optional[List[int]] = None
        self.best_objective = float("inf")
        self.nodes = 0
        self.failures = 0
        self.proved = False
        self.interrupted = False
        self.trace: List[Tuple[float, float]] = []


class CPSearch:
    """One depth-first branch-and-prune run over a CP model."""

    def __init__(
        self,
        model: CPModel,
        strategy: str = "first_fail",
        incumbent: Optional[float] = None,
        failure_limit: Optional[int] = None,
        budget: Optional[Budget] = None,
        fixed: Optional[Dict[int, int]] = None,
        delta_base: Optional[Sequence[int]] = None,
    ) -> None:
        if strategy not in ("first_fail", "sequential"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.model = model
        self.strategy = strategy
        self.failure_limit = failure_limit
        self.budget = budget
        self.fixed = dict(fixed) if fixed else {}
        self.engine = model.engine
        self.outcome = SearchOutcome()
        if incumbent is not None:
            self.outcome.best_objective = incumbent
        # When the caller searches a neighborhood of a known order (the
        # LNS/VNS relaxations), leaves are delta-evaluated against it —
        # only each candidate's divergence window is replayed.
        self._use_delta = delta_base is not None
        if delta_base is not None:
            self.engine.set_base(delta_base)
        self._density_rank = self._compute_density_ranks(model.instance)
        self._start = time.perf_counter()

    @staticmethod
    def _compute_density_ranks(instance: ProblemInstance) -> List[int]:
        """Static value-ordering heuristic: denser indexes branch first."""
        densities = []
        for index in instance.indexes:
            benefit = 0.0
            for plan_id in instance.plans_containing(index.index_id):
                plan = instance.plans[plan_id]
                weight = instance.queries[plan.query_id].weight
                share = plan.speedup * weight / len(plan.indexes)
                benefit += share
            cost = max(instance.min_build_cost(index.index_id), 1e-9)
            densities.append((-benefit / cost, index.index_id))
        ranks = [0] * instance.n_indexes
        for rank, (_, index_id) in enumerate(sorted(densities)):
            ranks[index_id] = rank
        return ranks

    def run(self) -> SearchOutcome:
        """Execute the search; the outcome reports proof vs. interruption."""
        store = self.model.create_store()
        engine = self.model.create_engine()
        try:
            for var, value in self.fixed.items():
                store.assign(var, value)
            engine.propagate(store)
        except Conflict:
            self.outcome.proved = True
            return self.outcome
        self._dfs(store, engine)
        if not self.outcome.interrupted:
            self.outcome.proved = True
        return self.outcome

    # ------------------------------------------------------------------
    def _dfs(self, store: DomainStore, engine: PropagationEngine) -> None:
        if self._should_stop():
            return
        self.outcome.nodes += 1
        if self.budget is not None:
            self.budget.tick()
        if store.all_assigned():
            self._record_leaf(store)
            return
        if not self._bound_admits(store):
            self.outcome.failures += 1
            return
        for var, value in self._branch_decisions(store):
            if self._should_stop():
                return
            store.push_level()
            try:
                store.assign(var, value)
                engine.propagate(store)
            except Conflict:
                self.outcome.failures += 1
                store.pop_level()
                continue
            self._dfs(store, engine)
            store.pop_level()

    def _should_stop(self) -> bool:
        if self.outcome.interrupted:
            return True
        if self.budget is not None and self.budget.exhausted:
            self.outcome.interrupted = True
            return True
        if (
            self.failure_limit is not None
            and self.outcome.failures > self.failure_limit
        ):
            self.outcome.interrupted = True
            return True
        return False

    def _record_leaf(self, store: DomainStore) -> None:
        positions = store.assignment()
        order = [0] * self.model.n
        for var, position in enumerate(positions):
            order[position] = var
        if self._use_delta:
            objective = self.engine.evaluate_neighbor(order)
        else:
            objective = self.engine.evaluate(order)
        if objective < self.outcome.best_objective - 1e-12:
            self.outcome.best_objective = objective
            self.outcome.best_order = order
            self.outcome.trace.append(
                (time.perf_counter() - self._start, objective)
            )
        else:
            self.outcome.failures += 1

    def _branch_decisions(self, store: DomainStore) -> List[Tuple[int, int]]:
        """Child decisions ``(var, value)`` under the active strategy.

        Sequential: branch over which index takes the first unfilled
        position (keeps the prefix contiguous so the exact-prefix bound
        applies at every node), candidates ordered by the static greedy
        density so good incumbents appear early.  First-fail: branch on
        the smallest-domain variable, values ascending.
        """
        if self.strategy == "sequential":
            taken = 0
            for var in range(store.n):
                if store.is_assigned(var):
                    taken |= store.domain_mask(var)
            position = 0
            while taken & (1 << position):
                position += 1
            candidates = [
                var
                for var in range(store.n)
                if not store.is_assigned(var) and store.has(var, position)
            ]
            candidates.sort(key=lambda v: self._density_rank[v])
            return [(var, position) for var in candidates]
        best_var = -1
        best_size = float("inf")
        for var in range(store.n):
            if store.is_assigned(var):
                continue
            size = store.size(var)
            if size < best_size:
                best_size = size
                best_var = var
        if best_var < 0:
            return []
        return [(best_var, value) for value in store.domain_values(best_var)]

    def _bound_admits(self, store: DomainStore) -> bool:
        """Prune with exact-prefix + admissible-suffix lower bound.

        Only applies when the assigned variables occupy a contiguous
        position prefix ``0..k-1`` (always true under sequential
        branching, opportunistically true under first-fail).
        """
        if self.outcome.best_objective == float("inf"):
            return True
        assigned: Dict[int, int] = {}
        for var in range(store.n):
            if store.is_assigned(var):
                assigned[store.value(var)] = var
        k = 0
        while k in assigned:
            k += 1
        if any(position >= k for position in assigned):
            return True  # not a contiguous prefix; no cheap bound
        prefix = [assigned[position] for position in range(k)]
        prefix_objective, runtime_now = self.engine.prefix_state(prefix)
        bound = prefix_objective + self.engine.suffix_bound(
            runtime_now, self.engine.mask_of(prefix)
        )
        return bound < self.outcome.best_objective - 1e-12


@register(
    "cp",
    summary="CP branch-and-prune over position variables (Section 6)",
    exact=True,
    anytime=True,
)
class CPSolver(Solver):
    """Constraint-programming solver (Section 6).

    Args:
        strategy: ``"first_fail"`` (paper default) or ``"sequential"``.
        hall: Enable Hall-interval filtering in ``alldifferent``.
    """

    name = "cp"

    def __init__(
        self,
        strategy: str = "first_fail",
        hall: bool = True,
        seed_incumbent: bool = True,
    ) -> None:
        self.strategy = strategy
        self.hall = hall
        self.seed_incumbent = seed_incumbent
        #: Engine counters of the most recent :meth:`solve` (dict form).
        self.last_engine_stats = None

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        model = CPModel(
            instance, constraints, hall=self.hall, engine=self._engine(instance)
        )
        incumbent_order = None
        incumbent_objective = None
        if self.seed_incumbent:
            from repro.solvers.greedy import greedy_order

            incumbent_order = greedy_order(instance, constraints)
            incumbent_objective = model.engine.evaluate(incumbent_order)
        search = CPSearch(
            model,
            strategy=self.strategy,
            incumbent=incumbent_objective,
            budget=budget,
        )
        if incumbent_objective is not None:
            # The greedy seed is the first incumbent; Figures 11/12 plot
            # the CP anytime curve from this point.
            search.outcome.trace.append(
                (time.perf_counter() - start, incumbent_objective)
            )
        outcome = search.run()
        elapsed = time.perf_counter() - start
        self.last_engine_stats = model.engine.stats.as_dict()
        if outcome.best_order is None and incumbent_order is not None:
            # Nothing beat the greedy seed: it is the solution (and, if
            # the search closed, provably optimal).
            outcome.best_order = list(incumbent_order)
            outcome.best_objective = incumbent_objective
        if outcome.best_order is None:
            status = (
                SolveStatus.TIMEOUT
                if outcome.interrupted
                else SolveStatus.INFEASIBLE
            )
            return SolveResult(
                solver=self.name,
                status=status,
                solution=None,
                runtime=elapsed,
                nodes=outcome.nodes,
            )
        status = (
            SolveStatus.OPTIMAL if outcome.proved else SolveStatus.TIMEOUT
        )
        return SolveResult(
            solver=self.name,
            status=status,
            solution=Solution(tuple(outcome.best_order), outcome.best_objective),
            runtime=elapsed,
            nodes=outcome.nodes,
            trace=outcome.trace,
        )
