"""Exhaustive depth-first search with branch-and-bound pruning.

Builds the deployment sequence position by position.  A partial prefix
has an exact objective; the engine's density-relaxation suffix bound
gives an admissible lower bound for pruning against the incumbent.
With no incumbent pruning this degenerates to the factorial search the
paper uses as its reference point ("runtime of CP without pruning is
roughly proportional to |I|!").

Two engine-backed prunes are applied on top of the incumbent bound:

* the shared density suffix bound (:meth:`EvalEngine.suffix_bound`),
* a transposition table over built-set bitmasks — the suffix cost of a
  prefix depends only on its built *set*, so any prefix reaching an
  already-seen set at an equal-or-worse objective is dominated and cut,
  which collapses the factorial permutation tree toward the ``2^n``
  subset lattice.

Precedence constraints restrict which index may be placed next;
consecutive (alliance) pairs force the glued successor immediately.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.analysis.constraints import ConstraintSet
from repro.core.engine import EvalEngine
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.solvers.base import Budget, Solver
from repro.solvers.greedy import greedy_order
from repro.solvers.registry import register

__all__ = ["ExhaustiveSolver"]


@register(
    "exhaustive",
    summary="DFS branch-and-bound over permutations (exact)",
    exact=True,
)
class ExhaustiveSolver(Solver):
    """Exact DFS branch-and-bound over index permutations.

    Args:
        use_bound: Prune with the engine's density-relaxation suffix
            bound.
        seed_incumbent: Start from the greedy solution's objective so
            pruning bites from the first node.
        use_transposition: Prune prefixes that reach an already-seen
            built-set at an equal-or-worse objective.
    """

    name = "exhaustive"

    def __init__(
        self,
        use_bound: bool = True,
        seed_incumbent: bool = True,
        use_transposition: bool = True,
    ) -> None:
        self.use_bound = use_bound
        self.seed_incumbent = seed_incumbent
        self.use_transposition = use_transposition
        #: Engine counters of the most recent :meth:`solve` (dict form).
        self.last_engine_stats = None

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        engine = self._engine(instance)
        search = _DFSState(
            instance,
            constraints,
            budget,
            self.use_bound,
            engine,
            self.use_transposition,
        )
        if self.seed_incumbent:
            initial = greedy_order(instance, constraints)
            search.best_objective = engine.evaluate(initial)
            search.best_order = list(initial)
        search.run()
        elapsed = time.perf_counter() - start
        self.last_engine_stats = engine.stats.as_dict()
        if search.best_order is None:
            status = (
                SolveStatus.TIMEOUT if search.interrupted else SolveStatus.INFEASIBLE
            )
            return SolveResult(
                solver=self.name,
                status=status,
                solution=None,
                runtime=elapsed,
                nodes=search.nodes,
            )
        status = (
            SolveStatus.TIMEOUT if search.interrupted else SolveStatus.OPTIMAL
        )
        return SolveResult(
            solver=self.name,
            status=status,
            solution=Solution(tuple(search.best_order), search.best_objective),
            runtime=elapsed,
            nodes=search.nodes,
            trace=search.trace,
        )


class _DFSState:
    """Mutable DFS machinery with incremental objective bookkeeping."""

    def __init__(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet],
        budget: Optional[Budget],
        use_bound: bool,
        engine: EvalEngine,
        use_transposition: bool = True,
    ) -> None:
        self.instance = instance
        self.constraints = constraints
        self.budget = budget
        self.use_bound = use_bound
        self.engine = engine
        self.n = instance.n_indexes
        self._plan_query = engine.plan_query
        self._plan_speedup = engine.plan_speedup
        self._plans_of_index = engine.plans_of_index
        self._helpers = engine.helpers
        self._ctime = engine.ctime
        self._qweight = engine.qweight
        self.transpositions = (
            engine.new_transposition_table() if use_transposition else None
        )
        self.consecutive_after = {}
        if constraints is not None:
            for first, second in constraints.consecutive_pairs:
                self.consecutive_after[first] = second
        # Search state.
        self.missing = engine.plan_size[:]
        self.qbest = [0.0] * instance.n_queries
        self.built = bytearray(self.n)
        self.built_mask = 0
        self.runtime = instance.total_base_runtime
        self.objective = 0.0
        self.prefix: List[int] = []
        self.best_order: Optional[List[int]] = None
        self.best_objective = float("inf")
        self.nodes = 0
        self.interrupted = False
        self.trace: List[tuple] = []
        self._start = time.perf_counter()

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._dfs()

    def _candidates(self) -> List[int]:
        if self.prefix:
            forced = self.consecutive_after.get(self.prefix[-1])
            if forced is not None and not self.built[forced]:
                return [forced]
        out = []
        for i in range(self.n):
            if self.built[i]:
                continue
            if self.constraints is not None:
                blocked = False
                for pred in self.constraints.predecessors(i):
                    if not self.built[pred]:
                        blocked = True
                        break
                if blocked:
                    continue
            out.append(i)
        return out

    def _dfs(self) -> None:
        if self.interrupted:
            return
        self.nodes += 1
        if self.budget is not None:
            self.budget.tick()
            if self.budget.exhausted:
                self.interrupted = True
                return
        if len(self.prefix) == self.n:
            if self.objective < self.best_objective:
                self.best_objective = self.objective
                self.best_order = list(self.prefix)
                self.trace.append(
                    (time.perf_counter() - self._start, self.objective)
                )
            return
        # Built-set dominance: the same set reached before at an
        # equal-or-better objective completes at least as cheaply.  The
        # candidate set is a function of the built-set alone (a pending
        # alliance forces an identical last element for every prefix
        # sharing the mask), so the prune is exact.
        if self.transpositions is not None and self.transpositions.dominated(
            self.built_mask, self.objective
        ):
            return
        if self.use_bound:
            bound = self.objective + self.engine.suffix_bound(
                self.runtime, self.built_mask
            )
            if bound >= self.best_objective - 1e-12:
                return
        for candidate in self._candidates():
            undo = self._apply(candidate)
            self._dfs()
            self._undo(candidate, undo)
            if self.interrupted:
                return

    def _apply(self, index_id: int):
        best_saving = 0.0
        for helper, saving in self._helpers[index_id]:
            if self.built[helper] and saving > best_saving:
                best_saving = saving
        cost = self._ctime[index_id] - best_saving
        prev_objective = self.objective
        prev_runtime = self.runtime
        self.objective += self.runtime * cost
        self.built[index_id] = 1
        self.built_mask |= 1 << index_id
        self.prefix.append(index_id)
        runtime_delta = 0.0
        completed: List[tuple] = []
        for plan_id in self._plans_of_index[index_id]:
            self.missing[plan_id] -= 1
            if self.missing[plan_id] == 0:
                query_id = self._plan_query[plan_id]
                speedup = self._plan_speedup[plan_id]
                if speedup > self.qbest[query_id]:
                    gain = (speedup - self.qbest[query_id]) * self._qweight[
                        query_id
                    ]
                    runtime_delta += gain
                    completed.append((query_id, self.qbest[query_id]))
                    self.qbest[query_id] = speedup
        self.runtime -= runtime_delta
        # Undo restores the exact prior floats (same invariant as
        # engine.PrefixCursor): drift-free prefix objectives feed the
        # transposition-table dominance check.
        return (prev_objective, prev_runtime, completed)

    def _undo(self, index_id: int, undo) -> None:
        prev_objective, prev_runtime, completed = undo
        for query_id, previous in reversed(completed):
            self.qbest[query_id] = previous
        self.runtime = prev_runtime
        for plan_id in self._plans_of_index[index_id]:
            self.missing[plan_id] += 1
        self.prefix.pop()
        self.built[index_id] = 0
        self.built_mask &= ~(1 << index_id)
        self.objective = prev_objective
