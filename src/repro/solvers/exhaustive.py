"""Exhaustive depth-first search with branch-and-bound pruning.

Builds the deployment sequence position by position.  A partial prefix
has an exact objective; the remaining indexes contribute at least
``R_final * min_build_cost`` each, which gives an admissible lower bound
for pruning against the incumbent.  With no incumbent pruning this
degenerates to the factorial search the paper uses as its reference
point ("runtime of CP without pruning is roughly proportional to |I|!").

Precedence constraints restrict which index may be placed next;
consecutive (alliance) pairs force the glued successor immediately.
"""

from __future__ import annotations

import time
from typing import List, Optional, Set

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.solvers.base import Budget, Solver, SuffixBound
from repro.solvers.greedy import greedy_order

__all__ = ["ExhaustiveSolver"]


class ExhaustiveSolver(Solver):
    """Exact DFS branch-and-bound over index permutations.

    Args:
        use_bound: Prune with the density-relaxation suffix bound.
        seed_incumbent: Start from the greedy solution's objective so
            pruning bites from the first node.
    """

    name = "exhaustive"

    def __init__(self, use_bound: bool = True, seed_incumbent: bool = True) -> None:
        self.use_bound = use_bound
        self.seed_incumbent = seed_incumbent

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        search = _DFSState(instance, constraints, budget, self.use_bound)
        if self.seed_incumbent:
            initial = greedy_order(instance, constraints)
            evaluator = ObjectiveEvaluator(instance)
            search.best_objective = evaluator.evaluate(initial)
            search.best_order = list(initial)
        search.run()
        elapsed = time.perf_counter() - start
        if search.best_order is None:
            status = (
                SolveStatus.TIMEOUT if search.interrupted else SolveStatus.INFEASIBLE
            )
            return SolveResult(
                solver=self.name,
                status=status,
                solution=None,
                runtime=elapsed,
                nodes=search.nodes,
            )
        status = (
            SolveStatus.TIMEOUT if search.interrupted else SolveStatus.OPTIMAL
        )
        return SolveResult(
            solver=self.name,
            status=status,
            solution=Solution(tuple(search.best_order), search.best_objective),
            runtime=elapsed,
            nodes=search.nodes,
            trace=search.trace,
        )


class _DFSState:
    """Mutable DFS machinery with incremental objective bookkeeping."""

    def __init__(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet],
        budget: Optional[Budget],
        use_bound: bool,
    ) -> None:
        self.instance = instance
        self.constraints = constraints
        self.budget = budget
        self.use_bound = use_bound
        self.n = instance.n_indexes
        evaluator = ObjectiveEvaluator(instance)
        self._plan_query = evaluator._plan_query
        self._plan_speedup = evaluator._plan_speedup
        self._plans_of_index = evaluator._plans_of_index
        self._helpers = evaluator._helpers
        self._ctime = evaluator._ctime
        self._qweight = evaluator._qweight
        self.final_runtime = instance.total_runtime(range(self.n))
        self.min_cost = [instance.min_build_cost(i) for i in range(self.n)]
        self.suffix_bound = SuffixBound(instance)
        self.built_set: Set[int] = set()
        self.consecutive_after = {}
        if constraints is not None:
            for first, second in constraints.consecutive_pairs:
                self.consecutive_after[first] = second
        # Search state.
        self.missing = [len(p.indexes) for p in instance.plans]
        self.qbest = [0.0] * instance.n_queries
        self.built = bytearray(self.n)
        self.runtime = instance.total_base_runtime
        self.objective = 0.0
        self.prefix: List[int] = []
        self.best_order: Optional[List[int]] = None
        self.best_objective = float("inf")
        self.nodes = 0
        self.interrupted = False
        self.trace: List[tuple] = []
        self._start = time.perf_counter()
        self.remaining_min_cost = sum(self.min_cost)

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._dfs()

    def _candidates(self) -> List[int]:
        if self.prefix:
            forced = self.consecutive_after.get(self.prefix[-1])
            if forced is not None and not self.built[forced]:
                return [forced]
        out = []
        for i in range(self.n):
            if self.built[i]:
                continue
            if self.constraints is not None:
                blocked = False
                for pred in self.constraints.predecessors(i):
                    if not self.built[pred]:
                        blocked = True
                        break
                if blocked:
                    continue
            out.append(i)
        return out

    def _dfs(self) -> None:
        if self.interrupted:
            return
        self.nodes += 1
        if self.budget is not None:
            self.budget.tick()
            if self.budget.exhausted:
                self.interrupted = True
                return
        if len(self.prefix) == self.n:
            if self.objective < self.best_objective:
                self.best_objective = self.objective
                self.best_order = list(self.prefix)
                self.trace.append(
                    (time.perf_counter() - self._start, self.objective)
                )
            return
        if self.use_bound:
            bound = self.objective + self.suffix_bound.bound(
                self.runtime, self.built_set
            )
            if bound >= self.best_objective - 1e-12:
                return
        for candidate in self._candidates():
            undo = self._apply(candidate)
            self._dfs()
            self._undo(candidate, undo)
            if self.interrupted:
                return

    def _apply(self, index_id: int):
        best_saving = 0.0
        for helper, saving in self._helpers[index_id]:
            if self.built[helper] and saving > best_saving:
                best_saving = saving
        cost = self._ctime[index_id] - best_saving
        delta_objective = self.runtime * cost
        self.objective += delta_objective
        self.built[index_id] = 1
        self.built_set.add(index_id)
        self.prefix.append(index_id)
        self.remaining_min_cost -= self.min_cost[index_id]
        runtime_delta = 0.0
        completed: List[tuple] = []
        for plan_id in self._plans_of_index[index_id]:
            self.missing[plan_id] -= 1
            if self.missing[plan_id] == 0:
                query_id = self._plan_query[plan_id]
                speedup = self._plan_speedup[plan_id]
                if speedup > self.qbest[query_id]:
                    gain = (speedup - self.qbest[query_id]) * self._qweight[
                        query_id
                    ]
                    runtime_delta += gain
                    completed.append((query_id, self.qbest[query_id]))
                    self.qbest[query_id] = speedup
        self.runtime -= runtime_delta
        return (delta_objective, runtime_delta, completed)

    def _undo(self, index_id: int, undo) -> None:
        delta_objective, runtime_delta, completed = undo
        for query_id, previous in reversed(completed):
            self.qbest[query_id] = previous
        self.runtime += runtime_delta
        for plan_id in self._plans_of_index[index_id]:
            self.missing[plan_id] += 1
        self.remaining_min_cost += self.min_cost[index_id]
        self.prefix.pop()
        self.built[index_id] = 0
        self.built_set.discard(index_id)
        self.objective -= delta_objective
