"""Schnaitter-style dynamic-programming scheduler (Appendix C, Algorithm 2).

This is the prior-art baseline the paper compares its greedy against
(Table 7).  It recursively splits the index set with a Stoer–Wagner
minimum cut over an interaction-weight graph, schedules each side, and
interleaves the two sub-schedules by marginal benefit.  Its known
shortcomings — it ignores index build costs and build interactions — are
exactly what Table 7 demonstrates.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.solvers.base import Budget, Solver, repair_order
from repro.solvers.registry import register

__all__ = ["DPSolver", "dp_order", "interaction_weights"]


def interaction_weights(
    instance: ProblemInstance,
) -> Dict[Tuple[int, int], float]:
    """Edge weights of the DP clustering graph.

    Per Appendix C: within a plan of speed-up ``s`` over ``k`` indexes,
    every index pair receives weight ``s / k``; indexes serving the same
    query through *different* plans receive the minimum of their two
    plan shares.  Weights accumulate over queries.
    """
    weights: Dict[Tuple[int, int], float] = {}

    def bump(a: int, b: int, value: float) -> None:
        if a == b:
            return
        key = (a, b) if a < b else (b, a)
        weights[key] = weights.get(key, 0.0) + value

    for query in instance.queries:
        plan_ids = instance.plans_of_query(query.query_id)
        shares: List[Tuple[Set[int], float]] = []
        for plan_id in plan_ids:
            plan = instance.plans[plan_id]
            share = plan.speedup * query.weight / len(plan.indexes)
            shares.append((set(plan.indexes), share))
            members = sorted(plan.indexes)
            for pos, a in enumerate(members):
                for b in members[pos + 1 :]:
                    bump(a, b, share)
        for pos, (set_a, share_a) in enumerate(shares):
            for set_b, share_b in shares[pos + 1 :]:
                cross = min(share_a, share_b)
                for a in set_a - set_b:
                    for b in set_b - set_a:
                        bump(a, b, cross)
    return weights


def _min_cut_split(
    nodes: Sequence[int], weights: Dict[Tuple[int, int], float]
) -> Tuple[List[int], List[int]]:
    """Split ``nodes`` into two clusters via Stoer–Wagner minimum cut."""
    node_list = sorted(nodes)
    graph = nx.Graph()
    graph.add_nodes_from(node_list)
    node_set = set(node_list)
    for (a, b), weight in weights.items():
        if a in node_set and b in node_set and weight > 0:
            graph.add_edge(a, b, weight=weight)
    components = [sorted(c) for c in nx.connected_components(graph)]
    if len(components) > 1:
        first = components[0]
        rest = sorted(x for c in components[1:] for x in c)
        return first, rest
    _, (side_a, side_b) = nx.stoer_wagner(graph)
    return sorted(side_a), sorted(side_b)


def dp_order(instance: ProblemInstance) -> List[int]:
    """Run Algorithm 2 and return the resulting order."""

    def recurse(nodes: List[int]) -> List[int]:
        if len(nodes) <= 1:
            return list(nodes)
        side_a, side_b = _min_cut_split(nodes, weights)
        seq_a = recurse(side_a)
        seq_b = recurse(side_b)
        return _interleave(instance, seq_a, seq_b)

    weights = interaction_weights(instance)
    return recurse(sorted(range(instance.n_indexes)))


def _interleave(
    instance: ProblemInstance, seq_a: List[int], seq_b: List[int]
) -> List[int]:
    """Merge two sub-schedules by marginal query benefit (cost-blind)."""
    merged: List[int] = []
    built: Set[int] = set()
    pos_a = pos_b = 0
    runtime_now = instance.total_runtime(built)
    while pos_a < len(seq_a) and pos_b < len(seq_b):
        front_a = seq_a[pos_a]
        front_b = seq_b[pos_b]
        benefit_a = runtime_now - instance.total_runtime(built | {front_a})
        benefit_b = runtime_now - instance.total_runtime(built | {front_b})
        if benefit_a >= benefit_b:
            chosen, pos_a = front_a, pos_a + 1
        else:
            chosen, pos_b = front_b, pos_b + 1
        merged.append(chosen)
        built.add(chosen)
        runtime_now = instance.total_runtime(built)
    merged.extend(seq_a[pos_a:])
    merged.extend(seq_b[pos_b:])
    return merged


@register(
    "dp",
    summary="Schnaitter min-cut DP baseline (Algorithm 2)",
)
class DPSolver(Solver):
    """Solver wrapper around :func:`dp_order`.

    Constraints are applied post hoc: the DP itself is constraint-blind
    (faithful to the prior work), but the returned order is repaired into
    full feasibility (precedences and consecutive pairs) so it can seed
    constraint-aware local search.
    """

    name = "dp"

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        order = dp_order(instance)
        order = repair_order(order, constraints)
        solution = Solution.from_order(instance, order)
        elapsed = time.perf_counter() - start
        return SolveResult(
            solver=self.name,
            status=SolveStatus.FEASIBLE,
            solution=solution,
            runtime=elapsed,
            nodes=instance.n_indexes,
            trace=[(elapsed, solution.objective)],
        )
