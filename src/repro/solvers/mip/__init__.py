"""Time-indexed MIP formulation and branch-and-bound (Appendix B)."""

from repro.solvers.mip.branch_bound import MIPSolver
from repro.solvers.mip.model import DEFAULT_VARIABLE_LIMIT, MIPModel, build_model

__all__ = ["MIPSolver", "MIPModel", "build_model", "DEFAULT_VARIABLE_LIMIT"]
