"""Time-indexed MIP formulation of the ordering problem (Appendix B).

The model discretizes deployment time into ``|D|`` uniform steps and
introduces the paper's variable families:

* ``B[i,j]`` — binary linear-ordering variables (index ``i`` precedes
  ``j``), with the linear-ordering-polytope transitivity cuts,
* ``A[i]`` — continuous start step of index ``i``'s build,
* ``C[i]`` — build cost of ``i`` in steps, reduced by build-interaction
  variables ``CY[i,j]``,
* ``Z[i,d]`` — availability of index ``i`` at step ``d``,
* ``Y[q,p,d]`` — plan choice per query and step (with an empty plan and
  the paper's imaginary all-indexes plan that zeroes runtime after full
  deployment).

``X[q,d]`` is substituted out: the objective charges ``Y`` directly with
``qtime - qspdup``.  The point of this module is faithfulness, not
speed — the paper's result is precisely that this formulation explodes
(1M+ variables on large instances) and its linear relaxation is weak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.errors import ValidationError

__all__ = ["MIPModel", "build_model"]

#: Refuse to build models larger than this many variables, mirroring the
#: out-of-memory failures the paper reports for CPlex on dense instances.
DEFAULT_VARIABLE_LIMIT = 200_000


@dataclass
class MIPModel:
    """A concrete LP/MIP in matrix form.

    ``A_ub x <= b_ub``, ``A_eq x = b_eq``, minimize ``c @ x``; the
    ``integral`` mask marks binary variables for branch-and-bound.
    """

    instance: ProblemInstance
    n_steps: int
    step_unit: float
    c: np.ndarray
    A_ub: sparse.csr_matrix
    b_ub: np.ndarray
    A_eq: sparse.csr_matrix
    b_eq: np.ndarray
    bounds: List[Tuple[float, float]]
    integral: np.ndarray
    var_names: List[str]
    b_index: Dict[Tuple[int, int], int]
    a_index: Dict[int, int]
    objective_offset: float = 0.0

    @property
    def n_variables(self) -> int:
        """Total variable count (the paper's scalability bottleneck)."""
        return len(self.c)

    def order_from_solution(self, x: np.ndarray) -> List[int]:
        """Extract a deployment order by sorting the ``A`` start times."""
        starts = [(x[self.a_index[i]], i) for i in self.a_index]
        return [i for _, i in sorted(starts)]

    def discretized_objective(self, order: Sequence[int]) -> float:
        """Objective of ``order`` under this model's discretization.

        Used by the branch-and-bound primal heuristic so incumbents live
        in the same objective space as the LP bounds.
        """
        instance = self.instance
        built: set = set()
        elapsed = 0.0
        finish: Dict[int, float] = {}
        for index_id in order:
            cost_steps = instance.build_cost(index_id, built) / self.step_unit
            elapsed += cost_steps
            finish[index_id] = elapsed
            built.add(index_id)
        total = 0.0
        n = instance.n_indexes
        for step in range(self.n_steps):
            available = {i for i in order if finish[i] <= step + 1e-9}
            if len(available) == n:
                break  # imaginary all-indexes plan zeroes the runtime
            total += instance.total_runtime(available)
        return total


class _Builder:
    """Accumulates sparse rows for the model matrices."""

    def __init__(self) -> None:
        self.var_names: List[str] = []
        self.lb: List[float] = []
        self.ub: List[float] = []
        self.integral: List[bool] = []
        self.objective: List[float] = []
        self.ub_rows: List[Dict[int, float]] = []
        self.ub_rhs: List[float] = []
        self.eq_rows: List[Dict[int, float]] = []
        self.eq_rhs: List[float] = []

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = 1.0,
        integral: bool = False,
        objective: float = 0.0,
    ) -> int:
        self.var_names.append(name)
        self.lb.append(lb)
        self.ub.append(ub)
        self.integral.append(integral)
        self.objective.append(objective)
        return len(self.var_names) - 1

    def add_le(self, coefficients: Dict[int, float], rhs: float) -> None:
        self.ub_rows.append(coefficients)
        self.ub_rhs.append(rhs)

    def add_eq(self, coefficients: Dict[int, float], rhs: float) -> None:
        self.eq_rows.append(coefficients)
        self.eq_rhs.append(rhs)

    def matrices(
        self,
    ) -> Tuple[sparse.csr_matrix, np.ndarray, sparse.csr_matrix, np.ndarray]:
        n_vars = len(self.var_names)

        def to_csr(rows: List[Dict[int, float]]) -> sparse.csr_matrix:
            data, row_idx, col_idx = [], [], []
            for row_number, row in enumerate(rows):
                for col, value in row.items():
                    row_idx.append(row_number)
                    col_idx.append(col)
                    data.append(value)
            return sparse.csr_matrix(
                (data, (row_idx, col_idx)), shape=(len(rows), n_vars)
            )

        return (
            to_csr(self.ub_rows),
            np.array(self.ub_rhs, dtype=float),
            to_csr(self.eq_rows),
            np.array(self.eq_rhs, dtype=float),
        )


def build_model(
    instance: ProblemInstance,
    steps_per_index: int = 4,
    constraints: Optional[ConstraintSet] = None,
    variable_limit: int = DEFAULT_VARIABLE_LIMIT,
) -> MIPModel:
    """Build the Appendix-B MIP for ``instance``.

    Args:
        instance: The ordering problem.
        steps_per_index: Discretization granularity; the paper used 20
            steps per index, which is faithful but explodes quickly.
        constraints: Optional Section-5 pre-analysis output; precedences
            are posted as ``B`` fixings (the "MIP+" rows of Table 5).
        variable_limit: Hard cap on variable count.

    Raises:
        ValidationError: When the model would exceed ``variable_limit``
            (reported by the caller as a DID_NOT_FINISH, matching the
            paper's CPlex out-of-memory outcomes).
    """
    n = instance.n_indexes
    n_steps = max(steps_per_index * n, 2)
    total_cost = instance.total_create_cost()
    step_unit = total_cost / n_steps

    # Predicted size check before any allocation.
    plan_count = instance.n_plans + 2 * instance.n_queries
    predicted = (
        n * (n - 1) // 2  # B
        + 2 * n  # A, C
        + n * n_steps  # Z
        + plan_count * n_steps  # Y
        + len(instance.build_interactions)  # CY
    )
    if predicted > variable_limit:
        raise ValidationError(
            f"MIP model would need ~{predicted} variables "
            f"(limit {variable_limit}): the time-indexed formulation "
            f"does not scale to this instance"
        )

    b = _Builder()
    big_m = float(n_steps)

    # --- B variables: one per unordered pair, B[i,j]=1 <=> i before j (i<j).
    b_index: Dict[Tuple[int, int], int] = {}
    for i in range(n):
        for j in range(i + 1, n):
            b_index[(i, j)] = b.add_var(f"B[{i},{j}]", 0, 1, integral=True)

    def b_coeff(i: int, j: int) -> Tuple[int, float, float]:
        """Return (var, coefficient, constant) so B_ij = coeff*x + const."""
        if i < j:
            return b_index[(i, j)], 1.0, 0.0
        return b_index[(j, i)], -1.0, 1.0

    # --- A and C variables (start step, build cost in steps).
    a_index: Dict[int, int] = {}
    c_index: Dict[int, int] = {}
    for i in range(n):
        base_cost = instance.indexes[i].create_cost / step_unit
        a_index[i] = b.add_var(f"A[{i}]", 0, n_steps, integral=False)
        c_index[i] = b.add_var(
            f"C[{i}]", 0, base_cost, integral=False
        )

    # --- CY build-interaction variables, (21)-(23).
    cy_index: Dict[Tuple[int, int], int] = {}
    for bi in instance.build_interactions:
        cy_index[(bi.target, bi.helper)] = b.add_var(
            f"CY[{bi.target},{bi.helper}]", 0, 1, integral=True
        )
    for i in range(n):
        base_cost = instance.indexes[i].create_cost / step_unit
        row = {c_index[i]: 1.0}
        for bi in instance.build_interactions:
            if bi.target == i:
                row[cy_index[(i, bi.helper)]] = bi.saving / step_unit
        b.add_eq(row, base_cost)  # (23)
        helpers = [
            cy_index[(bi.target, bi.helper)]
            for bi in instance.build_interactions
            if bi.target == i
        ]
        if helpers:
            b.add_le({var: 1.0 for var in helpers}, 1.0)  # (21)
    for bi in instance.build_interactions:
        var, coeff, const = b_coeff(bi.helper, bi.target)
        # CY[i,j] <= B[j,i]  (helper j must precede target i), (22).
        b.add_le(
            {cy_index[(bi.target, bi.helper)]: 1.0, var: -coeff}, const
        )

    # --- Transitivity cuts on B, (13)-(14).
    for i in range(n):
        for j in range(i + 1, n):
            for k in range(j + 1, n):
                for (x, y, z) in ((i, j, k), (i, k, j), (j, i, k)):
                    vx, cx, kx = b_coeff(x, y)
                    vy, cy_, ky = b_coeff(y, z)
                    vz, cz, kz = b_coeff(x, z)
                    # B[x,y] + B[y,z] - B[x,z] <= 1
                    row: Dict[int, float] = {}
                    for var, coeff in ((vx, cx), (vy, cy_), (vz, -cz)):
                        row[var] = row.get(var, 0.0) + coeff
                    b.add_le(row, 1.0 - kx - ky + kz)

    # --- Ordering vs. start times, (15): A_i + C_i - A_j <= (1-B_ij)*|D|.
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            var, coeff, const = b_coeff(i, j)
            b.add_le(
                {
                    a_index[i]: 1.0,
                    c_index[i]: 1.0,
                    a_index[j]: -1.0,
                    var: big_m * coeff,
                },
                big_m * (1.0 - const),
            )

    # --- Z availability variables, (20): i available at step d only if
    #     its build finished by d: A_i + C_i - d <= (1-Z_id)*|D|.
    z_index: Dict[Tuple[int, int], int] = {}
    for i in range(n):
        for d in range(n_steps):
            z_index[(i, d)] = b.add_var(f"Z[{i},{d}]", 0, 1, integral=True)
            b.add_le(
                {
                    a_index[i]: 1.0,
                    c_index[i]: 1.0,
                    z_index[(i, d)]: big_m,
                },
                big_m + float(d),
            )

    # --- Y plan-choice variables, (16)-(17), objective (12)/(19).
    full_set = frozenset(range(n))
    for query in instance.queries:
        weight = query.weight
        plan_options: List[Tuple[frozenset, float]] = [(frozenset(), 0.0)]
        for plan_id in instance.plans_of_query(query.query_id):
            plan = instance.plans[plan_id]
            plan_options.append((plan.indexes, plan.speedup))
        # Imaginary all-indexes plan zeroing the runtime after full
        # deployment, so trailing steps cost nothing.
        plan_options.append((full_set, query.base_runtime))
        for d in range(n_steps):
            row: Dict[int, float] = {}
            for option_id, (members, speedup) in enumerate(plan_options):
                cost = (query.base_runtime - speedup) * weight
                y = b.add_var(
                    f"Y[{query.query_id},{option_id},{d}]",
                    0,
                    1,
                    integral=True,
                    objective=cost,
                )
                row[y] = 1.0
                for member in members:
                    b.add_le({y: 1.0, z_index[(member, d)]: -1.0}, 0.0)  # (17)
            b.add_eq(row, 1.0)  # (16)

    # --- Pre-analysis constraints (the "+" of MIP+): fix B variables.
    if constraints is not None:
        for before, after in constraints.precedence_edges:
            var, coeff, const = b_coeff(before, after)
            # B[before, after] = 1  ->  coeff*x = 1 - const
            b.add_eq({var: coeff}, 1.0 - const)

    A_ub, b_ub, A_eq, b_eq = b.matrices()
    return MIPModel(
        instance=instance,
        n_steps=n_steps,
        step_unit=step_unit,
        c=np.array(b.objective, dtype=float),
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=list(zip(b.lb, b.ub)),
        integral=np.array(b.integral, dtype=bool),
        var_names=b.var_names,
        b_index=b_index,
        a_index=a_index,
    )
