"""Branch-and-bound MIP solver over scipy LP relaxations.

This stands in for the commercial MIP solver (CPlex 12.2) of the paper's
experiments.  It is a genuine best-first branch-and-bound:

* LP relaxations solved with ``scipy.optimize.linprog`` (HiGHS),
* branching on the most fractional binary variable,
* a primal heuristic that sorts the relaxation's ``A`` start times into
  a deployment order, evaluates it under the model's own discretized
  objective, and uses it as an incumbent,
* node/time budgets with the paper's "DF" (did-not-finish) outcome.

As in the paper, the weak linear relaxation of the min/max and product
structures makes the gap close extremely slowly; the Table-5 benchmark
reproduces exactly that behaviour.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.analysis.constraints import ConstraintSet
from repro.core.engine import EvalEngine
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.errors import ValidationError
from repro.solvers.base import Budget, Solver, repair_order
from repro.solvers.mip.model import MIPModel, build_model
from repro.solvers.registry import register

__all__ = ["MIPSolver"]

_INTEGRALITY_TOL = 1e-6


@register(
    "mip",
    summary="time-indexed MIP via scipy LP branch-and-bound (Appendix B)",
    exact=True,
)
class MIPSolver(Solver):
    """Time-indexed MIP solver (Appendix B formulation)."""

    name = "mip"

    def __init__(
        self,
        steps_per_index: int = 4,
        variable_limit: int = 200_000,
        mip_gap: float = 1e-6,
    ) -> None:
        self.steps_per_index = steps_per_index
        self.variable_limit = variable_limit
        self.mip_gap = mip_gap
        #: Engine counters of the most recent :meth:`solve` (dict form).
        self.last_engine_stats = None

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        try:
            model = build_model(
                instance,
                steps_per_index=self.steps_per_index,
                constraints=constraints,
                variable_limit=self.variable_limit,
            )
        except ValidationError as exc:
            return SolveResult(
                solver=self.name,
                status=SolveStatus.DID_NOT_FINISH,
                solution=None,
                runtime=time.perf_counter() - start,
                message=str(exc),
            )
        engine = self._engine(instance)
        search = _BranchAndBound(
            model, instance, budget, self.mip_gap, constraints, engine
        )
        search.run()
        elapsed = time.perf_counter() - start
        self.last_engine_stats = engine.stats.as_dict()
        if search.best_order is None:
            status = (
                SolveStatus.TIMEOUT
                if search.interrupted
                else SolveStatus.INFEASIBLE
            )
            return SolveResult(
                solver=self.name,
                status=status,
                solution=None,
                runtime=elapsed,
                nodes=search.nodes,
                message=search.message,
            )
        # Return the incumbent with the best *exact* objective — the
        # discretized-model winner can be a worse real order, and every
        # incumbent's exact objective was already engine-evaluated.
        final_order = (
            search.best_true_order
            if search.best_true_order is not None
            else search.best_order
        )
        true_objective = engine.evaluate(final_order)
        status = (
            SolveStatus.OPTIMAL
            if (search.closed and not search.interrupted) or search.proved_by_bound
            else SolveStatus.TIMEOUT
        )
        return SolveResult(
            solver=self.name,
            status=status,
            solution=Solution(tuple(final_order), true_objective),
            runtime=elapsed,
            nodes=search.nodes,
            trace=search.trace,
            message=search.message,
        )


class _BranchAndBound:
    """Best-first branch-and-bound over the LP relaxation tree."""

    def __init__(
        self,
        model: MIPModel,
        instance: ProblemInstance,
        budget: Optional[Budget],
        mip_gap: float,
        constraints: Optional[ConstraintSet] = None,
        engine: Optional[EvalEngine] = None,
    ) -> None:
        self.model = model
        self.instance = instance
        self.budget = budget
        self.mip_gap = mip_gap
        self.constraints = constraints
        self.engine = engine if engine is not None else EvalEngine(instance)
        self.nodes = 0
        self.best_order: Optional[List[int]] = None
        self.best_objective = float("inf")  # in discretized-model units
        self.best_true_objective = float("inf")  # exact evaluator units
        self.best_true_order: Optional[List[int]] = None
        self.interrupted = False
        self.closed = False
        #: True when the incumbent's exact objective met the engine's
        #: admissible root bound — optimal regardless of the LP gap.
        self.proved_by_bound = False
        self.message = ""
        self.trace: List[Tuple[float, float]] = []
        self._seen_orders: set = set()
        self._start = time.perf_counter()

    def run(self) -> None:
        root = self._solve_lp({})
        if root is None:
            self.closed = True
            self.message = "root LP infeasible"
            return
        # Admissible bound on the *exact* objective from the empty
        # state; an incumbent that meets it is optimal no matter how
        # slowly the LP gap closes.
        self._root_bound = self.engine.suffix_bound(
            self.instance.total_base_runtime, 0
        )
        heap: List[Tuple[float, int, Dict[int, float]]] = []
        counter = 0
        heapq.heappush(heap, (root[0], counter, {}))
        while heap:
            if self.proved_by_bound:
                self.message = "incumbent met the engine's root bound"
                return
            if self._out_of_budget():
                self.interrupted = True
                self.message = "budget exhausted (DF)"
                return
            bound, _, fixings = heapq.heappop(heap)
            if bound >= self.best_objective * (1.0 - self.mip_gap):
                continue
            lp = self._solve_lp(fixings)
            if lp is None:
                continue
            objective, x = lp
            if objective >= self.best_objective * (1.0 - self.mip_gap):
                continue
            self._primal_heuristic(x)
            branch_var = self._most_fractional(x)
            if branch_var is None:
                # Integral solution: candidate incumbent in model units.
                order = self.model.order_from_solution(x)
                self._try_incumbent(order)
                continue
            for value in (0.0, 1.0):
                child = dict(fixings)
                child[branch_var] = value
                counter += 1
                heapq.heappush(heap, (objective, counter, child))
        self.closed = True

    # ------------------------------------------------------------------
    def _out_of_budget(self) -> bool:
        return self.budget is not None and self.budget.exhausted

    def _solve_lp(
        self, fixings: Dict[int, float]
    ) -> Optional[Tuple[float, np.ndarray]]:
        self.nodes += 1
        if self.budget is not None:
            self.budget.tick()
        bounds = list(self.model.bounds)
        for var, value in fixings.items():
            bounds[var] = (value, value)
        result = optimize.linprog(
            self.model.c,
            A_ub=self.model.A_ub,
            b_ub=self.model.b_ub,
            A_eq=self.model.A_eq,
            b_eq=self.model.b_eq,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None
        return float(result.fun), result.x

    def _most_fractional(self, x: np.ndarray) -> Optional[int]:
        best_var = None
        best_gap = _INTEGRALITY_TOL
        for var in np.nonzero(self.model.integral)[0]:
            value = x[var]
            gap = min(value - np.floor(value), np.ceil(value) - value)
            if gap > best_gap:
                best_gap = gap
                best_var = int(var)
        return best_var

    def _primal_heuristic(self, x: np.ndarray) -> None:
        order = self.model.order_from_solution(x)
        self._try_incumbent(order)

    def _try_incumbent(self, order: List[int]) -> None:
        if self.proved_by_bound:
            return  # the proven-optimal incumbent must not be replaced
        if self.constraints is not None and not self.constraints.check_order(
            order
        ):
            order = repair_order(order, self.constraints)
        key = tuple(order)
        if key in self._seen_orders:
            return  # the LP heuristic repeats orders; skip re-evaluation
        self._seen_orders.add(key)
        objective = self.model.discretized_objective(order)
        if objective < self.best_objective - 1e-12:
            self.best_objective = objective
            self.best_order = order
            self.trace.append(
                (time.perf_counter() - self._start, objective)
            )
        true_objective = self.engine.evaluate(order)
        if true_objective < self.best_true_objective - 1e-12:
            self.best_true_objective = true_objective
            self.best_true_order = order
            if true_objective <= self._root_bound + 1e-9:
                self.best_order = order
                self.proved_by_bound = True
