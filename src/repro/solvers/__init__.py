"""Solvers for the index deployment ordering problem.

* Heuristics: :class:`GreedySolver` (Algorithm 1), :class:`DPSolver`
  (Schnaitter-style min-cut DP), :class:`RandomSolver`.
* Exact: :class:`ExhaustiveSolver`, :class:`SubsetDPSolver`,
  :class:`AStarSolver`, :class:`CPSolver` (Section 6),
  :class:`MIPSolver` (Appendix B).
* Local search: :class:`TabuSolver` (BSwap/FSwap), :class:`LNSSolver`,
  :class:`VNSSolver` (Section 7).

Every solver registers itself with :mod:`repro.solvers.registry`; the
CLI, experiment harness, and examples resolve solvers by name through
:func:`repro.solvers.registry.create`.
"""

from repro.solvers.astar import AStarSolver, SubsetDPSolver
from repro.solvers.base import Budget, Solver, glue_consecutive, repair_order
from repro.solvers.cp import CPModel, CPSearch, CPSolver
from repro.solvers.dp import DPSolver, dp_order, interaction_weights
from repro.solvers.exhaustive import ExhaustiveSolver
from repro.solvers.greedy import GreedySolver, greedy_order
from repro.solvers.localsearch import LNSSolver, TabuSolver, VNSSolver
from repro.solvers.mip import MIPSolver
from repro.solvers.random_search import RandomSolver, random_statistics
from repro.solvers.registry import (
    SolverSpec,
    available_solvers,
    create,
    get_spec,
    register,
    register_factory,
    solver_specs,
)

__all__ = [
    "SolverSpec",
    "available_solvers",
    "create",
    "get_spec",
    "register",
    "register_factory",
    "solver_specs",
    "Budget",
    "Solver",
    "glue_consecutive",
    "repair_order",
    "GreedySolver",
    "greedy_order",
    "DPSolver",
    "dp_order",
    "interaction_weights",
    "RandomSolver",
    "random_statistics",
    "ExhaustiveSolver",
    "SubsetDPSolver",
    "AStarSolver",
    "CPSolver",
    "CPModel",
    "CPSearch",
    "MIPSolver",
    "TabuSolver",
    "LNSSolver",
    "VNSSolver",
]
