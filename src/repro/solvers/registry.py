"""Central solver registry: one name -> factory lookup for the stack.

Every solver module registers its public entry points with
:func:`register` (classes) or :func:`register_factory` (configured
variants such as the two tabu flavours).  The CLI, the experiment
harness, and the examples all resolve solvers through this registry, so
adding a solver is a one-file change: drop a module into
``repro/solvers/`` that calls ``register`` — discovery imports every
submodule of the package, no ``__init__`` edit required.

Each entry carries capability flags (:class:`SolverSpec`) so generic
drivers can decide, without hard-coded name lists, whether a solver
proves optimality (``exact``), improves over time (``anytime``), is
seed-sensitive (``stochastic``), honours pre-analysis constraints
(``supports_constraints``), or accepts a warm start
(``accepts_initial_order``).
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

from repro.errors import SolverError
from repro.solvers.base import Solver

__all__ = [
    "SolverSpec",
    "register",
    "register_factory",
    "available_solvers",
    "solver_specs",
    "get_spec",
    "create",
]


@dataclass(frozen=True)
class SolverSpec:
    """One registered solver.

    Attributes:
        name: Registry key (the CLI ``--solver`` value).
        factory: Zero-or-keyword-argument callable returning a solver.
        summary: One-line description for listings.
        supports_constraints: Honours Section-5 constraint sets.
        anytime: Produces an improving trace under a budget.
        exact: Proves optimality given enough budget.
        stochastic: Results depend on a ``seed`` keyword.
        accepts_initial_order: Accepts an ``initial_order`` keyword.
        composite: Drives *other* registered solvers (e.g. the
            portfolio); composite entries are excluded when a driver
            enumerates candidate members, so composition cannot recurse.
    """

    name: str
    factory: Callable[..., Solver]
    summary: str = ""
    supports_constraints: bool = True
    anytime: bool = False
    exact: bool = False
    stochastic: bool = False
    accepts_initial_order: bool = False
    composite: bool = False

    def create(self, **kwargs) -> Solver:
        """Instantiate the solver, forwarding configuration kwargs."""
        return self.factory(**kwargs)


_REGISTRY: Dict[str, SolverSpec] = {}
_DISCOVERED = False


def register_factory(
    name: str,
    factory: Callable[..., Solver],
    *,
    replace: bool = False,
    **flags,
) -> SolverSpec:
    """Register ``factory`` under ``name``; returns the spec.

    Raises:
        SolverError: When ``name`` is already registered and ``replace``
            is not set.  Silent overwrites used to mask solver-name
            collisions, which matters now that portfolio variants
            register programmatically; tests that intentionally shadow
            an entry pass ``replace=True``.
    """
    if not replace and name in _REGISTRY:
        raise SolverError(
            f"solver {name!r} is already registered "
            f"(by {_REGISTRY[name].factory!r}); pass replace=True to "
            "override intentionally"
        )
    spec = SolverSpec(name=name, factory=factory, **flags)
    _REGISTRY[name] = spec
    return spec


def register(name: str, **flags) -> Callable:
    """Class decorator form of :func:`register_factory`."""

    def decorate(cls):
        register_factory(name, cls, **flags)
        return cls

    return decorate


def _discover() -> None:
    """Import every ``repro.solvers`` submodule so registrations run."""
    global _DISCOVERED
    if _DISCOVERED:
        return
    package = importlib.import_module("repro.solvers")
    for module in pkgutil.walk_packages(
        package.__path__, prefix="repro.solvers."
    ):
        leaf = module.name.rsplit(".", 1)[-1]
        if leaf.startswith("_"):
            continue
        importlib.import_module(module.name)
    # Marked complete only after every import succeeded, so a module
    # that fails to import surfaces on every lookup instead of leaving
    # a silently partial registry behind.
    _DISCOVERED = True


def available_solvers() -> Tuple[str, ...]:
    """Sorted names of every registered solver."""
    _discover()
    return tuple(sorted(_REGISTRY))


def solver_specs() -> Mapping[str, SolverSpec]:
    """Read-only view of the full registry."""
    _discover()
    return dict(_REGISTRY)


def get_spec(name: str) -> SolverSpec:
    """Spec for ``name``; raises :class:`SolverError` when unknown."""
    _discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; available: "
            + ", ".join(sorted(_REGISTRY))
        ) from None


def create(name: str, **kwargs) -> Solver:
    """Instantiate the solver registered under ``name``."""
    return get_spec(name).create(**kwargs)
