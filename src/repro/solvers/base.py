"""Common solver infrastructure.

Every solver implements :class:`Solver.solve` and returns a
:class:`~repro.core.solution.SolveResult`.  :class:`Budget` provides the
shared time/node accounting, so experiments can hand the same budget
semantics to CP, MIP, and local search.
"""

from __future__ import annotations

import abc
import time
from typing import Optional, Sequence

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import SolveResult

__all__ = ["Budget", "Solver", "SuffixBound", "glue_consecutive", "repair_order"]


class Budget:
    """A wall-clock and node budget for one solver run.

    Args:
        time_limit: Seconds of wall-clock time, or ``None`` for no limit.
        node_limit: Maximum search nodes/iterations, or ``None``.
    """

    def __init__(
        self,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> None:
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.nodes = 0
        self._start = time.perf_counter()

    def restart(self) -> None:
        """Reset the clock and node counter."""
        self.nodes = 0
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since the budget started."""
        return time.perf_counter() - self._start

    def tick(self, nodes: int = 1) -> None:
        """Account for ``nodes`` units of work."""
        self.nodes += nodes

    @property
    def exhausted(self) -> bool:
        """True once either limit is hit."""
        if self.node_limit is not None and self.nodes >= self.node_limit:
            return True
        if self.time_limit is not None and self.elapsed >= self.time_limit:
            return True
        return False


class Solver(abc.ABC):
    """Base class for deployment-order solvers."""

    #: Short name used in result records and experiment tables.
    name: str = "solver"

    @abc.abstractmethod
    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        """Solve ``instance``, optionally under pre-analysis constraints.

        Implementations must respect the ``budget`` if given, must return
        feasible orders under ``constraints`` (including consecutive
        pairs), and should fill the result's anytime ``trace``.
        """

    def _evaluator(self, instance: ProblemInstance) -> ObjectiveEvaluator:
        return ObjectiveEvaluator(instance)


class SuffixBound:
    """Admissible lower bound on the objective of any deployment suffix.

    Relaxation: every remaining index ``i`` costs its minimum possible
    build cost ``minC(i)`` and drops the runtime by its maximum possible
    marginal speed-up ``S_max(i)`` (the sum over queries of the best
    plan speed-up involving ``i``).  With fixed per-item costs and drops
    the staircase area is linear in the drop prefix sums, so the
    density-descending order (``S_max / minC``) minimizes it — a classic
    exchange argument — and that minimum lower-bounds the true suffix
    area for every feasible order.  The simple bound
    ``R_final * sum minC`` is taken as a floor (max of two admissible
    bounds is admissible).
    """

    def __init__(self, instance: ProblemInstance) -> None:
        self.instance = instance
        n = instance.n_indexes
        self.min_cost = [instance.min_build_cost(i) for i in range(n)]
        self.final_runtime = instance.total_runtime(range(n))
        s_max = [0.0] * n
        for query in instance.queries:
            best_with: dict = {}
            for plan_id in instance.plans_of_query(query.query_id):
                plan = instance.plans[plan_id]
                value = plan.speedup * query.weight
                for member in plan.indexes:
                    if value > best_with.get(member, 0.0):
                        best_with[member] = value
            for member, value in best_with.items():
                s_max[member] += value
        self.s_max = s_max
        self.density_order = sorted(
            range(n),
            key=lambda i: -(s_max[i] / max(self.min_cost[i], 1e-12)),
        )

    def bound(self, runtime_now: float, built) -> float:
        """Lower bound given current runtime and the built set."""
        relaxed = 0.0
        runtime = runtime_now
        simple = 0.0
        for index_id in self.density_order:
            if index_id in built:
                continue
            cost = self.min_cost[index_id]
            relaxed += runtime * cost
            simple += self.final_runtime * cost
            runtime -= self.s_max[index_id]
        return max(relaxed, simple)


def repair_order(
    order: Sequence[int], constraints: Optional[ConstraintSet]
) -> list:
    """Minimally reorder ``order`` into constraint feasibility.

    Moves any index placed before one of its known predecessors to just
    after that predecessor, repeating until no violation remains (the
    precedence relation is acyclic, so this terminates), then glues
    consecutive pairs.  The relative order of unconstrained indexes is
    preserved.
    """
    result = list(order)
    if constraints is None:
        return result
    position = {index_id: pos for pos, index_id in enumerate(result)}
    changed = True
    while changed:
        changed = False
        for b in range(constraints.n):
            for a in constraints.predecessors(b):
                if position[a] > position[b]:
                    result.remove(b)
                    result.insert(result.index(a) + 1, b)
                    position = {ix: pos for pos, ix in enumerate(result)}
                    changed = True
    return glue_consecutive(result, constraints)


def glue_consecutive(
    order: Sequence[int], constraints: Optional[ConstraintSet]
) -> list:
    """Repair an order so alliance pairs become adjacent.

    Scans the consecutive pairs and moves each ``second`` directly after
    its ``first`` while preserving the relative order of everything else.
    Used to make heuristic starting points feasible for constraint-aware
    search.
    """
    result = list(order)
    if constraints is None:
        return result
    for first, second in constraints.consecutive_pairs:
        if first not in result or second not in result:
            continue
        result.remove(second)
        result.insert(result.index(first) + 1, second)
    return result
