"""Common solver infrastructure.

Every solver implements :class:`Solver.solve` and returns a
:class:`~repro.core.solution.SolveResult`.  :class:`Budget` provides the
shared time/node accounting, so experiments can hand the same budget
semantics to CP, MIP, and local search.
"""

from __future__ import annotations

import abc
import time
from typing import Optional, Sequence

from repro.analysis.constraints import ConstraintSet
from repro.core.engine import EvalEngine
from repro.core.instance import ProblemInstance
from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import SolveResult

__all__ = ["Budget", "Solver", "glue_consecutive", "repair_order"]


class Budget:
    """A wall-clock and node budget for one solver run.

    Args:
        time_limit: Seconds of wall-clock time, or ``None`` for no limit.
        node_limit: Maximum search nodes/iterations, or ``None``.
    """

    def __init__(
        self,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> None:
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.nodes = 0
        self._start = time.perf_counter()

    def restart(self) -> None:
        """Reset the clock and node counter."""
        self.nodes = 0
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since the budget started."""
        return time.perf_counter() - self._start

    def tick(self, nodes: int = 1) -> None:
        """Account for ``nodes`` units of work."""
        self.nodes += nodes

    @property
    def exhausted(self) -> bool:
        """True once either limit is hit."""
        if self.node_limit is not None and self.nodes >= self.node_limit:
            return True
        if self.time_limit is not None and self.elapsed >= self.time_limit:
            return True
        return False


class Solver(abc.ABC):
    """Base class for deployment-order solvers."""

    #: Short name used in result records and experiment tables.
    name: str = "solver"

    #: Optional externally-supplied shared evaluation backend.  A driver
    #: that races several solvers on one instance (the portfolio) sets
    #: this so the built-set runtime memo and prefix-cursor state
    #: compound across members instead of every solver paying for a cold
    #: engine.  Ignored (a fresh engine is built) when the engine was
    #: constructed for a different instance.
    engine: Optional[EvalEngine] = None

    @abc.abstractmethod
    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        """Solve ``instance``, optionally under pre-analysis constraints.

        Implementations must respect the ``budget`` if given, must return
        feasible orders under ``constraints`` (including consecutive
        pairs), and should fill the result's anytime ``trace``.
        """

    def _evaluator(self, instance: ProblemInstance) -> ObjectiveEvaluator:
        return ObjectiveEvaluator(instance)

    def _engine(self, instance: ProblemInstance) -> EvalEngine:
        """Evaluation backend for one solve.

        Returns the externally-shared :attr:`engine` when one was
        injected for this exact instance, else a fresh engine.
        """
        if self.engine is not None and self.engine.instance is instance:
            return self.engine
        return EvalEngine(instance)


def repair_order(
    order: Sequence[int], constraints: Optional[ConstraintSet]
) -> list:
    """Minimally reorder ``order`` into constraint feasibility.

    Moves any index placed before one of its known predecessors to just
    after that predecessor, repeating until no violation remains (the
    precedence relation is acyclic, so this terminates), then glues
    consecutive pairs.  The relative order of unconstrained indexes is
    preserved.  Positions are maintained incrementally — each move only
    renumbers the rotated span, so one pass costs O(n) amortized
    instead of rebuilding the full position map per move.
    """
    result = list(order)
    if constraints is None:
        return result
    position = {index_id: pos for pos, index_id in enumerate(result)}
    changed = True
    while changed:
        changed = False
        for b in range(constraints.n):
            for a in constraints.predecessors(b):
                pos_a = position[a]
                pos_b = position[b]
                if pos_a > pos_b:
                    # Rotate b from pos_b to just after a; only the span
                    # [pos_b, pos_a] shifts, so renumber just that span.
                    result.pop(pos_b)
                    result.insert(pos_a, b)
                    for pos in range(pos_b, pos_a + 1):
                        position[result[pos]] = pos
                    changed = True
    return glue_consecutive(result, constraints)


def glue_consecutive(
    order: Sequence[int], constraints: Optional[ConstraintSet]
) -> list:
    """Repair an order so alliance pairs become adjacent.

    Scans the consecutive pairs and moves each ``second`` directly after
    its ``first`` while preserving the relative order of everything else.
    Used to make heuristic starting points feasible for constraint-aware
    search.
    """
    result = list(order)
    if constraints is None:
        return result
    for first, second in constraints.consecutive_pairs:
        if first not in result or second not in result:
            continue
        result.remove(second)
        result.insert(result.index(first) + 1, second)
    return result
