"""Interaction-guided greedy initial solution (Section 7.4, Algorithm 1).

At each step the algorithm picks the unbuilt index with the highest
*density*: realized query speed-up plus a share of the still-locked plan
speed-ups it participates in, divided by its current build cost.  The
interaction share is what distinguishes it from a naive benefit-greedy:
an index that unlocks nothing *yet* but is needed by a large multi-index
plan still gets credit proportional to the plan's speed-up divided by
the number of missing indexes.
"""

from __future__ import annotations

import time
from typing import List, Optional, Set

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.solvers.base import Budget, Solver
from repro.solvers.registry import register

__all__ = ["GreedySolver", "greedy_order"]


def greedy_order(
    instance: ProblemInstance,
    constraints: Optional[ConstraintSet] = None,
) -> List[int]:
    """Run Algorithm 1 and return the resulting order.

    When ``constraints`` are given, only indexes whose known predecessors
    are already built are eligible at each step, which keeps the output
    feasible; consecutive (alliance) pairs are respected because the
    second member's only predecessor chain passes through the first.
    """
    n = instance.n_indexes
    built: Set[int] = set()
    order: List[int] = []
    remaining = set(range(n))
    forced_next: Optional[int] = None
    consecutive_after = {}
    if constraints is not None:
        for first, second in constraints.consecutive_pairs:
            consecutive_after[first] = second
    while remaining:
        if forced_next is not None and forced_next in remaining:
            choice = forced_next
        else:
            eligible = [
                i
                for i in remaining
                if constraints is None
                or constraints.predecessors(i) <= built
            ]
            if not eligible:
                # Constraints temporarily unsatisfiable from this state
                # (should not happen with a consistent set); fall back.
                eligible = sorted(remaining)
            choice = _best_by_density(instance, eligible, built)
        order.append(choice)
        built.add(choice)
        remaining.discard(choice)
        forced_next = consecutive_after.get(choice)
    return order


def _best_by_density(
    instance: ProblemInstance, eligible: List[int], built: Set[int]
) -> int:
    runtime_now = instance.total_runtime(built)
    best_index = eligible[0]
    best_density = float("-inf")
    for candidate in sorted(eligible):
        with_candidate = built | {candidate}
        runtime_next = instance.total_runtime(with_candidate)
        benefit = runtime_now - runtime_next
        # Future-opportunity credit: plans containing the candidate that
        # are still locked contribute their *additional* speed-up split
        # across the missing indexes (Algorithm 1's interaction term).
        for plan_id in instance.plans_containing(candidate):
            plan = instance.plans[plan_id]
            missing = plan.indexes - with_candidate
            if not missing:
                continue
            query = instance.queries[plan.query_id]
            current_speedup = instance.query_speedup(
                plan.query_id, with_candidate
            )
            interaction = (plan.speedup - current_speedup) * query.weight
            if interaction > 0:
                benefit += interaction / len(missing)
        cost = instance.build_cost(candidate, built)
        density = benefit / cost if cost > 0 else float("inf")
        if density > best_density:
            best_density = density
            best_index = candidate
    return best_index


@register(
    "greedy",
    summary="interaction-guided greedy (Algorithm 1)",
)
class GreedySolver(Solver):
    """Solver wrapper around :func:`greedy_order`."""

    name = "greedy"

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        order = greedy_order(instance, constraints)
        solution = Solution.from_order(instance, order)
        elapsed = time.perf_counter() - start
        return SolveResult(
            solver=self.name,
            status=SolveStatus.FEASIBLE,
            solution=solution,
            runtime=elapsed,
            nodes=instance.n_indexes,
            trace=[(elapsed, solution.objective)],
        )
