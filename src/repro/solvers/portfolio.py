"""Portfolio solving: race every anytime solver on one instance.

The paper's Figure 11/12 message is that no single method dominates:
tabu wins short budgets on TPC-H, VNS wins long budgets, CP closes the
small instances.  A portfolio turns that spread into a feature — race
the anytime solvers on the *same* instance and keep the best incumbent
— so the driver never has to hand-pick a method per instance.

Design (single-process, cooperative):

* **Capability-flag membership.**  Members default to every registry
  entry with ``anytime=True`` (and ``composite=False``, so a portfolio
  never enrolls itself).  Any new anytime solver joins automatically —
  there is no hard-coded member list.
* **Shared incumbent channel.**  The race is time-sliced round-robin:
  each member repeatedly gets a slice of the budget, and every member
  whose spec says ``accepts_initial_order`` is warm-started from the
  current best incumbent, so improvements found by one solver seed the
  neighborhoods of the next.
* **One engine memo per cell.**  All members share a single
  :class:`~repro.core.engine.EvalEngine` (injected through
  ``Solver.engine`` — the same plumbing ``_Lattice(engine=...)`` and
  ``CPModel.engine`` use), so built-set runtime memo entries and
  prefix-cursor state paid for by one member are cache hits for the
  rest.
* **Early optimality exit.**  If an exact member (CP) proves its result
  optimal within a slice, the race stops and the portfolio reports
  ``OPTIMAL``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.errors import SolverError
from repro.solvers.base import Budget, Solver, repair_order
from repro.solvers.greedy import greedy_order
from repro.solvers.registry import get_spec, register_factory, solver_specs

__all__ = ["PortfolioSolver", "anytime_members"]


def anytime_members() -> Tuple[str, ...]:
    """Registry names eligible to join a portfolio.

    Capability-flag driven: every ``anytime`` solver joins; ``composite``
    entries (other portfolios) are excluded so composition cannot
    recurse.  No names are hard-coded.
    """
    return tuple(
        sorted(
            name
            for name, spec in solver_specs().items()
            if spec.anytime and not spec.composite
        )
    )


class PortfolioSolver(Solver):
    """Race anytime solvers with a shared incumbent and engine memo.

    Args:
        members: Registry names to race; defaults to
            :func:`anytime_members` resolved at solve time.
        rounds: Target number of full round-robin passes the time budget
            is divided into (more rounds = finer-grained incumbent
            sharing, more solver-restart overhead).
        min_slice: Smallest per-member time slice in seconds.
        seed: Base seed; stochastic members get distinct per-slice seeds
            derived from it.
        initial_order: Optional warm-start order for the shared
            incumbent (repaired into feasibility when constraints are
            given).
        member_kwargs: Optional per-member construction overrides,
            ``{"vns": {"group_size": 10}, ...}``.
    """

    name = "portfolio"

    def __init__(
        self,
        members: Optional[Sequence[str]] = None,
        rounds: int = 3,
        min_slice: float = 0.05,
        seed: int = 0,
        initial_order: Optional[List[int]] = None,
        member_kwargs: Optional[Dict[str, Dict]] = None,
    ) -> None:
        self.members = tuple(members) if members is not None else None
        self.rounds = max(1, rounds)
        self.min_slice = min_slice
        self.seed = seed
        self.initial_order = initial_order
        self.member_kwargs = dict(member_kwargs or {})
        #: Engine counters of the most recent :meth:`solve` (dict form).
        self.last_engine_stats: Optional[Dict[str, int]] = None
        #: Per-member contribution log of the most recent solve:
        #: ``[(member, round, objective_after_slice), ...]``.
        self.last_race_log: List[Tuple[str, int, float]] = []

    def _member_specs(self):
        names = self.members if self.members is not None else anytime_members()
        specs = []
        for member in names:
            spec = get_spec(member)
            if spec.composite:
                raise SolverError(
                    f"portfolio member {member!r} is itself a composite "
                    "solver; portfolios do not nest"
                )
            if not spec.anytime:
                raise SolverError(
                    f"portfolio member {member!r} is not an anytime solver "
                    "(spec.anytime is False); only anytime solvers can race"
                )
            specs.append(spec)
        if not specs:
            raise SolverError("portfolio has no members to race")
        return specs

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        if budget is None:
            budget = Budget(time_limit=5.0)
        specs = self._member_specs()
        engine = self._engine(instance)
        incumbent = (
            list(self.initial_order)
            if self.initial_order is not None
            else greedy_order(instance, constraints)
        )
        if constraints is not None and not constraints.check_order(incumbent):
            incumbent = repair_order(incumbent, constraints)
        best_objective = engine.evaluate(incumbent)
        trace: List[Tuple[float, float]] = [
            (time.perf_counter() - start, best_objective)
        ]
        self.last_race_log = []
        time_limit = budget.time_limit
        slice_length = self.min_slice
        if time_limit is not None:
            slice_length = max(
                self.min_slice, time_limit / (self.rounds * len(specs))
            )
        proved = False
        nodes = 0
        round_id = 0
        while not budget.exhausted and not proved:
            round_id += 1
            for position, spec in enumerate(specs):
                if budget.exhausted:
                    break
                member_slice = slice_length
                if time_limit is not None:
                    member_slice = min(
                        member_slice, max(0.0, time_limit - budget.elapsed)
                    )
                    if member_slice <= 0.0:
                        break
                member = self._make_member(spec, position, round_id, incumbent)
                member.engine = engine
                result = member.solve(
                    instance, constraints, Budget(time_limit=member_slice)
                )
                nodes += result.nodes
                if (
                    result.solution is not None
                    and result.objective < best_objective - 1e-12
                ):
                    best_objective = result.objective
                    incumbent = list(result.solution.order)
                    trace.append((time.perf_counter() - start, best_objective))
                self.last_race_log.append(
                    (spec.name, round_id, best_objective)
                )
                if (
                    result.status is SolveStatus.OPTIMAL
                    and result.solution is not None
                    and result.objective <= best_objective + 1e-12
                ):
                    # An exact member closed the instance; the race is over.
                    proved = True
                    break
            if time_limit is None and round_id >= self.rounds:
                break
        elapsed = time.perf_counter() - start
        self.last_engine_stats = engine.stats.as_dict()
        return SolveResult(
            solver=self.name,
            status=SolveStatus.OPTIMAL if proved else SolveStatus.FEASIBLE,
            solution=Solution(tuple(incumbent), best_objective),
            runtime=elapsed,
            nodes=nodes,
            trace=trace,
        )

    def _make_member(self, spec, position: int, round_id: int, incumbent):
        kwargs = dict(self.member_kwargs.get(spec.name, {}))
        if spec.stochastic:
            # Distinct, deterministic seed per (member, round) so repeat
            # slices explore different neighborhoods.
            kwargs.setdefault(
                "seed", self.seed * 10_007 + round_id * 101 + position
            )
        if spec.accepts_initial_order:
            kwargs.setdefault("initial_order", list(incumbent))
        return spec.create(**kwargs)


register_factory(
    "portfolio",
    PortfolioSolver,
    summary="race all anytime solvers, shared incumbent + engine memo",
    anytime=True,
    stochastic=True,
    accepts_initial_order=True,
    composite=True,
)
register_factory(
    "portfolio-ls",
    lambda **kwargs: PortfolioSolver(
        members=("ts-bswap", "ts-fswap", "vns"), **kwargs
    ),
    summary="local-search-only portfolio (tabu flavours + VNS)",
    anytime=True,
    stochastic=True,
    accepts_initial_order=True,
    composite=True,
)
