"""Exact search over the subset lattice: dynamic programming and A*.

Both the query runtime ``R`` and every build cost depend only on the
*set* of already-built indexes, never on their internal order.  The
problem therefore has optimal substructure over subsets: the cheapest
way to have built a set ``M`` is independent of what comes after.  This
yields

* :class:`SubsetDPSolver` — Held–Karp-style DP over all ``2^n`` subsets
  (exact ground truth for small ``n``; used by the test suite to verify
  every other solver), and
* :class:`AStarSolver` — best-first search over the same lattice with an
  admissible heuristic (each remaining index costs at least its minimum
  build cost, multiplied by the all-built runtime), the approach Bruno &
  Chaudhuri suggested but did not implement.

Consecutive (alliance) pairs are honored by collapsing each glued chain
into an atomic *unit* that is deployed in one expansion.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.engine import EvalEngine
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.errors import ValidationError
from repro.solvers.base import Budget, Solver
from repro.solvers.registry import register

__all__ = ["SubsetDPSolver", "AStarSolver"]

_DEFAULT_MAX_INDEXES = 18


def _deployment_units(
    n: int, constraints: Optional[ConstraintSet]
) -> List[Tuple[int, ...]]:
    """Collapse consecutive chains into atomic deployment units."""
    if constraints is None:
        return [(i,) for i in range(n)]
    next_of: Dict[int, int] = {}
    has_prev = set()
    for first, second in constraints.consecutive_pairs:
        next_of[first] = second
        has_prev.add(second)
    units: List[Tuple[int, ...]] = []
    seen = set()
    for start in range(n):
        if start in has_prev or start in seen:
            continue
        chain = [start]
        seen.add(start)
        while chain[-1] in next_of:
            nxt = next_of[chain[-1]]
            chain.append(nxt)
            seen.add(nxt)
        units.append(tuple(chain))
    return units


class _Lattice:
    """Shared machinery for subset-lattice search.

    Runtime states and the admissible remaining-area bound come from the
    shared :class:`EvalEngine`, so the built-set memo survives across
    searches that reuse one engine.
    """

    def __init__(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet],
        engine: Optional[EvalEngine] = None,
    ) -> None:
        self.instance = instance
        self.constraints = constraints
        self.engine = engine if engine is not None else EvalEngine(instance)
        self.n = instance.n_indexes
        self.units = _deployment_units(self.n, constraints)
        self.unit_masks = [
            sum(1 << member for member in unit) for unit in self.units
        ]
        self.pred_masks = [0] * len(self.units)
        if constraints is not None:
            for unit_id, unit in enumerate(self.units):
                mask = 0
                unit_set = set(unit)
                for member in unit:
                    for pred in constraints.predecessors(member):
                        if pred not in unit_set:
                            mask |= 1 << pred
                self.pred_masks[unit_id] = mask
        self.full_mask = (1 << self.n) - 1

    def runtime(self, mask: int) -> float:
        """Weighted total query runtime for a built-set bitmask."""
        return self.engine.runtime_of(mask)

    def unit_cost(self, unit_id: int, mask: int) -> Tuple[float, float]:
        """Objective and elapsed-cost contribution of deploying a unit.

        Deploys the unit's members in chain order starting from built-set
        ``mask``; returns ``(objective_delta, total_build_cost)``.
        """
        objective = 0.0
        total_cost = 0.0
        current_mask = mask
        for member in self.units[unit_id]:
            runtime = self.engine.runtime_of(current_mask)
            cost = self.engine.build_cost_in(member, current_mask)
            objective += runtime * cost
            total_cost += cost
            current_mask |= 1 << member
        return objective, total_cost

    def heuristic(self, mask: int) -> float:
        """Admissible lower bound on the remaining objective."""
        return self.engine.suffix_bound(self.engine.runtime_of(mask), mask)

    def expandable(self, unit_id: int, mask: int) -> bool:
        if mask & self.unit_masks[unit_id]:
            return False
        return (mask & self.pred_masks[unit_id]) == self.pred_masks[unit_id]


def _reconstruct(
    lattice: _Lattice, parents: Dict[int, Tuple[int, int]]
) -> List[int]:
    order_units: List[int] = []
    mask = lattice.full_mask
    while mask:
        prev_mask, unit_id = parents[mask]
        order_units.append(unit_id)
        mask = prev_mask
    order: List[int] = []
    for unit_id in reversed(order_units):
        order.extend(lattice.units[unit_id])
    return order


@register(
    "subset-dp",
    summary="Held-Karp DP over the built-set lattice (exact, small n)",
    exact=True,
)
class SubsetDPSolver(Solver):
    """Exact DP over all subsets of indexes.

    Intended for ground-truth verification; refuses instances larger
    than ``max_indexes`` (default 18) because the lattice has ``2^n``
    states.
    """

    name = "subset-dp"

    def __init__(self, max_indexes: int = _DEFAULT_MAX_INDEXES) -> None:
        self.max_indexes = max_indexes

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        if instance.n_indexes > self.max_indexes:
            raise ValidationError(
                f"subset DP limited to {self.max_indexes} indexes, "
                f"instance has {instance.n_indexes}"
            )
        start = time.perf_counter()
        lattice = _Lattice(instance, constraints)
        best: Dict[int, float] = {0: 0.0}
        parents: Dict[int, Tuple[int, int]] = {}
        # Process masks in strictly increasing population count: every
        # expansion adds at least one index, so when a popcount layer is
        # expanded all its states already carry their final values.
        layers: Dict[int, set] = {0: {0}}
        nodes = 0
        order_of_units = range(len(lattice.units))
        for popcount in range(instance.n_indexes):
            masks = layers.pop(popcount, None)
            if not masks:
                continue
            for mask in sorted(masks):
                base = best[mask]
                for unit_id in order_of_units:
                    if not lattice.expandable(unit_id, mask):
                        continue
                    nodes += 1
                    if budget is not None:
                        budget.tick()
                        if budget.exhausted:
                            return SolveResult(
                                solver=self.name,
                                status=SolveStatus.TIMEOUT,
                                solution=None,
                                runtime=time.perf_counter() - start,
                                nodes=nodes,
                            )
                    objective_delta, _ = lattice.unit_cost(unit_id, mask)
                    new_mask = mask | lattice.unit_masks[unit_id]
                    candidate = base + objective_delta
                    if candidate < best.get(new_mask, float("inf")) - 1e-15:
                        best[new_mask] = candidate
                        parents[new_mask] = (mask, unit_id)
                        bucket = bin(new_mask).count("1")
                        layers.setdefault(bucket, set()).add(new_mask)
        elapsed = time.perf_counter() - start
        if lattice.full_mask not in best:
            return SolveResult(
                solver=self.name,
                status=SolveStatus.INFEASIBLE,
                solution=None,
                runtime=elapsed,
                nodes=nodes,
            )
        order = _reconstruct(lattice, parents)
        return SolveResult(
            solver=self.name,
            status=SolveStatus.OPTIMAL,
            solution=Solution(tuple(order), best[lattice.full_mask]),
            runtime=elapsed,
            nodes=nodes,
            trace=[(elapsed, best[lattice.full_mask])],
        )


@register(
    "astar",
    summary="A* over the built-set lattice with the engine's density bound",
    exact=True,
)
class AStarSolver(Solver):
    """A* over the subset lattice with an admissible remaining-area bound."""

    name = "astar"

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        lattice = _Lattice(instance, constraints)
        g_score: Dict[int, float] = {0: 0.0}
        parents: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[float, int]] = [(lattice.heuristic(0), 0)]
        nodes = 0
        while heap:
            f_value, mask = heapq.heappop(heap)
            if mask == lattice.full_mask:
                elapsed = time.perf_counter() - start
                order = _reconstruct(lattice, parents)
                return SolveResult(
                    solver=self.name,
                    status=SolveStatus.OPTIMAL,
                    solution=Solution(tuple(order), g_score[mask]),
                    runtime=elapsed,
                    nodes=nodes,
                    trace=[(elapsed, g_score[mask])],
                )
            if f_value > g_score.get(mask, float("inf")) + lattice.heuristic(
                mask
            ) + 1e-12:
                continue  # stale heap entry
            for unit_id in range(len(lattice.units)):
                if not lattice.expandable(unit_id, mask):
                    continue
                nodes += 1
                if budget is not None:
                    budget.tick()
                    if budget.exhausted:
                        return SolveResult(
                            solver=self.name,
                            status=SolveStatus.TIMEOUT,
                            solution=None,
                            runtime=time.perf_counter() - start,
                            nodes=nodes,
                        )
                objective_delta, _ = lattice.unit_cost(unit_id, mask)
                new_mask = mask | lattice.unit_masks[unit_id]
                tentative = g_score[mask] + objective_delta
                if tentative < g_score.get(new_mask, float("inf")) - 1e-15:
                    g_score[new_mask] = tentative
                    parents[new_mask] = (mask, unit_id)
                    heapq.heappush(
                        heap,
                        (tentative + lattice.heuristic(new_mask), new_mask),
                    )
        return SolveResult(
            solver=self.name,
            status=SolveStatus.INFEASIBLE,
            solution=None,
            runtime=time.perf_counter() - start,
            nodes=nodes,
        )
