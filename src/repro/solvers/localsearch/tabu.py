"""Tabu Search over pairwise swaps (Section 7.1).

Two variants, exactly as the paper evaluates them:

* **TS-BSwap** — each iteration evaluates *every* feasible swap outside
  the tabu list and applies the best one (better quality, quadratic
  per-iteration cost: the paper measures ~50 minutes per iteration on
  TPC-DS),
* **TS-FSwap** — applies the *first improving* swap found, falling back
  to the best non-tabu move when no improving swap exists (scales
  better, weaker moves).

Recently swapped indexes are placed in probation for ``tabu_length``
iterations; an aspiration criterion admits tabu moves that improve the
global best.

Swap objectives come from :class:`~repro.core.engine.EvalEngine`'s
delta path: each candidate replays only its ``[pos_a, pos_b]``
divergence window and early-exits into the base suffix, instead of
replaying from a checkpoint to the end of the order.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.engine import EvalEngine
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.solvers.base import Budget, Solver, repair_order
from repro.solvers.greedy import greedy_order
from repro.solvers.localsearch.neighborhood import apply_swap, swap_feasible
from repro.solvers.registry import register_factory

__all__ = ["TabuSolver"]


class TabuSolver(Solver):
    """Tabu search; ``variant`` is ``"best"`` (BSwap) or ``"first"`` (FSwap)."""

    def __init__(
        self,
        variant: str = "best",
        tabu_length: int = 8,
        initial_order: Optional[List[int]] = None,
    ) -> None:
        if variant not in ("best", "first"):
            raise ValueError(f"unknown tabu variant {variant!r}")
        self.variant = variant
        self.tabu_length = tabu_length
        self.initial_order = initial_order
        self.name = "ts-bswap" if variant == "best" else "ts-fswap"
        #: Engine counters of the most recent :meth:`solve` (dict form);
        #: the Figure-11/12 harness reports these.
        self.last_engine_stats: Optional[Dict[str, int]] = None

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        if budget is None:
            budget = Budget(time_limit=5.0)
        order = (
            list(self.initial_order)
            if self.initial_order is not None
            else greedy_order(instance, constraints)
        )
        if constraints is not None and not constraints.check_order(order):
            # swap_feasible assumes a feasible base; repair a
            # caller-supplied warm start before probing moves from it.
            order = repair_order(order, constraints)
        engine = self._engine(instance)
        current = engine.set_base(order)
        best_order = list(order)
        best_objective = current
        trace: List[Tuple[float, float]] = [
            (time.perf_counter() - start, best_objective)
        ]
        tabu_until: Dict[int, int] = {}
        iteration = 0
        while not budget.exhausted:
            iteration += 1
            move = self._pick_move(
                order,
                engine,
                current,
                best_objective,
                tabu_until,
                iteration,
                constraints,
                budget,
            )
            if move is None:
                break  # neighborhood exhausted
            pos_a, pos_b, objective = move
            x, y = order[pos_a], order[pos_b]
            order = apply_swap(order, pos_a, pos_b)
            current = engine.set_base(order)
            tabu_until[x] = iteration + self.tabu_length
            tabu_until[y] = iteration + self.tabu_length
            if objective < best_objective - 1e-12:
                best_objective = objective
                best_order = list(order)
                trace.append((time.perf_counter() - start, best_objective))
        elapsed = time.perf_counter() - start
        self.last_engine_stats = engine.stats.as_dict()
        return SolveResult(
            solver=self.name,
            status=SolveStatus.FEASIBLE,
            solution=Solution(tuple(best_order), best_objective),
            runtime=elapsed,
            nodes=engine.stats.evaluations,
            trace=trace,
        )

    # ------------------------------------------------------------------
    def _pick_move(
        self,
        order: List[int],
        engine: EvalEngine,
        current: float,
        best_objective: float,
        tabu_until: Dict[int, int],
        iteration: int,
        constraints: Optional[ConstraintSet],
        budget: Budget,
    ) -> Optional[Tuple[int, int, float]]:
        if engine.batch_kernel() != "scalar":
            return self._pick_move_batch(
                order,
                engine,
                current,
                best_objective,
                tabu_until,
                iteration,
                constraints,
                budget,
            )
        # Scalar kernel: the incremental loop keeps FSwap's early exit
        # (a batch scan would score all O(n^2) pairs before returning
        # the first improving one) and ticks the budget per candidate.
        n = len(order)
        best_move: Optional[Tuple[int, int, float]] = None
        for pos_a in range(n - 1):
            for pos_b in range(pos_a + 1, n):
                if budget.exhausted:
                    return best_move
                x, y = order[pos_a], order[pos_b]
                tabu = (
                    tabu_until.get(x, 0) >= iteration
                    or tabu_until.get(y, 0) >= iteration
                )
                if not swap_feasible(order, pos_a, pos_b, constraints):
                    continue
                objective = engine.eval_swap(pos_a, pos_b)
                budget.tick()
                if tabu and objective >= best_objective - 1e-12:
                    continue  # aspiration: only global improvements pass
                if self.variant == "first" and objective < current - 1e-12:
                    return (pos_a, pos_b, objective)
                if best_move is None or objective < best_move[2] - 1e-12:
                    best_move = (pos_a, pos_b, objective)
        return best_move

    def _pick_move_batch(
        self,
        order: List[int],
        engine: EvalEngine,
        current: float,
        best_objective: float,
        tabu_until: Dict[int, int],
        iteration: int,
        constraints: Optional[ConstraintSet],
        budget: Budget,
    ) -> Optional[Tuple[int, int, float]]:
        """One kernel call scores the whole scan; only the chosen move
        is ever materialized as an order (no per-candidate lists)."""
        import numpy as np

        n = len(order)
        objectives, feasible = engine.eval_all_swaps(constraints)
        tabu = np.array(
            [tabu_until.get(ix, 0) >= iteration for ix in order], dtype=bool
        )
        upper = np.triu(np.ones((n, n), dtype=bool), 1)
        allowed = np.asarray(feasible) & upper
        budget.tick(int(allowed.sum()))
        # Aspiration: tabu moves pass only on a global improvement.
        tabu_pair = tabu[:, None] | tabu[None, :]
        allowed &= ~tabu_pair | (objectives < best_objective - 1e-12)
        if not allowed.any():
            return None
        if self.variant == "first":
            improving = allowed & (objectives < current - 1e-12)
            if improving.any():
                pos_a, pos_b = np.argwhere(improving)[0]
                return (int(pos_a), int(pos_b), float(objectives[pos_a, pos_b]))
        masked = np.where(allowed, objectives, np.inf)
        flat_best = int(np.argmin(masked))
        pos_a, pos_b = divmod(flat_best, n)
        return (pos_a, pos_b, float(objectives[pos_a, pos_b]))


register_factory(
    "ts-bswap",
    lambda **kwargs: TabuSolver(variant="best", **kwargs),
    summary="tabu search, best-swap scan (Section 7.1)",
    anytime=True,
    accepts_initial_order=True,
)
register_factory(
    "ts-fswap",
    lambda **kwargs: TabuSolver(variant="first", **kwargs),
    summary="tabu search, first-improving swap (Section 7.1)",
    anytime=True,
    accepts_initial_order=True,
)
