"""Move feasibility helpers shared by the local-search solvers."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.constraints import ConstraintSet

__all__ = ["swap_feasible", "apply_swap"]


def swap_feasible(
    order: Sequence[int],
    pos_a: int,
    pos_b: int,
    constraints: Optional[ConstraintSet],
) -> bool:
    """Check whether swapping two positions keeps the order feasible.

    Swapping elements ``x = order[pos_a]`` and ``y = order[pos_b]``
    (``pos_a < pos_b``) violates a precedence exactly when ``x`` must
    precede, or ``y`` must succeed, any element in the closed window
    ``[pos_a, pos_b]``.  Consecutive (alliance) pairs must additionally
    stay adjacent.
    """
    if constraints is None:
        return True
    if pos_a > pos_b:
        pos_a, pos_b = pos_b, pos_a
    if pos_a == pos_b:
        return True
    x = order[pos_a]
    y = order[pos_b]
    for position in range(pos_a + 1, pos_b + 1):
        if constraints.is_before(x, order[position]):
            return False
    for position in range(pos_a, pos_b):
        if constraints.is_before(order[position], y):
            return False
    if constraints.consecutive_pairs:
        swapped = list(order)
        swapped[pos_a], swapped[pos_b] = swapped[pos_b], swapped[pos_a]
        position_of = {ix: pos for pos, ix in enumerate(swapped)}
        for first, second in constraints.consecutive_pairs:
            if position_of[second] != position_of[first] + 1:
                return False
    return True


def apply_swap(order: Sequence[int], pos_a: int, pos_b: int) -> List[int]:
    """Return a copy of ``order`` with two positions exchanged."""
    swapped = list(order)
    swapped[pos_a], swapped[pos_b] = swapped[pos_b], swapped[pos_a]
    return swapped
