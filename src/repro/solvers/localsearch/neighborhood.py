"""Move feasibility helpers shared by the local-search solvers."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.solvers.base import Budget

__all__ = [
    "swap_feasible",
    "apply_swap",
    "relocate_feasible",
    "apply_relocate",
    "batch_swap_descent",
]


def swap_feasible(
    order: Sequence[int],
    pos_a: int,
    pos_b: int,
    constraints: Optional[ConstraintSet],
) -> bool:
    """Check whether swapping two positions keeps the order feasible.

    Swapping elements ``x = order[pos_a]`` and ``y = order[pos_b]``
    (``pos_a < pos_b``) violates a precedence exactly when ``x`` must
    precede, or ``y`` must succeed, any element in the closed window
    ``[pos_a, pos_b]``.  Consecutive (alliance) pairs must additionally
    stay adjacent; since the swap only changes the positions of ``x``
    and ``y``, only pairs with a member at or adjacent to ``pos_a`` /
    ``pos_b`` can change adjacency, so only those few positions are
    inspected — no swapped copy or full position map is built.  Pairs
    entirely away from both slots are assumed adjacent already, i.e.
    ``order`` itself is expected to satisfy the consecutive pairs (the
    local-search solvers only probe moves from feasible orders).
    """
    if constraints is None:
        return True
    if pos_a > pos_b:
        pos_a, pos_b = pos_b, pos_a
    if pos_a == pos_b:
        return True
    x = order[pos_a]
    y = order[pos_b]
    for position in range(pos_a + 1, pos_b + 1):
        if constraints.is_before(x, order[position]):
            return False
    for position in range(pos_a, pos_b):
        if constraints.is_before(order[position], y):
            return False
    pairs = constraints.consecutive_pairs
    if pairs:
        n = len(order)
        # Base positions whose occupants can see an adjacency change.
        window = {}
        for position in (
            pos_a - 1, pos_a, pos_a + 1, pos_b - 1, pos_b, pos_b + 1
        ):
            if 0 <= position < n:
                window[order[position]] = position

        def new_position(position: int) -> int:
            if position == pos_a:
                return pos_b
            if position == pos_b:
                return pos_a
            return position

        window_positions = set(window.values())
        for first, second in pairs:
            pf = window.get(first)
            ps = window.get(second)
            if pf is None and ps is None:
                continue  # both members far from the swap: unchanged
            if pf is not None and ps is not None:
                if new_position(ps) != new_position(pf) + 1:
                    return False
                continue
            # One member in the window, its partner elsewhere; the
            # partner keeps its (unknown) position.  The pair survives
            # only if the required partner slot is outside the window —
            # then the pair's adjacency is exactly what it was before.
            if pf is not None:
                required = new_position(pf) + 1
            else:
                required = new_position(ps) - 1
            if required < 0 or required >= n or required in window_positions:
                return False
    return True


def apply_swap(order: Sequence[int], pos_a: int, pos_b: int) -> List[int]:
    """Return a copy of ``order`` with two positions exchanged."""
    swapped = list(order)
    swapped[pos_a], swapped[pos_b] = swapped[pos_b], swapped[pos_a]
    return swapped


def apply_relocate(order: Sequence[int], src: int, dst: int) -> List[int]:
    """Return a copy of ``order`` with ``order[src]`` moved to ``dst``."""
    moved = list(order)
    moved.insert(dst, moved.pop(src))
    return moved


def relocate_feasible(
    order: Sequence[int],
    src: int,
    dst: int,
    constraints: Optional[ConstraintSet],
) -> bool:
    """Check whether relocating ``order[src]`` to ``dst`` stays feasible.

    Relocation shifts every element between ``src`` and ``dst``, so
    unlike :func:`swap_feasible` there is no cheap local window for the
    consecutive pairs — the relocated order is checked directly.
    """
    if constraints is None or src == dst:
        return True
    return constraints.check_order(apply_relocate(order, src, dst))


def batch_swap_descent(
    engine,
    order: List[int],
    constraints: Optional[ConstraintSet],
    budget: Budget,
    current: float,
) -> Tuple[List[int], float]:
    """Best-improvement swap descent driven by the batch neighborhood API.

    Repeatedly scores the *entire* swap neighborhood with
    ``engine.eval_all_swaps`` (one kernel call per pass instead of
    O(n^2) delta evaluations), applies the best improving feasible
    swap, and stops at a local minimum or budget exhaustion.  Returns
    the (possibly unchanged) improved order and its objective.  The
    engine's delta base is left on the returned order.
    """
    n = len(order)
    current = engine.set_base(order)
    while not budget.exhausted:
        objectives, feasible = engine.eval_all_swaps(constraints)
        best_pair = None
        best_value = current - 1e-12
        for pos_a in range(n - 1):
            row_obj = objectives[pos_a]
            row_ok = feasible[pos_a]
            for pos_b in range(pos_a + 1, n):
                if row_ok[pos_b] and row_obj[pos_b] < best_value:
                    best_value = row_obj[pos_b]
                    best_pair = (pos_a, pos_b)
        budget.tick(n * (n - 1) // 2)
        if best_pair is None:
            break
        order = apply_swap(order, best_pair[0], best_pair[1])
        current = engine.set_base(order)
    return order, current
