"""Variable Neighborhood Search (Section 7.3) — the paper's best method.

VNS fixes LNS's parameter-tuning problem (Figure 10) by adapting both
knobs online.  Relaxations are processed in groups of
``group_size`` (20); after each group:

* if more than ``proof_threshold`` (75%) of the group's relaxations
  ended with an exhaustion *proof*, the search is stuck in a local
  minimum that is smaller than the neighborhood — grow the relaxation
  size by 1% of the indexes;
* otherwise the neighborhood is under-explored — grow the failure limit
  by 20%.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.solvers.base import Budget, Solver
from repro.solvers.cp.search import CPModel
from repro.solvers.greedy import greedy_order
from repro.solvers.localsearch.lns import relax_step
from repro.solvers.localsearch.neighborhood import batch_swap_descent
from repro.solvers.registry import register

__all__ = ["VNSSolver"]


@register(
    "vns",
    summary="variable neighborhood search, adaptive LNS (Section 7.3)",
    anytime=True,
    stochastic=True,
    accepts_initial_order=True,
)
class VNSSolver(Solver):
    """Adaptive LNS following the paper's Section 7.3 policy."""

    name = "vns"

    def __init__(
        self,
        initial_relax_fraction: float = 0.05,
        initial_failure_limit: int = 100,
        group_size: int = 20,
        proof_threshold: float = 0.75,
        relax_growth_fraction: float = 0.01,
        failure_growth: float = 0.20,
        seed: int = 0,
        initial_order: Optional[List[int]] = None,
        on_improvement=None,
    ) -> None:
        self.initial_relax_fraction = initial_relax_fraction
        self.initial_failure_limit = initial_failure_limit
        self.group_size = group_size
        self.proof_threshold = proof_threshold
        self.relax_growth_fraction = relax_growth_fraction
        self.failure_growth = failure_growth
        self.seed = seed
        self.initial_order = initial_order
        #: Optional callback ``(elapsed_seconds, order)`` fired on every
        #: incumbent improvement (used by the Figure-13 decomposition).
        self.on_improvement = on_improvement
        #: Engine counters of the most recent :meth:`solve` (dict form).
        self.last_engine_stats = None

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        if budget is None:
            budget = Budget(time_limit=5.0)
        rng = random.Random(self.seed)
        n = instance.n_indexes
        order = (
            list(self.initial_order)
            if self.initial_order is not None
            else greedy_order(instance, constraints)
        )
        # Hall filtering costs O(n^2) per propagation and adds little
        # inside a mostly-fixed neighborhood; forward checking plus
        # precedence propagation carry the relaxation sub-searches.
        model = CPModel(
            instance, constraints, hall=False, engine=self._engine(instance)
        )
        current = model.engine.evaluate(order)
        relax_size = max(2, round(self.initial_relax_fraction * n))
        failure_limit = self.initial_failure_limit
        trace: List[Tuple[float, float]] = [
            (time.perf_counter() - start, current)
        ]
        restarts = 0
        proofs_in_group = 0
        group_count = 0
        while not budget.exhausted:
            restarts += 1
            relax_vars = rng.sample(range(n), min(relax_size, n))
            improved_order, improved_objective, proved = relax_step(
                model, order, relax_vars, current, failure_limit, budget
            )
            if (
                improved_order is not None
                and improved_objective < current - 1e-12
            ):
                # Polish the new incumbent with a batch swap descent —
                # one whole-neighborhood kernel scan per pass.
                order, current = batch_swap_descent(
                    model.engine,
                    improved_order,
                    constraints,
                    budget,
                    improved_objective,
                )
                elapsed_now = time.perf_counter() - start
                trace.append((elapsed_now, current))
                if self.on_improvement is not None:
                    self.on_improvement(elapsed_now, list(order))
            group_count += 1
            if proved:
                proofs_in_group += 1
            if group_count >= self.group_size:
                if proofs_in_group > self.proof_threshold * group_count:
                    # Stuck in a local minimum: widen the neighborhood.
                    growth = max(1, round(self.relax_growth_fraction * n))
                    relax_size = min(n, relax_size + growth)
                else:
                    # Under-explored: search the same size neighborhood
                    # more thoroughly.
                    failure_limit = int(
                        failure_limit * (1.0 + self.failure_growth)
                    ) + 1
                group_count = 0
                proofs_in_group = 0
        elapsed = time.perf_counter() - start
        self.last_engine_stats = model.engine.stats.as_dict()
        return SolveResult(
            solver=self.name,
            status=SolveStatus.FEASIBLE,
            solution=Solution(tuple(order), current),
            runtime=elapsed,
            nodes=restarts,
            trace=trace,
        )
