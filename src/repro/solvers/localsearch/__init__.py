"""Local-search solvers (Section 7): Tabu, LNS, and VNS."""

from repro.solvers.localsearch.lns import LNSSolver, relax_step
from repro.solvers.localsearch.neighborhood import apply_swap, swap_feasible
from repro.solvers.localsearch.tabu import TabuSolver
from repro.solvers.localsearch.vns import VNSSolver

__all__ = [
    "LNSSolver",
    "relax_step",
    "TabuSolver",
    "VNSSolver",
    "apply_swap",
    "swap_feasible",
]
