"""Large Neighborhood Search on top of the CP model (Section 7.2).

Each restart relaxes a random subset of the position variables (default
5% of the indexes), fixes everything else at its current position, and
runs a CP branch-and-prune over the relaxed variables with a failure
limit (default 500 backtracks).  A relaxation ends when the CP search
either proves the neighborhood contains no better solution or hits the
failure limit; improvements become the new current solution.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.solvers.base import Budget, Solver
from repro.solvers.cp.search import CPModel, CPSearch
from repro.solvers.greedy import greedy_order
from repro.solvers.localsearch.neighborhood import batch_swap_descent
from repro.solvers.registry import register

__all__ = ["LNSSolver", "relax_step"]


def relax_step(
    model: CPModel,
    order: List[int],
    relax_vars: List[int],
    incumbent: float,
    failure_limit: int,
    budget: Optional[Budget],
) -> Tuple[Optional[List[int]], Optional[float], bool]:
    """Run one LNS relaxation.

    Fixes every variable outside ``relax_vars`` to its position in
    ``order`` and searches the rest.  Returns
    ``(improved_order, improved_objective, proved)`` where ``proved`` is
    True when the CP search exhausted the neighborhood (no better
    solution exists in it).
    """
    relax_set = set(relax_vars)
    fixed: Dict[int, int] = {
        var: position
        for position, var in enumerate(order)
        if var not in relax_set
    }
    search = CPSearch(
        model,
        strategy="first_fail",
        incumbent=incumbent,
        failure_limit=failure_limit,
        budget=budget,
        fixed=fixed,
        delta_base=order,
    )
    outcome = search.run()
    if outcome.best_order is not None:
        return outcome.best_order, outcome.best_objective, outcome.proved
    return None, None, outcome.proved


@register(
    "lns",
    summary="large neighborhood search over CP relaxations (Section 7.2)",
    anytime=True,
    stochastic=True,
    accepts_initial_order=True,
)
class LNSSolver(Solver):
    """Fixed-parameter LNS (the baseline VNS improves upon)."""

    name = "lns"

    def __init__(
        self,
        relax_fraction: float = 0.05,
        failure_limit: int = 500,
        seed: int = 0,
        initial_order: Optional[List[int]] = None,
    ) -> None:
        self.relax_fraction = relax_fraction
        self.failure_limit = failure_limit
        self.seed = seed
        self.initial_order = initial_order
        #: Engine counters of the most recent :meth:`solve` (dict form).
        self.last_engine_stats = None

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        if budget is None:
            budget = Budget(time_limit=5.0)
        rng = random.Random(self.seed)
        n = instance.n_indexes
        order = (
            list(self.initial_order)
            if self.initial_order is not None
            else greedy_order(instance, constraints)
        )
        # Hall filtering costs O(n^2) per propagation and adds little
        # inside a mostly-fixed neighborhood; forward checking plus
        # precedence propagation carry the relaxation sub-searches.
        model = CPModel(
            instance, constraints, hall=False, engine=self._engine(instance)
        )
        current = model.engine.evaluate(order)
        relax_size = max(2, round(self.relax_fraction * n))
        trace: List[Tuple[float, float]] = [
            (time.perf_counter() - start, current)
        ]
        restarts = 0
        while not budget.exhausted:
            restarts += 1
            relax_vars = rng.sample(range(n), min(relax_size, n))
            improved_order, improved_objective, _ = relax_step(
                model,
                order,
                relax_vars,
                current,
                self.failure_limit,
                budget,
            )
            if improved_order is not None and improved_objective < current - 1e-12:
                # Polish the new incumbent with a batch swap descent.
                order, current = batch_swap_descent(
                    model.engine,
                    improved_order,
                    constraints,
                    budget,
                    improved_objective,
                )
                trace.append((time.perf_counter() - start, current))
        elapsed = time.perf_counter() - start
        self.last_engine_stats = model.engine.stats.as_dict()
        return SolveResult(
            solver=self.name,
            status=SolveStatus.FEASIBLE,
            solution=Solution(tuple(order), current),
            runtime=elapsed,
            nodes=restarts,
            trace=trace,
        )
