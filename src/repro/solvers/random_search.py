"""Random-permutation baseline (Table 7's "Random" columns)."""

from __future__ import annotations

import random
import time
from typing import List, Optional, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.core.objective import ObjectiveEvaluator
from repro.core.solution import Solution, SolveResult, SolveStatus
from repro.solvers.base import Budget, Solver, repair_order
from repro.solvers.registry import register

__all__ = ["RandomSolver", "random_statistics"]


def random_statistics(
    instance: ProblemInstance,
    samples: int = 100,
    seed: int = 0,
    constraints: Optional[ConstraintSet] = None,
) -> Tuple[float, float, List[float]]:
    """Objective statistics over random permutations.

    Returns ``(average, minimum, all_objectives)`` for ``samples``
    uniformly random permutations (repaired for consecutive pairs when
    constraints are supplied) — the paper's Random (AVG) / Random (MIN)
    columns.
    """
    rng = random.Random(seed)
    evaluator = ObjectiveEvaluator(instance)
    objectives: List[float] = []
    base = list(range(instance.n_indexes))
    for _ in range(samples):
        order = base[:]
        rng.shuffle(order)
        if constraints is not None:
            order = _repair(order, constraints)
        objectives.append(evaluator.evaluate(order))
    average = sum(objectives) / len(objectives)
    return average, min(objectives), objectives


def _repair(order: List[int], constraints: ConstraintSet) -> List[int]:
    """Stable-sort the random order into constraint feasibility."""
    return repair_order(order, constraints)


@register(
    "random",
    summary="uniform random permutation sampling baseline",
    stochastic=True,
)
class RandomSolver(Solver):
    """Best-of-N random permutations under a budget."""

    name = "random"

    def __init__(self, samples: int = 100, seed: int = 0) -> None:
        self.samples = samples
        self.seed = seed

    def solve(
        self,
        instance: ProblemInstance,
        constraints: Optional[ConstraintSet] = None,
        budget: Optional[Budget] = None,
    ) -> SolveResult:
        start = time.perf_counter()
        rng = random.Random(self.seed)
        evaluator = ObjectiveEvaluator(instance)
        base = list(range(instance.n_indexes))
        best_order: Optional[List[int]] = None
        best_objective = float("inf")
        trace = []
        samples = 0
        for _ in range(self.samples):
            if budget is not None and budget.exhausted:
                break
            order = base[:]
            rng.shuffle(order)
            if constraints is not None:
                order = _repair(order, constraints)
            objective = evaluator.evaluate(order)
            samples += 1
            if budget is not None:
                budget.tick()
            if objective < best_objective:
                best_objective = objective
                best_order = order
                trace.append((time.perf_counter() - start, objective))
        elapsed = time.perf_counter() - start
        if best_order is None:
            return SolveResult(
                solver=self.name,
                status=SolveStatus.DID_NOT_FINISH,
                solution=None,
                runtime=elapsed,
                nodes=samples,
            )
        return SolveResult(
            solver=self.name,
            status=SolveStatus.FEASIBLE,
            solution=Solution(tuple(best_order), best_objective),
            runtime=elapsed,
            nodes=samples,
            trace=trace,
        )
