"""Interaction-density reduction, as used in the paper's Section 8.1.

The exact-search experiments (Tables 5 and 6) vary both the number of
indexes and the *density* of interactions:

* ``low`` density — "remove all suboptimal query plans and build
  interactions": each query keeps only its single best plan, and all
  build interactions are dropped.
* ``mid`` density — "remove all but one suboptimal query plan and build
  interactions with less than 15% effects": each query keeps its best
  plan plus its best suboptimal plan, and a build interaction survives
  only if its saving is at least 15% of the target's creation cost.
* ``full`` — the instance untouched.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.instance import BuildInteraction, PlanDef, ProblemInstance
from repro.errors import ValidationError

__all__ = ["reduce_density", "DENSITY_LEVELS"]

DENSITY_LEVELS = ("low", "mid", "full")

_MID_DENSITY_MIN_EFFECT = 0.15


def _top_plans_per_query(
    instance: ProblemInstance, keep_per_query: int
) -> List[PlanDef]:
    """Keep the ``keep_per_query`` highest-speed-up plans of each query."""
    kept: List[PlanDef] = []
    for query in instance.queries:
        plan_ids = instance.plans_of_query(query.query_id)
        plans = sorted(
            (instance.plans[pid] for pid in plan_ids),
            key=lambda p: (-p.speedup, p.plan_id),
        )
        kept.extend(plans[:keep_per_query])
    kept.sort(key=lambda p: p.plan_id)
    return kept


def reduce_density(instance: ProblemInstance, level: str) -> ProblemInstance:
    """Return a copy of ``instance`` at the requested interaction density.

    Args:
        instance: The full-density instance.
        level: One of ``"low"``, ``"mid"``, ``"full"``.

    Raises:
        ValidationError: If ``level`` is not recognized.
    """
    if level not in DENSITY_LEVELS:
        raise ValidationError(
            f"unknown density level {level!r}; expected one of {DENSITY_LEVELS}"
        )
    if level == "full":
        return instance
    if level == "low":
        plans = _top_plans_per_query(instance, keep_per_query=1)
        reduced = instance.with_plans(plans, name=f"{instance.name}-low")
        return reduced.with_build_interactions((), name=f"{instance.name}-low")
    # mid density
    plans = _top_plans_per_query(instance, keep_per_query=2)
    reduced = instance.with_plans(plans, name=f"{instance.name}-mid")
    strong: List[BuildInteraction] = []
    for bi in instance.build_interactions:
        create_cost = instance.indexes[bi.target].create_cost
        if bi.saving >= _MID_DENSITY_MIN_EFFECT * create_cost:
            strong.append(bi)
    return reduced.with_build_interactions(strong, name=f"{instance.name}-mid")
