"""Problem-instance data model for the index deployment ordering problem.

This module defines the immutable value objects that make up a problem
instance (Section 4 of the paper) and :class:`ProblemInstance` itself,
which bundles them together with derived lookup tables used by the
objective evaluator, the pruning analyses, and every solver.

The vocabulary follows Table 2 of the paper:

* an *index* ``i`` has an original creation cost ``ctime(i)``,
* a *query* ``q`` has an original runtime ``qtime(q)``,
* a *query plan* ``p`` is a set of indexes that, once all present, speeds
  query ``q`` up by ``qspdup(p, q)`` relative to its original runtime,
* a *build interaction* ``cspdup(i, j)`` says that an already-built index
  ``j`` reduces the cost of creating index ``i``,
* a *precedence* says index ``a`` must be deployed before index ``b``
  (e.g. a materialized view's clustered index before its secondaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ValidationError

__all__ = [
    "IndexDef",
    "QueryDef",
    "PlanDef",
    "BuildInteraction",
    "PrecedenceRule",
    "ProblemInstance",
]


@dataclass(frozen=True)
class IndexDef:
    """An index that may be deployed.

    Attributes:
        index_id: Dense identifier in ``range(n_indexes)``.
        name: Human-readable name, e.g. ``"ix_lineitem_shipdate"``.
        create_cost: ``ctime(i)`` — cost (abstract seconds) of building the
            index from the base table with no helper indexes present.
        size: Storage footprint estimate; informational only (used by the
            advisor substrate, not by the ordering objective).
    """

    index_id: int
    name: str
    create_cost: float
    size: float = 0.0

    def __post_init__(self) -> None:
        if self.index_id < 0:
            raise ValidationError(f"index_id must be >= 0, got {self.index_id}")
        if self.create_cost <= 0:
            raise ValidationError(
                f"index {self.name!r}: create_cost must be positive, "
                f"got {self.create_cost}"
            )
        if self.size < 0:
            raise ValidationError(f"index {self.name!r}: size must be >= 0")


@dataclass(frozen=True)
class QueryDef:
    """A workload query.

    Attributes:
        query_id: Dense identifier in ``range(n_queries)``.
        name: Human-readable name, e.g. ``"tpch_q3"``.
        base_runtime: ``qtime(q)`` — runtime with no candidate index built.
        weight: Relative importance; the paper folds weighting into the
            objective by scaling runtimes (Section 4.4).
    """

    query_id: int
    name: str
    base_runtime: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.query_id < 0:
            raise ValidationError(f"query_id must be >= 0, got {self.query_id}")
        if self.base_runtime < 0:
            raise ValidationError(
                f"query {self.name!r}: base_runtime must be >= 0"
            )
        if self.weight <= 0:
            raise ValidationError(f"query {self.name!r}: weight must be positive")


@dataclass(frozen=True)
class PlanDef:
    """A query plan: a set of indexes jointly enabling a speed-up.

    A plan is *available* once every index in :attr:`indexes` has been
    deployed; the query optimizer then runs ``query_id`` faster by
    :attr:`speedup` (``qspdup(p, q)``).  A query may have many plans; the
    evaluator applies the best available one (competing interactions,
    constraint 3 of the model).
    """

    plan_id: int
    query_id: int
    indexes: FrozenSet[int]
    speedup: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "indexes", frozenset(self.indexes))
        if not self.indexes:
            raise ValidationError(f"plan {self.plan_id}: must use >= 1 index")
        if self.speedup <= 0:
            raise ValidationError(
                f"plan {self.plan_id}: speedup must be positive, got {self.speedup}"
            )


@dataclass(frozen=True)
class BuildInteraction:
    """A pairwise build interaction ``cspdup(target, helper)``.

    If ``helper`` is already deployed when ``target`` is built, the build
    cost of ``target`` drops by :attr:`saving` (constraint 5 of the model;
    the paper observed build interactions to be pairwise in practice).
    """

    target: int
    helper: int
    saving: float

    def __post_init__(self) -> None:
        if self.target == self.helper:
            raise ValidationError(
                f"build interaction: target and helper are both {self.target}"
            )
        if self.saving <= 0:
            raise ValidationError(
                f"build interaction {self.target}<-{self.helper}: "
                f"saving must be positive, got {self.saving}"
            )


@dataclass(frozen=True)
class PrecedenceRule:
    """A hard deployment-order requirement: ``before`` precedes ``after``.

    Examples from the paper: a materialized view's clustered index must be
    built before secondary indexes on the view; a correlation-exploiting
    secondary index requires its clustered index first.
    """

    before: int
    after: int
    reason: str = ""

    def __post_init__(self) -> None:
        if self.before == self.after:
            raise ValidationError(
                f"precedence: before and after are both {self.before}"
            )


class ProblemInstance:
    """An immutable index-deployment-ordering problem.

    The instance is the "matrix file" of the paper's solution pipeline
    (Figure 3): everything a solver needs, with no further DBMS calls.

    Derived lookup tables (plans per query, plans containing an index,
    build helpers per index, ...) are computed once at construction and
    shared by all solvers.

    Args:
        indexes: Index definitions with dense ids ``0..n-1`` in order.
        queries: Query definitions with dense ids ``0..m-1`` in order.
        plans: Query plans; plan ids must be dense ``0..|P|-1`` in order.
        build_interactions: Pairwise build-cost savings.
        precedences: Hard ordering requirements.
        name: Label used in reports (e.g. ``"tpch"``).

    Raises:
        ValidationError: If ids are not dense, references dangle, a plan's
            speed-up exceeds its query's base runtime, or a build saving
            is not smaller than the target's creation cost.
    """

    def __init__(
        self,
        indexes: Sequence[IndexDef],
        queries: Sequence[QueryDef],
        plans: Sequence[PlanDef],
        build_interactions: Sequence[BuildInteraction] = (),
        precedences: Sequence[PrecedenceRule] = (),
        name: str = "instance",
    ) -> None:
        self._indexes: Tuple[IndexDef, ...] = tuple(indexes)
        self._queries: Tuple[QueryDef, ...] = tuple(queries)
        self._plans: Tuple[PlanDef, ...] = tuple(plans)
        self._build_interactions: Tuple[BuildInteraction, ...] = tuple(
            build_interactions
        )
        self._precedences: Tuple[PrecedenceRule, ...] = tuple(precedences)
        self.name = name
        self._validate_ids()
        self._build_lookups()

    # ------------------------------------------------------------------
    # Construction-time validation
    # ------------------------------------------------------------------
    def _validate_ids(self) -> None:
        for pos, index in enumerate(self._indexes):
            if index.index_id != pos:
                raise ValidationError(
                    f"index ids must be dense and ordered: position {pos} "
                    f"holds id {index.index_id}"
                )
        for pos, query in enumerate(self._queries):
            if query.query_id != pos:
                raise ValidationError(
                    f"query ids must be dense and ordered: position {pos} "
                    f"holds id {query.query_id}"
                )
        for pos, plan in enumerate(self._plans):
            if plan.plan_id != pos:
                raise ValidationError(
                    f"plan ids must be dense and ordered: position {pos} "
                    f"holds id {plan.plan_id}"
                )
            if not 0 <= plan.query_id < len(self._queries):
                raise ValidationError(
                    f"plan {plan.plan_id}: unknown query {plan.query_id}"
                )
            for index_id in plan.indexes:
                if not 0 <= index_id < len(self._indexes):
                    raise ValidationError(
                        f"plan {plan.plan_id}: unknown index {index_id}"
                    )
            query = self._queries[plan.query_id]
            if plan.speedup > query.base_runtime + 1e-9:
                raise ValidationError(
                    f"plan {plan.plan_id}: speedup {plan.speedup} exceeds "
                    f"base runtime {query.base_runtime} of query "
                    f"{query.name!r}"
                )
        for bi in self._build_interactions:
            for index_id in (bi.target, bi.helper):
                if not 0 <= index_id < len(self._indexes):
                    raise ValidationError(
                        f"build interaction: unknown index {index_id}"
                    )
            target = self._indexes[bi.target]
            if bi.saving >= target.create_cost:
                raise ValidationError(
                    f"build interaction {bi.target}<-{bi.helper}: saving "
                    f"{bi.saving} must be < create_cost {target.create_cost}"
                )
        for rule in self._precedences:
            for index_id in (rule.before, rule.after):
                if not 0 <= index_id < len(self._indexes):
                    raise ValidationError(
                        f"precedence: unknown index {index_id}"
                    )

    def _build_lookups(self) -> None:
        n = len(self._indexes)
        m = len(self._queries)
        self._plans_by_query: List[List[int]] = [[] for _ in range(m)]
        self._plans_containing: List[List[int]] = [[] for _ in range(n)]
        for plan in self._plans:
            self._plans_by_query[plan.query_id].append(plan.plan_id)
            for index_id in plan.indexes:
                self._plans_containing[index_id].append(plan.plan_id)
        helpers: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        helped: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for bi in self._build_interactions:
            helpers[bi.target].append((bi.helper, bi.saving))
            helped[bi.helper].append((bi.target, bi.saving))
        self._build_helpers = [tuple(h) for h in helpers]
        self._build_helped = [tuple(h) for h in helped]
        self._total_base_runtime = sum(
            q.base_runtime * q.weight for q in self._queries
        )

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def indexes(self) -> Tuple[IndexDef, ...]:
        """All index definitions, ordered by id."""
        return self._indexes

    @property
    def queries(self) -> Tuple[QueryDef, ...]:
        """All query definitions, ordered by id."""
        return self._queries

    @property
    def plans(self) -> Tuple[PlanDef, ...]:
        """All query plans, ordered by id."""
        return self._plans

    @property
    def build_interactions(self) -> Tuple[BuildInteraction, ...]:
        """All pairwise build interactions."""
        return self._build_interactions

    @property
    def precedences(self) -> Tuple[PrecedenceRule, ...]:
        """All hard precedence rules."""
        return self._precedences

    @property
    def n_indexes(self) -> int:
        """Number of indexes (the permutation length)."""
        return len(self._indexes)

    @property
    def n_queries(self) -> int:
        """Number of workload queries."""
        return len(self._queries)

    @property
    def n_plans(self) -> int:
        """Number of query plans across all queries."""
        return len(self._plans)

    @property
    def total_base_runtime(self) -> float:
        """``R_0``: weighted total query runtime with no index built."""
        return self._total_base_runtime

    def plans_of_query(self, query_id: int) -> Sequence[int]:
        """Plan ids belonging to ``query_id``."""
        return self._plans_by_query[query_id]

    def plans_containing(self, index_id: int) -> Sequence[int]:
        """Plan ids whose index set contains ``index_id``."""
        return self._plans_containing[index_id]

    def build_helpers(self, index_id: int) -> Sequence[Tuple[int, float]]:
        """``(helper, saving)`` pairs that can cheapen building ``index_id``."""
        return self._build_helpers[index_id]

    def build_helped(self, index_id: int) -> Sequence[Tuple[int, float]]:
        """``(target, saving)`` pairs whose build ``index_id`` can cheapen."""
        return self._build_helped[index_id]

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def build_cost(self, index_id: int, built: Iterable[int]) -> float:
        """``C(i, M)``: cost of building ``index_id`` given ``built`` exists.

        Applies the single best available build interaction, per
        constraint 5 of the mathematical model.
        """
        built_set = built if isinstance(built, (set, frozenset)) else set(built)
        best_saving = 0.0
        for helper, saving in self._build_helpers[index_id]:
            if helper in built_set and saving > best_saving:
                best_saving = saving
        return self._indexes[index_id].create_cost - best_saving

    def min_build_cost(self, index_id: int) -> float:
        """Smallest possible build cost (every helper available)."""
        helpers = self._build_helpers[index_id]
        best = max((saving for _, saving in helpers), default=0.0)
        return self._indexes[index_id].create_cost - best

    def total_create_cost(self) -> float:
        """Sum of original creation costs, ignoring build interactions."""
        return sum(ix.create_cost for ix in self._indexes)

    def query_speedup(self, query_id: int, built: Iterable[int]) -> float:
        """``X_q``: best available plan speed-up for ``query_id``.

        ``built`` is the set of deployed indexes; unavailable plans (any
        missing index) contribute nothing (competing interactions).
        """
        built_set = built if isinstance(built, (set, frozenset)) else set(built)
        best = 0.0
        for plan_id in self._plans_by_query[query_id]:
            plan = self._plans[plan_id]
            if plan.speedup > best and plan.indexes <= built_set:
                best = plan.speedup
        return best

    def total_runtime(self, built: Iterable[int]) -> float:
        """``R_M``: weighted total runtime given deployed set ``built``."""
        built_set = built if isinstance(built, (set, frozenset)) else set(built)
        total = 0.0
        for query in self._queries:
            speedup = self.query_speedup(query.query_id, built_set)
            total += (query.base_runtime - speedup) * query.weight
        return total

    def interaction_counts(self) -> Dict[str, int]:
        """Summary statistics matching Table 4 of the paper.

        Returns a dict with keys ``queries``, ``indexes``, ``plans``,
        ``largest_plan``, ``build_interactions``, ``query_interactions``.
        *Query interactions* counts plans that use two or more indexes —
        each such plan couples the benefit of its member indexes.
        """
        largest = max((len(p.indexes) for p in self._plans), default=0)
        query_inter = sum(1 for p in self._plans if len(p.indexes) >= 2)
        return {
            "queries": self.n_queries,
            "indexes": self.n_indexes,
            "plans": self.n_plans,
            "largest_plan": largest,
            "build_interactions": len(self._build_interactions),
            "query_interactions": query_inter,
        }

    # ------------------------------------------------------------------
    # Instance surgery (used by density reduction and pruning recursion)
    # ------------------------------------------------------------------
    def restrict_to_indexes(
        self, keep: Iterable[int], name: Optional[str] = None
    ) -> "ProblemInstance":
        """Return a sub-instance over a subset of the indexes.

        Indexes are re-numbered densely in ascending original-id order.
        Plans that reference a dropped index are removed; queries are kept
        (their base runtime still contributes to the objective).  Build
        interactions and precedences between surviving indexes are kept.
        """
        keep_sorted = sorted(set(keep))
        remap = {old: new for new, old in enumerate(keep_sorted)}
        indexes = [
            IndexDef(remap[ix.index_id], ix.name, ix.create_cost, ix.size)
            for ix in self._indexes
            if ix.index_id in remap
        ]
        plans = []
        for plan in self._plans:
            if all(i in remap for i in plan.indexes):
                plans.append(
                    PlanDef(
                        len(plans),
                        plan.query_id,
                        frozenset(remap[i] for i in plan.indexes),
                        plan.speedup,
                    )
                )
        interactions = [
            BuildInteraction(remap[bi.target], remap[bi.helper], bi.saving)
            for bi in self._build_interactions
            if bi.target in remap and bi.helper in remap
        ]
        precedences = [
            PrecedenceRule(remap[r.before], remap[r.after], r.reason)
            for r in self._precedences
            if r.before in remap and r.after in remap
        ]
        return ProblemInstance(
            indexes,
            self._queries,
            plans,
            interactions,
            precedences,
            name=name or f"{self.name}[{len(indexes)}]",
        )

    def with_plans(
        self, plans: Sequence[PlanDef], name: Optional[str] = None
    ) -> "ProblemInstance":
        """Return a copy with a different plan set (ids re-numbered)."""
        renumbered = [
            PlanDef(pos, p.query_id, p.indexes, p.speedup)
            for pos, p in enumerate(plans)
        ]
        return ProblemInstance(
            self._indexes,
            self._queries,
            renumbered,
            self._build_interactions,
            self._precedences,
            name=name or self.name,
        )

    def with_build_interactions(
        self,
        build_interactions: Sequence[BuildInteraction],
        name: Optional[str] = None,
    ) -> "ProblemInstance":
        """Return a copy with a different build-interaction set."""
        return ProblemInstance(
            self._indexes,
            self._queries,
            self._plans,
            build_interactions,
            self._precedences,
            name=name or self.name,
        )

    def without_interactions(self) -> "ProblemInstance":
        """Return an interaction-free variant (ablation §4.4).

        Each query keeps only singleton plans; multi-index plans are
        projected onto each member index with the plan's speed-up split
        evenly (the independence assumption criticized by the paper).
        Build interactions are dropped.
        """
        plans: List[PlanDef] = []
        best_single: Dict[Tuple[int, int], float] = {}
        for plan in self._plans:
            share = plan.speedup / len(plan.indexes)
            for index_id in plan.indexes:
                key = (plan.query_id, index_id)
                if share > best_single.get(key, 0.0):
                    best_single[key] = share
        for (query_id, index_id), speedup in sorted(best_single.items()):
            plans.append(
                PlanDef(len(plans), query_id, frozenset([index_id]), speedup)
            )
        return ProblemInstance(
            self._indexes,
            self._queries,
            plans,
            (),
            self._precedences,
            name=f"{self.name}-noninteracting",
        )

    def __repr__(self) -> str:
        return (
            f"ProblemInstance(name={self.name!r}, |I|={self.n_indexes}, "
            f"|Q|={self.n_queries}, |P|={self.n_plans})"
        )
