"""Matrix-file serialization for problem instances.

The paper's pipeline (Figure 3) materializes the what-if analysis into a
*matrix file* consumed by the solver.  This module defines that format as
JSON: versioned, self-describing, round-trip safe, and stable across
library versions so extracted instances can be checked into benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    PrecedenceRule,
    ProblemInstance,
    QueryDef,
)
from repro.errors import ValidationError

__all__ = ["instance_to_dict", "instance_from_dict", "save_instance", "load_instance"]

FORMAT_VERSION = 1


def instance_to_dict(instance: ProblemInstance) -> Dict[str, Any]:
    """Convert an instance to a JSON-serializable dict (matrix file)."""
    return {
        "format": "repro-matrix",
        "version": FORMAT_VERSION,
        "name": instance.name,
        "indexes": [
            {
                "id": ix.index_id,
                "name": ix.name,
                "create_cost": ix.create_cost,
                "size": ix.size,
            }
            for ix in instance.indexes
        ],
        "queries": [
            {
                "id": q.query_id,
                "name": q.name,
                "base_runtime": q.base_runtime,
                "weight": q.weight,
            }
            for q in instance.queries
        ],
        "plans": [
            {
                "id": p.plan_id,
                "query": p.query_id,
                "indexes": sorted(p.indexes),
                "speedup": p.speedup,
            }
            for p in instance.plans
        ],
        "build_interactions": [
            {"target": bi.target, "helper": bi.helper, "saving": bi.saving}
            for bi in instance.build_interactions
        ],
        "precedences": [
            {"before": r.before, "after": r.after, "reason": r.reason}
            for r in instance.precedences
        ],
    }


def instance_from_dict(data: Dict[str, Any]) -> ProblemInstance:
    """Reconstruct an instance from :func:`instance_to_dict` output.

    Raises:
        ValidationError: If the payload is not a recognized matrix file.
    """
    if not isinstance(data, dict) or data.get("format") != "repro-matrix":
        raise ValidationError("not a repro matrix file (missing format marker)")
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported matrix file version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        indexes = [
            IndexDef(d["id"], d["name"], d["create_cost"], d.get("size", 0.0))
            for d in data["indexes"]
        ]
        queries = [
            QueryDef(d["id"], d["name"], d["base_runtime"], d.get("weight", 1.0))
            for d in data["queries"]
        ]
        plans = [
            PlanDef(d["id"], d["query"], frozenset(d["indexes"]), d["speedup"])
            for d in data["plans"]
        ]
        interactions = [
            BuildInteraction(d["target"], d["helper"], d["saving"])
            for d in data.get("build_interactions", [])
        ]
        precedences = [
            PrecedenceRule(d["before"], d["after"], d.get("reason", ""))
            for d in data.get("precedences", [])
        ]
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed matrix file: {exc}") from exc
    return ProblemInstance(
        indexes,
        queries,
        plans,
        interactions,
        precedences,
        name=data.get("name", "instance"),
    )


def save_instance(instance: ProblemInstance, path: Union[str, Path]) -> None:
    """Write an instance to ``path`` as a JSON matrix file."""
    payload = instance_to_dict(instance)
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def load_instance(path: Union[str, Path]) -> ProblemInstance:
    """Read an instance previously written by :func:`save_instance`."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: invalid JSON: {exc}") from exc
    return instance_from_dict(data)
