"""Vectorized batch neighborhood evaluation over flattened instance arrays.

The scalar delta path in :class:`~repro.core.engine.EvalEngine` answers
one move at a time by replaying the move's divergence window.  A tabu
scan asks for *every* pairwise swap of the base order — O(n^2) Python
calls, each replaying an O(n) window.  This module scores the whole
neighborhood in one pass of numpy array ops.

The key identity: swapping positions ``a < b`` (``x = order[a]``,
``y = order[b]``) leaves every step of the window ``(a, b)`` building
the same index as the base order, over a built-set that differs from
the base prefix only by *x missing* and *y present*.  So the swapped
objective decomposes into

* an **x-removed baseline**: the base trajectory with ``x`` deleted —
  runtime ``R-``, step costs ``costx`` and their running sum, computed
  once per row ``a`` with a handful of vector ops (only queries that
  have a plan through ``x``, and steps where ``x`` was the best build
  helper, can differ from the base trajectory), and
* a **deviation term** from ``y`` being available early: a plan whose
  *last* member sits at position ``b`` completes as soon as its other
  members are built, which lowers the runtime of the remaining window
  steps.  Every such (plan, step) incidence is a *cell*; cells depend
  only on the base order, so they are materialized once per base
  (value = ``weight * max(0, A - qbest0) * cost0``, where ``A`` is the
  per-(query, completion-position) running best speedup), summed into
  an ``(n, n)`` matrix whose suffix sums give each row's deviation in
  O(1) — with per-row corrections only for the sparse cells whose
  value actually depends on ``x`` (x-plans in the running max, steps
  where ``x`` supported the base qbest, steps where ``x`` was the best
  helper).

Everything here is exact with respect to the scalar replay semantics —
the property tests assert elementwise agreement with ``eval_swap`` /
``eval_relocate`` — up to float summation order.

Kernels: ``numpy`` (this module), ``scalar`` (the engine's delta path,
looped), and an optional ``numba`` kernel (a jitted per-pair window
replay) behind a feature flag that degrades to numpy when numba is not
installed.  ``auto`` picks numpy above :data:`NUMPY_MIN_N` indexes —
below that the per-row vector-op overhead loses to the scalar path.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is a core dependency, but the engine degrades without it
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy present in CI
    np = None
    HAVE_NUMPY = False

try:  # optional accelerator; never required
    from numba import njit  # type: ignore

    HAVE_NUMBA = True
except ImportError:
    njit = None
    HAVE_NUMBA = False

__all__ = [
    "HAVE_NUMBA",
    "HAVE_NUMPY",
    "KERNELS",
    "NUMPY_MIN_N",
    "BatchNeighborhood",
    "FlatInstance",
    "precedence_matrix",
    "resolve_kernel",
    "swap_feasibility_mask",
    "relocate_feasibility_mask",
]

KERNELS = ("auto", "scalar", "numpy", "numba")

#: ``auto`` switches to the numpy kernel at this instance size; below
#: it a full scalar scan is already a few milliseconds and the batch
#: per-row setup does not pay for itself.
NUMPY_MIN_N = 48


def resolve_kernel(requested: Optional[str], n: int) -> str:
    """Map a requested kernel name to the one that will actually run.

    ``auto`` → numpy for large instances, scalar otherwise; ``numba``
    degrades to numpy when numba is missing; anything degrades to
    scalar when numpy is missing.
    """
    kernel = requested or os.environ.get("REPRO_KERNEL") or "auto"
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}, expected one of {KERNELS}")
    if not HAVE_NUMPY:
        return "scalar"
    if kernel == "numba" and not HAVE_NUMBA:
        kernel = "numpy"
    if kernel == "auto":
        kernel = "numpy" if n >= NUMPY_MIN_N else "scalar"
    return kernel


# ----------------------------------------------------------------------
# Instance lowering
# ----------------------------------------------------------------------
class FlatInstance:
    """A :class:`ProblemInstance` lowered to contiguous numpy arrays.

    Layout (all arrays C-contiguous; see ARCHITECTURE.md):

    * ``plan_query[p]``, ``plan_speedup[p]``, ``plan_nmem[p]`` — per-plan
      query id, speedup, member count.
    * ``plan_members[p, :]`` — member index ids, padded with ``-1``
      (width = largest plan).
    * ``poi_indptr`` / ``poi_flat`` — CSR plans-of-index incidence.
    * ``ctime[i]``, ``qweight[q]``, ``base_runtime`` — cost vectors.
    * ``cs[t, h]`` — dense build-interaction matrix (saving on target
      ``t`` when helper ``h`` is already built; 0 when none).
    * ``itgt`` / ``ihlp`` / ``isav`` — the interaction triples, flat.

    The arrays are position-independent and picklable, so a future
    cross-process portfolio can share one copy per worker.
    """

    def __init__(self, instance) -> None:
        if not HAVE_NUMPY:  # pragma: no cover - exercised only sans numpy
            raise RuntimeError("FlatInstance requires numpy")
        n = instance.n_indexes
        plans = instance.plans
        self.instance = instance
        self.n = n
        self.n_queries = instance.n_queries
        self.n_plans = len(plans)
        self.plan_query = np.array(
            [p.query_id for p in plans], dtype=np.int32
        )
        self.plan_speedup = np.array(
            [p.speedup for p in plans], dtype=np.float64
        )
        self.plan_nmem = np.array(
            [len(p.indexes) for p in plans], dtype=np.int32
        )
        width = max((len(p.indexes) for p in plans), default=1)
        members = np.full((self.n_plans, width), -1, dtype=np.int32)
        for pid, plan in enumerate(plans):
            members[pid, : len(plan.indexes)] = sorted(plan.indexes)
        self.plan_members = members
        poi = [list(instance.plans_containing(i)) for i in range(n)]
        self.poi_indptr = np.zeros(n + 1, dtype=np.int64)
        self.poi_indptr[1:] = np.cumsum([len(p) for p in poi])
        self.poi_flat = np.array(
            [pid for ps in poi for pid in ps] or [], dtype=np.int32
        )
        self.ctime = np.array(
            [ix.create_cost for ix in instance.indexes], dtype=np.float64
        )
        self.qweight = np.array(
            [q.weight for q in instance.queries], dtype=np.float64
        )
        self.base_runtime = float(instance.total_base_runtime)
        self.cs = np.zeros((n, n), dtype=np.float64)
        tgt: List[int] = []
        hlp: List[int] = []
        sav: List[float] = []
        for target in range(n):
            for helper, saving in instance.build_helpers(target):
                self.cs[target, helper] = max(self.cs[target, helper], saving)
                tgt.append(target)
                hlp.append(helper)
                sav.append(saving)
        self.itgt = np.array(tgt, dtype=np.int32)
        self.ihlp = np.array(hlp, dtype=np.int32)
        self.isav = np.array(sav, dtype=np.float64)
        # queries touched by each index (through any of its plans).
        self.queries_of_index: List[List[int]] = [
            sorted({int(self.plan_query[pid]) for pid in poi[i]})
            for i in range(n)
        ]

    def plans_of(self, index_id: int):
        """CSR slice of plan ids containing ``index_id``."""
        return self.poi_flat[
            self.poi_indptr[index_id] : self.poi_indptr[index_id + 1]
        ]


def precedence_matrix(constraints, n: int):
    """Bool matrix ``B[a, b]`` = "index a must precede index b"."""
    B = np.zeros((n, n), dtype=bool)
    if constraints is None:
        return B
    for b in range(n):
        mask = constraints.predecessor_mask(b)
        if mask:
            for a in range(n):
                if mask >> a & 1:
                    B[a, b] = True
    return B


def swap_feasibility_mask(order, constraints, scalar_check=None):
    """``(n, n)`` bool mask of precedence/consecutive-feasible swaps.

    Precedence is fully vectorized; the handful of cells whose swap
    window touches a consecutive-pair member is re-checked with the
    injected ``scalar_check`` (``neighborhood.swap_feasible``) so the
    mask matches the scalar predicate cell-for-cell.
    """
    n = len(order)
    if constraints is None:
        return np.ones((n, n), dtype=bool)
    orderv = np.asarray(order, dtype=np.int64)
    B = precedence_matrix(constraints, n)
    PB = B[orderv][:, orderv]
    upper = np.triu(np.ones((n, n), dtype=bool), 1)
    # bad1[a, b] = any t in (a, b] with order[a] before order[t]
    bad1 = np.logical_or.accumulate(PB & upper, axis=1)
    # bad2[a, b] = any t in [a, b) with order[t] before order[b]
    bad2 = np.logical_or.accumulate((PB & upper)[::-1], axis=0)[::-1]
    feasible = ~(bad1 | bad2)
    feasible &= upper
    feasible |= feasible.T
    np.fill_diagonal(feasible, True)
    pairs = constraints.consecutive_pairs
    if pairs and scalar_check is not None:
        touched = set()
        pos = {int(ix): p for p, ix in enumerate(order)}
        for first, second in pairs:
            for member in (first, second):
                p = pos[member]
                touched.update(
                    q for q in (p - 1, p, p + 1) if 0 <= q < n
                )
        for a in range(n - 1):
            for b in range(a + 1, n):
                if a in touched or b in touched:
                    ok = scalar_check(order, a, b, constraints)
                    feasible[a, b] = feasible[b, a] = ok
    elif pairs:  # pragma: no cover - engine always injects the checker
        raise ValueError(
            "consecutive pairs present but no scalar checker injected"
        )
    return feasible


def relocate_feasibility_mask(order, src, constraints, scalar_check=None):
    """Length-``n`` bool vector: is relocating ``order[src]`` to ``dst`` ok."""
    n = len(order)
    if constraints is None:
        return np.ones(n, dtype=bool)
    orderv = np.asarray(order, dtype=np.int64)
    B = precedence_matrix(constraints, n)
    x = int(order[src])
    feasible = np.ones(n, dtype=bool)
    # forward: x may not jump over a required successor
    ahead = B[x][orderv]  # x must precede order[t]
    blocked = np.logical_or.accumulate(
        np.concatenate([np.zeros(src + 1, dtype=bool), ahead[src + 1 :]])
    )
    feasible &= ~blocked
    # backward: x may not jump over a required predecessor
    behind = B[:, x][orderv]  # order[t] must precede x
    rev = np.zeros(n, dtype=bool)
    rev[:src] = behind[:src]
    blocked_back = np.logical_or.accumulate(rev[::-1])[::-1]
    feasible &= ~blocked_back
    if constraints.consecutive_pairs and scalar_check is not None:
        for dst in range(n):
            if feasible[dst]:
                feasible[dst] = scalar_check(order, src, dst, constraints)
    return feasible


# ----------------------------------------------------------------------
# Per-base precomputation
# ----------------------------------------------------------------------
class _SwapBase:
    """Everything the kernels precompute for one base order."""

    def __init__(self, flat: FlatInstance, order: Sequence[int]) -> None:
        n, m, P = flat.n, flat.n_queries, flat.n_plans
        self.flat = flat
        self.order = np.asarray(order, dtype=np.int64)
        self.pos = np.empty(n, dtype=np.int64)
        self.pos[self.order] = np.arange(n)
        pos = self.pos

        # --- full base replay, recording per-step snapshots ----------
        R0 = np.empty(n + 1)
        QB0 = np.zeros((n + 1, m))
        cost0 = np.empty(n)
        sx0 = np.zeros(n)
        argh = np.full(n, -1, dtype=np.int64)
        Pfx = np.empty(n + 1)
        qbest = np.zeros(m)
        missing = flat.plan_nmem.astype(np.int64).tolist()
        built = bytearray(n)
        runtime = flat.base_runtime
        objective = 0.0
        # per-query support-change records: (q -> [(k_active_from, plan)])
        supp_events: List[List[Tuple[int, int]]] = [[] for _ in range(m)]
        cs = flat.cs
        qweight = flat.qweight
        plan_query = flat.plan_query
        plan_speedup = flat.plan_speedup
        for k in range(n):
            R0[k] = runtime
            QB0[k] = qbest
            Pfx[k] = objective
            i = int(self.order[k])
            best_saving = 0.0
            best_helper = -1
            row = cs[i]
            for h in np.nonzero(row)[0]:
                if built[h] and row[h] > best_saving:
                    best_saving = float(row[h])
                    best_helper = int(h)
            sx0[k] = best_saving
            argh[k] = best_helper
            cost0[k] = flat.ctime[i] - best_saving
            objective += runtime * cost0[k]
            built[i] = 1
            for pid in flat.plans_of(i):
                pid = int(pid)
                missing[pid] -= 1
                if missing[pid] == 0:
                    q = int(plan_query[pid])
                    s = float(plan_speedup[pid])
                    if s > qbest[q]:
                        runtime -= (s - qbest[q]) * qweight[q]
                        qbest[q] = s
                        supp_events[q].append((k + 1, pid))
        R0[n] = runtime
        QB0[n] = qbest
        Pfx[n] = objective
        self.R0, self.QB0, self.cost0, self.sx0 = R0, QB0, cost0, sx0
        self.argh, self.P = argh, Pfx
        self.objective = objective

        # --- hs[i, k]: best helper saving for i among positions < k --
        hs = np.zeros((n, n + 1))
        for t, h, s in zip(flat.itgt, flat.ihlp, flat.isav):
            lo = int(pos[h]) + 1
            np.maximum(hs[t, lo:], s, out=hs[t, lo:])
        self.hs = hs

        # --- plan completion data ------------------------------------
        mem = flat.plan_members
        mem_pos = np.where(mem >= 0, pos[np.clip(mem, 0, None)], -1)
        qL = mem_pos.max(axis=1)  # completion position per plan
        masked = np.where(mem_pos == qL[:, None], -1, mem_pos)
        q2 = masked.max(axis=1)  # second-last member position (-1 if 1)
        self.plan_qL, self.plan_q2 = qL, q2

        # completion events per query (CSR, sorted by position) — used
        # to rebuild a query's x-removed qbest trajectory per row.
        qsort = np.lexsort((qL, plan_query))
        self.evq_plan = qsort.astype(np.int64)
        self.evq_pos = qL[qsort]
        self.evq_s = plan_speedup[qsort]
        self.evq_indptr = np.searchsorted(
            plan_query[qsort], np.arange(m + 1)
        )

        # --- deviation cells -----------------------------------------
        # Group plans by (row = qL, query); within a group, sort by q2
        # and emit one cell per (segment step k), value = prefix-max A.
        groups: Dict[Tuple[int, int], List[int]] = {}
        for pid in range(P):
            groups.setdefault((int(qL[pid]), int(plan_query[pid])), []).append(
                pid
            )
        ck_l: List[np.ndarray] = []
        crow_l: List[np.ndarray] = []
        cq_l: List[np.ndarray] = []
        cA_l: List[np.ndarray] = []
        ncell_so_far = 0
        # per-x overrides as contiguous cell-id ranges:
        # x -> list of (first_cell, last_cell_exclusive, A_excl_x)
        seg_over: Dict[int, List[Tuple[int, int, float]]] = {}
        grow_l: List[int] = []
        gq_l: List[int] = []
        gA_l: List[float] = []
        self.group_plans: Dict[Tuple[int, int], List[int]] = groups
        g_over: Dict[int, List[Tuple[int, float]]] = {}
        speed = plan_speedup
        pmembers = [
            frozenset(int(v) for v in mem[pid] if v >= 0) for pid in range(P)
        ]
        for (row, q), pids in groups.items():
            pids.sort(key=lambda pid: int(q2[pid]))
            gi = len(grow_l)
            grow_l.append(row)
            gq_l.append(q)
            g_max = max(float(speed[pid]) for pid in pids)
            gA_l.append(g_max)
            memset = frozenset().union(*(pmembers[pid] for pid in pids))
            for x in memset:
                excl = [
                    float(speed[pid])
                    for pid in pids
                    if x not in pmembers[pid]
                ]
                a_excl = max(excl) if excl else 0.0
                if a_excl != g_max:
                    g_over.setdefault(x, []).append((gi, a_excl))
            # segments over k in (q2_j, next boundary]
            bounds = [int(q2[pid]) for pid in pids] + [int(row)]
            pref = 0.0
            active: List[int] = []
            for j, pid in enumerate(pids):
                pref = max(pref, float(speed[pid]))
                active.append(pid)
                lo = bounds[j] + 1
                hi = min(bounds[j + 1], row - 1) if j + 1 < len(pids) else row - 1
                if lo > hi:
                    continue
                first_cell = ncell_so_far
                count = hi - lo + 1
                ck_l.append(np.arange(lo, hi + 1, dtype=np.int64))
                crow_l.append(np.full(count, row, dtype=np.int64))
                cq_l.append(np.full(count, q, dtype=np.int64))
                cA_l.append(np.full(count, pref))
                ncell_so_far += count
                # corrections: members of any active plan that attains
                # the prefix max; excluding their plans changes A.
                actset = frozenset().union(
                    *(pmembers[apid] for apid in active)
                )
                for x in actset:
                    excl = [
                        float(speed[apid])
                        for apid in active
                        if x not in pmembers[apid]
                    ]
                    a_excl = max(excl) if excl else 0.0
                    if a_excl != pref:
                        seg_over.setdefault(x, []).append(
                            (first_cell, ncell_so_far, a_excl)
                        )
        if ck_l:
            self.ck = np.concatenate(ck_l)
            self.crow = np.concatenate(crow_l)
            self.cq = np.concatenate(cq_l)
            self.cA = np.concatenate(cA_l)
        else:
            self.ck = np.zeros(0, dtype=np.int64)
            self.crow = np.zeros(0, dtype=np.int64)
            self.cq = np.zeros(0, dtype=np.int64)
            self.cA = np.zeros(0)
        self.grow = np.array(grow_l, dtype=np.int64)
        self.gq = np.array(gq_l, dtype=np.int64)
        self.gA = np.array(gA_l, dtype=np.float64)
        ncell = len(self.ck)
        if ncell:
            self.valbase = (
                qweight[self.cq]
                * np.maximum(self.cA - QB0[self.ck, self.cq], 0.0)
                * cost0[self.ck]
            )
            Mflat = np.bincount(
                self.crow * n + self.ck, weights=self.valbase, minlength=n * n
            )
            self.M = Mflat.reshape(n, n)
        else:
            self.valbase = np.zeros(0)
            self.M = np.zeros((n, n))
        self.CUMM = np.cumsum(self.M, axis=1)
        self.rowtot = self.M.sum(axis=1)
        if len(self.grow):
            self.gvalbase = qweight[self.gq] * np.maximum(
                self.gA - QB0[self.grow, self.gq], 0.0
            )
            self.DR0 = np.bincount(
                self.grow, weights=self.gvalbase, minlength=n
            )
        else:
            self.gvalbase = np.zeros(0)
            self.DR0 = np.zeros(n)

        # --- per-x correction id/value arrays ------------------------
        # (a) steps where x supported the base qbest of some query;
        # (b) cells/groups whose running max involves an x-plan;
        # (c) steps where x was the best build helper (cost0 != costx).
        empty_i = np.zeros(0, dtype=np.int64)
        cell_sort = np.lexsort((self.ck, self.cq)) if ncell else empty_i
        cq_sorted = self.cq[cell_sort] if ncell else empty_i
        ck_sorted = self.ck[cell_sort] if ncell else empty_i
        q_starts = np.searchsorted(cq_sorted, np.arange(m + 1))
        ksort = np.argsort(self.ck, kind="stable") if ncell else empty_i
        ck_by_k = self.ck[ksort] if ncell else empty_i
        k_starts = np.searchsorted(ck_by_k, np.arange(n + 1))
        ngroups = len(self.grow)
        gsort = np.lexsort((self.grow, self.gq)) if ngroups else empty_i
        gq_sorted = self.gq[gsort] if ngroups else empty_i
        grow_sorted = self.grow[gsort] if ngroups else empty_i
        gq_starts = np.searchsorted(gq_sorted, np.arange(m + 1))
        supp_by_x: Dict[int, List[Tuple[int, int, int]]] = {}
        for q in range(m):
            events = supp_events[q]
            for idx, (k_from, pid) in enumerate(events):
                k_to = (
                    events[idx + 1][0] - 1 if idx + 1 < len(events) else n
                )
                for x in pmembers[pid]:
                    supp_by_x.setdefault(x, []).append((q, k_from, k_to))
        argh_pos: Dict[int, List[int]] = {}
        for k in range(n):
            if argh[k] >= 0:
                argh_pos.setdefault(int(argh[k]), []).append(k)
        self.argh_pos = argh_pos
        self.xc_ids: List[np.ndarray] = []
        self.xc_A: List[np.ndarray] = []
        self.xg_ids: List[np.ndarray] = []
        self.xg_A: List[np.ndarray] = []
        for x in range(n):
            parts: List[np.ndarray] = []
            for q, k_from, k_to in supp_by_x.get(x, ()):  # (a)
                lo, hi = q_starts[q], q_starts[q + 1]
                sub = ck_sorted[lo:hi]
                c0 = lo + np.searchsorted(sub, k_from)
                c1 = lo + np.searchsorted(sub, k_to, side="right")
                parts.append(cell_sort[c0:c1])
            for k in argh_pos.get(x, ()):  # (c)
                parts.append(ksort[k_starts[k] : k_starts[k + 1]])
            overrides = seg_over.get(x, ())  # (b)
            ov_ids = (
                np.concatenate(
                    [np.arange(f, l, dtype=np.int64) for f, l, _ in overrides]
                )
                if overrides
                else empty_i
            )
            ov_vals = (
                np.concatenate(
                    [np.full(l - f, a) for f, l, a in overrides]
                )
                if overrides
                else np.zeros(0)
            )
            parts.append(ov_ids)
            ids = np.concatenate(parts) if parts else empty_i
            if len(ids):
                uids = np.unique(ids)
                avals = self.cA[uids].copy()
                if len(ov_ids):
                    avals[np.searchsorted(uids, ov_ids)] = ov_vals
                self.xc_ids.append(uids)
                self.xc_A.append(avals)
            else:
                self.xc_ids.append(empty_i)
                self.xc_A.append(np.zeros(0))
            gparts: List[np.ndarray] = []
            for q, k_from, k_to in supp_by_x.get(x, ()):
                lo, hi = gq_starts[q], gq_starts[q + 1]
                sub = grow_sorted[lo:hi]
                c0 = lo + np.searchsorted(sub, k_from)
                c1 = lo + np.searchsorted(sub, k_to, side="right")
                gparts.append(gsort[c0:c1])
            gover = g_over.get(x, ())
            gov_ids = np.array([gi for gi, _ in gover], dtype=np.int64)
            gov_vals = np.array([a for _, a in gover])
            gparts.append(gov_ids)
            gids = np.concatenate(gparts) if gparts else empty_i
            if len(gids):
                ugids = np.unique(gids)
                gvals = self.gA[ugids].copy()
                if len(gov_ids):
                    gvals[np.searchsorted(ugids, gov_ids)] = gov_vals
                self.xg_ids.append(ugids)
                self.xg_A.append(gvals)
            else:
                self.xg_ids.append(empty_i)
                self.xg_A.append(np.zeros(0))

        # interaction positions for the "y helps a window step" patches
        self.ikpos = pos[flat.itgt]
        self.ibpos = pos[flat.ihlp]

    # ------------------------------------------------------------------
    def _x_removed_baseline(self, a: int):
        """x-removed trajectory pieces for the row at position ``a``.

        Returns ``(Rminus, costx, sxv, qcols)``: runtime entering each
        step with ``x = order[a]`` deleted, the matching step costs and
        best-helper savings, and the rebuilt qbest columns for the
        queries that touch ``x``.
        """
        flat = self.flat
        n, x = flat.n, int(self.order[a])
        qcols: Dict[int, np.ndarray] = {}
        Rminus = self.R0.copy()
        for q in flat.queries_of_index[x]:
            lo, hi = self.evq_indptr[q], self.evq_indptr[q + 1]
            plans = self.evq_plan[lo:hi]
            keep = ~(flat.plan_members[plans] == x).any(axis=1)
            col = np.zeros(n + 2)
            if keep.any():
                np.maximum.at(
                    col, self.evq_pos[lo:hi][keep] + 1, self.evq_s[lo:hi][keep]
                )
            np.maximum.accumulate(col, out=col)
            col = col[: n + 1]
            qcols[q] = col
            Rminus += flat.qweight[q] * (self.QB0[:, q] - col)
        costx = self.cost0
        sxv = self.sx0
        patched = self.argh_pos.get(x)
        if patched:
            costx = costx.copy()
            sxv = sxv.copy()
            for k in patched:
                i = int(self.order[k])
                row = flat.cs[i]
                best = 0.0
                for h in np.nonzero(row)[0]:
                    if h != x and self.pos[h] < k and row[h] > best:
                        best = float(row[h])
                sxv[k] = best
                costx[k] = flat.ctime[i] - best
        return Rminus, costx, sxv, qcols

    def _qb_at(self, ks, qs, qcols):
        """x-removed qbest at (step, query) pairs, vectorized."""
        vals = self.QB0[ks, qs]
        for q, col in qcols.items():
            mask = qs == q
            if mask.any():
                vals[mask] = col[ks[mask]]
        return vals


# ----------------------------------------------------------------------
# The numpy kernels
# ----------------------------------------------------------------------
class BatchNeighborhood:
    """Batch move-scoring bound to one base order of one instance."""

    def __init__(self, flat: FlatInstance, order: Sequence[int]) -> None:
        self.flat = flat
        self.base = _SwapBase(flat, order)

    @property
    def base_objective(self) -> float:
        return self.base.objective

    # -- swaps ----------------------------------------------------------
    def score_swap_row(self, a: int):
        """Objectives of swapping position ``a`` with every ``b > a``."""
        sb, flat = self.base, self.flat
        n = flat.n
        if a >= n - 1:
            return np.zeros(0)
        x = int(sb.order[a])
        Rminus, costx, sxv, qcols = sb._x_removed_baseline(a)
        CC = np.concatenate(([0.0], np.cumsum(Rminus[:n] * costx)))
        bidx = np.arange(a + 1, n)
        yv = sb.order[bidx]

        # deviation-window term: base cells + per-x corrections
        SUFa = sb.rowtot - sb.CUMM[:, a]
        DCW = SUFa[bidx].copy()
        ids = sb.xc_ids[x]
        pcm = None
        if len(ids):
            ckI, cqI, crowI = sb.ck[ids], sb.cq[ids], sb.crow[ids]
            qv = sb._qb_at(ckI, cqI, qcols)
            valn = (
                flat.qweight[cqI]
                * np.maximum(sb.xc_A[x] - qv, 0.0)
                * costx[ckI]
            )
            corr = np.where(ckI > a, valn - sb.valbase[ids], 0.0)
            DCW += np.bincount(crowI, weights=corr, minlength=n)[bidx]
            pcm = np.bincount(
                crowI * n + ckI, weights=corr, minlength=n * n
            ).reshape(n, n)

        # retire-step deviation (the completed-early drop at k = b)
        DR = sb.DR0.copy()
        gids = sb.xg_ids[x]
        if len(gids):
            growI, gqI = sb.grow[gids], sb.gq[gids]
            gqv = sb._qb_at(growI, gqI, qcols)
            gvaln = flat.qweight[gqI] * np.maximum(sb.xg_A[x] - gqv, 0.0)
            DR += np.bincount(
                growI, weights=gvaln - sb.gvalbase[gids], minlength=n
            )
        Rb = Rminus[bidx] - DR[bidx]

        cost_y = flat.ctime[yv] - sb.hs[yv, a]
        retire_cost = flat.ctime[x] - np.maximum(
            sb.hs[x, bidx], flat.cs[x, yv]
        )
        O = (
            sb.P[a]
            + sb.R0[a] * cost_y
            + (CC[bidx] - CC[a + 1])
            - DCW
            + Rb * retire_cost
            + sb.P[n]
            - sb.P[bidx + 1]
        )

        # sparse "y is a build helper inside the window" cost patches
        karr, barr = sb.ikpos, sb.ibpos
        pmask = (karr > a) & (barr > karr)
        if pmask.any():
            kk = karr[pmask]
            bb = barr[pmask]
            gain = np.maximum(flat.isav[pmask] - sxv[kk], 0.0)
            S = sb.M[bb, kk] + (pcm[bb, kk] if pcm is not None else 0.0)
            delta = S / costx[kk]
            pv = -gain * (Rminus[kk] - delta)
            O += np.bincount(bb - (a + 1), weights=pv, minlength=n - a - 1)
        return O

    def score_swap_neighborhood(self):
        """Full ``(n, n)`` objective matrix for all pairwise swaps."""
        n = self.flat.n
        O = np.full((n, n), self.base.objective)
        for a in range(n - 1):
            row = self.score_swap_row(a)
            O[a, a + 1 :] = row
            O[a + 1 :, a] = row
        return O

    # -- inserts --------------------------------------------------------
    def score_insert_neighborhood(self, index_id: int):
        """Objectives of relocating ``index_id`` to every position."""
        sb, flat = self.base, self.flat
        n = flat.n
        x = int(index_id)
        src = int(sb.pos[x])
        O = np.full(n, sb.objective)
        # forward: remove x at src, re-insert after dst
        if src < n - 1:
            Rminus, costx, _, _ = sb._x_removed_baseline(src)
            CC = np.concatenate(([0.0], np.cumsum(Rminus[:n] * costx)))
            d = np.arange(src + 1, n)
            O[d] = (
                sb.P[src]
                + (CC[d + 1] - CC[src + 1])
                + Rminus[d + 1] * (flat.ctime[x] - sb.hs[x, d + 1])
                + sb.P[n]
                - sb.P[d + 1]
            )
        # backward: insert x early at dst < src
        if src > 0:
            Dx = np.zeros(n + 1)
            events: Dict[int, List[Tuple[int, float]]] = {}
            for pid in sb.flat.plans_of(x):
                pid = int(pid)
                others = [
                    int(v) for v in flat.plan_members[pid] if v >= 0 and v != x
                ]
                k_from = (
                    max(int(sb.pos[o]) for o in others) + 1 if others else 0
                )
                q = int(flat.plan_query[pid])
                events.setdefault(q, []).append(
                    (k_from, float(flat.plan_speedup[pid]))
                )
            for q, evs in events.items():
                col = np.zeros(n + 2)
                for k_from, s in evs:
                    col[k_from] = max(col[k_from], s)
                np.maximum.accumulate(col, out=col)
                Dx += flat.qweight[q] * np.maximum(
                    col[: n + 1] - sb.QB0[:, q], 0.0
                )
            sl = sb.order[:src]
            cpv = sb.cost0[:src] - np.maximum(
                flat.cs[sl, x] - sb.sx0[:src], 0.0
            )
            term = (sb.R0[:src] - Dx[:src]) * cpv
            TT = np.cumsum(term)
            d = np.arange(src)
            tail = TT[src - 1] - np.where(d > 0, TT[d - 1], 0.0)
            O[d] = (
                sb.P[d]
                + sb.R0[d] * (flat.ctime[x] - sb.hs[x, d])
                + tail
                + sb.P[n]
                - sb.P[src + 1]
            )
        return O


# ----------------------------------------------------------------------
# Optional numba kernel
# ----------------------------------------------------------------------
if HAVE_NUMBA:  # pragma: no cover - numba absent in the reference env

    @njit(cache=False)
    def _numba_swap_kernel(
        order,
        plan_query,
        plan_speedup,
        plan_nmem,
        poi_indptr,
        poi_flat,
        ctime,
        qweight,
        cs,
        base_runtime,
        P,
    ):
        n = order.shape[0]
        m = qweight.shape[0]
        nplans = plan_query.shape[0]
        out = np.full((n, n), P[n])
        # prefix state maintained incrementally over a
        missing0 = plan_nmem.copy()
        qbest0 = np.zeros(m)
        built0 = np.zeros(n, dtype=np.uint8)
        runtime0 = base_runtime
        objective0 = 0.0
        for a in range(n - 1):
            for b in range(a + 1, n):
                missing = missing0.copy()
                qbest = qbest0.copy()
                built = built0.copy()
                runtime = runtime0
                objective = objective0
                for k in range(a, b + 1):
                    if k == a:
                        i = order[b]
                    elif k == b:
                        i = order[a]
                    else:
                        i = order[k]
                    best = 0.0
                    for h in range(n):
                        if built[h] and cs[i, h] > best:
                            best = cs[i, h]
                    objective += runtime * (ctime[i] - best)
                    built[i] = 1
                    for pi in range(poi_indptr[i], poi_indptr[i + 1]):
                        pid = poi_flat[pi]
                        missing[pid] -= 1
                        if missing[pid] == 0:
                            q = plan_query[pid]
                            s = plan_speedup[pid]
                            if s > qbest[q]:
                                runtime -= (s - qbest[q]) * qweight[q]
                                qbest[q] = s
                    if k >= nplans:  # keep loop structure branch-free-ish
                        pass
                objective += P[n] - P[b + 1]
                out[a, b] = objective
                out[b, a] = objective
            # push order[a] onto the shared prefix state
            i = order[a]
            best = 0.0
            for h in range(n):
                if built0[h] and cs[i, h] > best:
                    best = cs[i, h]
            objective0 += runtime0 * (ctime[i] - best)
            built0[i] = 1
            for pi in range(poi_indptr[i], poi_indptr[i + 1]):
                pid = poi_flat[pi]
                missing0[pid] -= 1
                if missing0[pid] == 0:
                    q = plan_query[pid]
                    s = plan_speedup[pid]
                    if s > qbest0[q]:
                        runtime0 -= (s - qbest0[q]) * qweight[q]
                        qbest0[q] = s
        return out


def numba_swap_neighborhood(flat: FlatInstance, neigh: BatchNeighborhood):
    """Score all swaps with the jitted per-pair replay kernel."""
    if not HAVE_NUMBA:  # pragma: no cover
        raise RuntimeError("numba is not installed")
    sb = neigh.base
    return _numba_swap_kernel(
        sb.order,
        flat.plan_query.astype(np.int64),
        flat.plan_speedup,
        flat.plan_nmem.astype(np.int64),
        flat.poi_indptr,
        flat.poi_flat.astype(np.int64),
        flat.ctime,
        flat.qweight,
        flat.cs,
        flat.base_runtime,
        sb.P,
    )
