"""Unified incremental evaluation engine shared by every solver.

Historically each solver family paid for objective evaluation its own
way: :class:`~repro.core.objective.ObjectiveEvaluator` replays the full
order, :class:`~repro.core.objective.PrefixCachedEvaluator` replays
from the nearest checkpoint to the *end* of the order, and the exact
searches (A*, exhaustive branch-and-bound, CP) each re-derived runtime
states and carried one of two duplicated suffix bounds.

:class:`EvalEngine` is the single backend that replaces all of that.
It owns the flattened instance arrays and provides three capabilities:

1. **True delta evaluation** for local-search moves.  Bound to a base
   order via :meth:`set_base`, the engine evaluates a swap / insert /
   relocate by replaying only the *divergence window* of the move.  A
   permutation move leaves the deployed *set* at every position past
   the window identical to the base, and both the runtime ``R`` and the
   best build-interaction saving depend only on that set — so every
   suffix step contributes exactly what it contributed in the base
   order and the engine early-exits by adding the precomputed base
   suffix area.  :class:`~repro.core.objective.PrefixCachedEvaluator`
   replays the whole tail instead; the per-move saving is the entire
   suffix after the window.

2. A **memo layer** keyed on frozen built-sets (bitmask-encoded): the
   weighted total runtime of a built-set is cached across lookups, so
   subset-lattice searches (A*, subset DP) and bound evaluations stop
   recomputing identical states, and :class:`TranspositionTable`
   lets branch-and-bound searches prune permutation prefixes that
   reach an already-seen built-set at an equal-or-worse objective.

3. A single **bound provider**: :meth:`suffix_bound` is the density
   relaxation that previously lived in ``solvers.base.SuffixBound``
   (with the weaker ``R_final * sum minC`` floor that previously lived
   in ``ObjectiveEvaluator.lower_bound_suffix`` folded in as a floor).
   All tree searches consume this one bound.

Every capability records its work in :class:`EngineStats` so the
experiment harness can report cache hits and replayed-step savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.instance import ProblemInstance
from repro.errors import ValidationError

__all__ = [
    "EngineStats",
    "EvalEngine",
    "PrefixCursor",
    "TranspositionTable",
]

#: Checkpoint stride of ``PrefixCachedEvaluator`` — used only to account
#: the baseline "steps a prefix-cached replay would have executed" for
#: the same move sequence, so the harness can report the delta saving.
_BASELINE_STRIDE = 16

#: A move whose cursor re-alignment distance exceeds this is a "far
#: jump": random-pattern moves pay more for re-aligning the shared
#: cursor than for the window itself.  After a couple of far jumps on
#: the same base the engine snapshots the base trajectory once and
#: serves far windows directly from the snapshot, no re-alignment.
_SNAPSHOT_STRIDE = 16

#: Far jumps tolerated on one base before the snapshot table is built.
_SNAPSHOT_AFTER = 2

BuiltSet = Union[int, Iterable[int]]


@dataclass
class EngineStats:
    """Work counters for one :class:`EvalEngine`.

    Attributes:
        full_evals: Complete-order evaluations (full replay).
        delta_evals: Move evaluations answered through the base-order
            delta path.
        prefix_evals: Partial-order evaluations served by the shared
            prefix cursor (tree-search bound checks).
        replayed_steps: Deployment steps actually replayed by the delta
            path (cursor re-alignment plus divergence windows).
        baseline_steps: Steps a ``PrefixCachedEvaluator`` with its
            default checkpoint stride would have replayed for the same
            move sequence (checkpoint-to-end per move).
        prefix_steps: Steps replayed for state maintenance — tree-search
            bound checks and ``set_base`` re-alignment.  Kept separate
            from ``replayed_steps`` because the baseline excludes the
            checkpoint evaluator's equivalent ``set_base`` replays too,
            so the delta-vs-baseline comparison stays apples-to-apples.
        memo_hits: Built-set runtime memo hits.
        memo_misses: Built-set runtime memo misses.
        tt_states: Distinct built-sets recorded by transposition tables.
        tt_prunes: Search nodes pruned as transposition-dominated.
        batch_evals: Whole-neighborhood scans answered through
            ``eval_all_swaps`` / ``eval_all_inserts`` (any kernel).
        batch_moves: Moves scored inside vectorized batch scans (the
            scalar kernel's moves count as ``delta_evals`` instead).
        batch_numpy: Batch scans executed by the numpy kernel.
        batch_numba: Batch scans executed by the numba kernel.
    """

    full_evals: int = 0
    delta_evals: int = 0
    prefix_evals: int = 0
    replayed_steps: int = 0
    baseline_steps: int = 0
    prefix_steps: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    tt_states: int = 0
    tt_prunes: int = 0
    batch_evals: int = 0
    batch_moves: int = 0
    batch_numpy: int = 0
    batch_numba: int = 0

    @property
    def evaluations(self) -> int:
        """Total objective evaluations of any kind."""
        return (
            self.full_evals
            + self.delta_evals
            + self.prefix_evals
            + self.batch_moves
        )

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for experiment notes and logs."""
        return {
            "full_evals": self.full_evals,
            "delta_evals": self.delta_evals,
            "prefix_evals": self.prefix_evals,
            "replayed_steps": self.replayed_steps,
            "baseline_steps": self.baseline_steps,
            "prefix_steps": self.prefix_steps,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "tt_states": self.tt_states,
            "tt_prunes": self.tt_prunes,
            "batch_evals": self.batch_evals,
            "batch_moves": self.batch_moves,
            "batch_numpy": self.batch_numpy,
            "batch_numba": self.batch_numba,
        }

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.as_dict():
            setattr(self, name, 0)


class PrefixCursor:
    """Mutable deployment state with O(1)-amortized push/pop.

    The cursor holds the exact evaluation state (plan missing-counters,
    per-query best speed-up, built flags, runtime, objective) after
    deploying a stack of indexes, with undo records so a step can be
    popped in O(touched plans).  Successive prefixes that share a common
    stem cost only the difference — the mechanics behind both the
    engine's delta evaluation and the CP/B&B prefix bound checks.
    """

    def __init__(self, engine: "EvalEngine") -> None:
        self._e = engine
        self._missing = engine.plan_size[:]
        self._qbest = [0.0] * engine.instance.n_queries
        self._built = bytearray(engine.n)
        self.runtime = engine.base_runtime
        self.objective = 0.0
        self._stack: List[int] = []
        self._undo: List[tuple] = []

    @property
    def depth(self) -> int:
        """Number of deployed indexes on the cursor."""
        return len(self._stack)

    @property
    def stack(self) -> Tuple[int, ...]:
        """The deployed prefix, in order."""
        return tuple(self._stack)

    def push(self, index_id: int) -> None:
        """Deploy ``index_id`` on top of the current prefix."""
        e = self._e
        built = self._built
        best_saving = 0.0
        for helper, saving in e.helpers[index_id]:
            if built[helper] and saving > best_saving:
                best_saving = saving
        prev_objective = self.objective
        prev_runtime = self.runtime
        self.objective += self.runtime * (e.ctime[index_id] - best_saving)
        built[index_id] = 1
        runtime_delta = 0.0
        completed: List[tuple] = []
        missing = self._missing
        qbest = self._qbest
        for plan_id in e.plans_of_index[index_id]:
            missing[plan_id] -= 1
            if missing[plan_id] == 0:
                query_id = e.plan_query[plan_id]
                speedup = e.plan_speedup[plan_id]
                if speedup > qbest[query_id]:
                    runtime_delta += (speedup - qbest[query_id]) * e.qweight[
                        query_id
                    ]
                    completed.append((query_id, qbest[query_id]))
                    qbest[query_id] = speedup
        self.runtime -= runtime_delta
        self._stack.append(index_id)
        # Undo restores the exact prior floats (no subtract-back drift).
        self._undo.append((prev_objective, prev_runtime, completed))

    def pop(self) -> int:
        """Un-deploy the most recent index; returns its id."""
        index_id = self._stack.pop()
        prev_objective, prev_runtime, completed = self._undo.pop()
        for query_id, previous in reversed(completed):
            self._qbest[query_id] = previous
        self.runtime = prev_runtime
        for plan_id in self._e.plans_of_index[index_id]:
            self._missing[plan_id] += 1
        self._built[index_id] = 0
        self.objective = prev_objective
        return index_id

    def align(self, prefix: Sequence[int]) -> int:
        """Make the cursor state equal ``prefix``; returns pushes done."""
        stack = self._stack
        common = 0
        limit = min(len(prefix), len(stack))
        while common < limit and stack[common] == prefix[common]:
            common += 1
        while len(stack) > common:
            self.pop()
        pushes = 0
        for index_id in prefix[common:]:
            self.push(index_id)
            pushes += 1
        return pushes


class TranspositionTable:
    """Best known prefix objective per built-set, for dominance pruning.

    The suffix cost of a deployment depends only on the built *set*
    (both the runtime and every build-interaction saving are functions
    of the set), so a permutation-prefix that reaches a set already
    reached at an equal-or-better objective cannot lead anywhere new.
    One table is valid for one search (constraints restrict which
    prefixes are feasible, so tables must not be shared across solves
    with different constraint sets).
    """

    def __init__(self, stats: Optional[EngineStats] = None) -> None:
        self._best: Dict[int, float] = {}
        self._stats = stats

    def __len__(self) -> int:
        return len(self._best)

    def dominated(self, mask: int, objective: float) -> bool:
        """True (and prune) if ``mask`` was reached at <= ``objective``.

        Otherwise records ``objective`` as the new best for ``mask``.
        """
        best = self._best.get(mask)
        if best is not None and objective >= best - 1e-15:
            if self._stats is not None:
                self._stats.tt_prunes += 1
            return True
        if best is None and self._stats is not None:
            self._stats.tt_states += 1
        self._best[mask] = objective
        return False


class EvalEngine:
    """One evaluation backend shared by every solver over one instance.

    ``kernel`` selects how whole-neighborhood scans are computed:
    ``"scalar"`` (loop of delta evaluations), ``"numpy"`` (the
    vectorized kernels in :mod:`repro.core.batch`), ``"numba"`` (jitted
    per-pair replay; silently degrades to numpy when numba is missing),
    or ``"auto"`` (numpy above ``batch.NUMPY_MIN_N`` indexes, scalar
    below).  The default reads the ``REPRO_KERNEL`` environment
    variable, falling back to ``"auto"``.  Single-move methods
    (``eval_swap`` etc.) always use the scalar delta path.
    """

    def __init__(
        self, instance: ProblemInstance, kernel: Optional[str] = None
    ) -> None:
        self.instance = instance
        self.n = instance.n_indexes
        self.kernel = kernel
        # Flattened instance arrays — the one copy every consumer shares.
        self.plan_query = [p.query_id for p in instance.plans]
        self.plan_speedup = [p.speedup for p in instance.plans]
        self.plan_size = [len(p.indexes) for p in instance.plans]
        self.plans_of_index = [
            list(instance.plans_containing(i)) for i in range(self.n)
        ]
        self.helpers = [list(instance.build_helpers(i)) for i in range(self.n)]
        self.ctime = [ix.create_cost for ix in instance.indexes]
        self.qweight = [q.weight for q in instance.queries]
        self.base_runtime = instance.total_base_runtime
        self.stats = EngineStats()
        # Built-set memo (bitmask -> weighted total runtime).
        self._mask_runtime: Dict[int, float] = {}
        # Base-order delta state.
        self._base: Optional[Tuple[int, ...]] = None
        self._base_pos: Dict[int, int] = {}
        self._base_obj_prefix: List[float] = [0.0]
        self._base_cursor = PrefixCursor(self)
        # Arbitrary-prefix cursor for tree-search bound checks (kept
        # separate so prefix_state() never disturbs the delta base).
        self._path_cursor: Optional[PrefixCursor] = None
        # Bound-provider data, built on first use.
        self._bound_ready = False
        # Batch-kernel state: the flattened arrays persist across bases,
        # the per-base neighborhood cache is invalidated by set_base.
        self._flat = None
        self._batch_neigh = None
        self._base_gen = 0
        self._batch_gen = -1
        # Base-trajectory snapshots for far-jump moves (lazy, per base).
        self._snapshots: Optional[List[tuple]] = None
        self._far_jumps = 0

    # ------------------------------------------------------------------
    # Full evaluation
    # ------------------------------------------------------------------
    def check_order(self, order: Sequence[int]) -> None:
        """Raise :class:`ValidationError` unless ``order`` is a permutation."""
        if len(order) != self.n or set(order) != set(range(self.n)):
            raise ValidationError(
                f"order must be a permutation of 0..{self.n - 1}, got {order!r}"
            )

    def evaluate(self, order: Sequence[int]) -> float:
        """Objective of a complete order (full replay)."""
        self.check_order(order)
        self.stats.full_evals += 1
        objective, _, _ = self._replay(order)
        return objective

    def evaluate_prefix(
        self, prefix: Sequence[int]
    ) -> Tuple[float, float, float]:
        """``(objective, runtime, elapsed)`` after a partial order."""
        self.stats.prefix_evals += 1
        return self._replay(prefix)

    def _replay(self, seq: Sequence[int]) -> Tuple[float, float, float]:
        missing = self.plan_size[:]
        qbest = [0.0] * self.instance.n_queries
        built = bytearray(self.n)
        runtime = self.base_runtime
        objective = 0.0
        elapsed = 0.0
        plan_query = self.plan_query
        plan_speedup = self.plan_speedup
        qweight = self.qweight
        for index_id in seq:
            best_saving = 0.0
            for helper, saving in self.helpers[index_id]:
                if built[helper] and saving > best_saving:
                    best_saving = saving
            actual = self.ctime[index_id] - best_saving
            objective += runtime * actual
            elapsed += actual
            built[index_id] = 1
            for plan_id in self.plans_of_index[index_id]:
                missing[plan_id] -= 1
                if missing[plan_id] == 0:
                    query_id = plan_query[plan_id]
                    speedup = plan_speedup[plan_id]
                    if speedup > qbest[query_id]:
                        runtime -= (speedup - qbest[query_id]) * qweight[
                            query_id
                        ]
                        qbest[query_id] = speedup
        return objective, runtime, elapsed

    def prefix_state(self, prefix: Sequence[int]) -> Tuple[float, float]:
        """``(objective, runtime)`` of a prefix via the shared cursor.

        Successive calls that share a stem (a DFS walking its tree) pay
        only for the differing steps.
        """
        if self._path_cursor is None:
            self._path_cursor = PrefixCursor(self)
        self.stats.prefix_evals += 1
        cursor = self._path_cursor
        self.stats.prefix_steps += cursor.align(prefix)
        return cursor.objective, cursor.runtime

    # ------------------------------------------------------------------
    # Base-order delta evaluation
    # ------------------------------------------------------------------
    @property
    def base_order(self) -> Optional[Tuple[int, ...]]:
        """The order delta moves are relative to, or ``None``."""
        return self._base

    @property
    def base_objective(self) -> float:
        """Objective of the base order (``set_base`` must have run)."""
        if self._base is None:
            raise ValidationError("set_base() has not been called")
        return self._base_obj_prefix[-1]

    def set_base(self, order: Sequence[int]) -> float:
        """Adopt ``order`` as the delta base; returns its objective.

        Re-basing onto an order that shares a prefix with the previous
        base (a local-search step) replays only the differing suffix.
        """
        self.check_order(order)
        self._base = tuple(order)
        self._base_pos = {ix: pos for pos, ix in enumerate(order)}
        cursor = self._base_cursor
        self.stats.prefix_steps += cursor.align(self._base)
        # Per-position objective prefix sums enable the suffix early-exit:
        # _base_obj_prefix[k] is the objective after the first k steps.
        # The cursor's undo records hold the pre-push objective of every
        # base step, which is exactly that prefix sum.
        undo = cursor._undo
        prefix = [undo[k][0] for k in range(self.n)]
        prefix.append(cursor.objective)
        self._base_obj_prefix = prefix
        self.stats.full_evals += 1
        self._base_gen += 1
        self._snapshots = None
        self._far_jumps = 0
        return prefix[-1]

    def eval_swap(self, pos_a: int, pos_b: int) -> float:
        """Objective of the base with positions ``pos_a``/``pos_b`` swapped."""
        base = self._require_base()
        self._check_position(pos_a)
        self._check_position(pos_b)
        if pos_a == pos_b:
            self.stats.delta_evals += 1
            return self.base_objective
        if pos_a > pos_b:
            pos_a, pos_b = pos_b, pos_a
        window = list(base[pos_a : pos_b + 1])
        window[0], window[-1] = window[-1], window[0]
        return self._eval_window(pos_a, pos_b, window)

    def eval_relocate(self, src: int, dst: int) -> float:
        """Objective of the base with the index at ``src`` moved to ``dst``."""
        base = self._require_base()
        self._check_position(src)
        self._check_position(dst)
        if src == dst:
            self.stats.delta_evals += 1
            return self.base_objective
        if src < dst:
            window = list(base[src + 1 : dst + 1]) + [base[src]]
            return self._eval_window(src, dst, window)
        window = [base[src]] + list(base[dst:src])
        return self._eval_window(dst, src, window)

    def eval_insert(self, index_id: int, dst: int) -> float:
        """Objective of the base with ``index_id`` re-inserted at ``dst``."""
        self._require_base()
        try:
            src = self._base_pos[index_id]
        except KeyError:
            raise ValidationError(
                f"index {index_id} is not in the base order"
            ) from None
        return self.eval_relocate(src, dst)

    def evaluate_neighbor(self, order: Sequence[int]) -> float:
        """Objective of any permutation, replaying only its true divergence.

        The divergence window ``[first, last]`` (shared prefix *and*
        suffix trimmed) is further decomposed into *balanced chunks*: at
        any position inside the window where the multiset of deployed
        indexes so far equals the base's, the deployment state is
        exactly the base state, so the base-identical stretch that
        follows contributes its precomputed base area without replay.
        A scattered neighbor (the LNS relaxation shape) then replays
        only its changed runs, not the gaps between them.
        """
        base = self._require_base()
        n = self.n
        if len(order) != n:
            raise ValidationError(f"order must have length {n}, got {len(order)}")
        first = 0
        while first < n and order[first] == base[first]:
            first += 1
        if first == n:
            self.stats.delta_evals += 1
            return self.base_objective
        last = n - 1
        while order[last] == base[last]:
            last -= 1
        window = list(order[first : last + 1])
        if sorted(window) != sorted(base[first : last + 1]):
            raise ValidationError(
                "order is not a permutation of the base order"
            )
        # Balanced-chunk decomposition of the divergence window.
        chunks: List[Tuple[int, int]] = []
        imbalance: Dict[int, int] = {}
        open_start = -1
        for k in range(first, last + 1):
            placed, expected = order[k], base[k]
            if placed == expected and not imbalance:
                continue  # base-identical gap between chunks
            if open_start < 0:
                open_start = k
            if placed != expected:
                for moved, delta in ((placed, 1), (expected, -1)):
                    count = imbalance.get(moved, 0) + delta
                    if count:
                        imbalance[moved] = count
                    else:
                        imbalance.pop(moved, None)
            if not imbalance:
                chunks.append((open_start, k))
                open_start = -1
        if len(chunks) <= 1:
            return self._eval_window(first, last, window)
        if self._snapshots is None:
            self._far_jumps += 1
            if self._far_jumps > _SNAPSHOT_AFTER:
                self._build_snapshots()
        if self._snapshots is None:
            # Not yet worth snapshotting: one contiguous replay.
            return self._eval_window(first, last, window)
        prefix = self._base_obj_prefix
        objective = prefix[n]
        replayed = 0
        for chunk_first, chunk_last in chunks:
            chunk_window = list(order[chunk_first : chunk_last + 1])
            chunk_objective = self._replay_from_snapshot(
                chunk_first, chunk_window
            )
            objective += chunk_objective - prefix[chunk_last + 1]
            replayed += len(chunk_window)
        stats = self.stats
        stats.delta_evals += 1
        stats.replayed_steps += replayed
        checkpoint = (first // _BASELINE_STRIDE) * _BASELINE_STRIDE
        stats.baseline_steps += n - checkpoint
        return objective

    # ------------------------------------------------------------------
    # Batch neighborhood evaluation
    # ------------------------------------------------------------------
    def batch_kernel(self) -> str:
        """The kernel ``eval_all_*`` will actually run on this instance."""
        from repro.core import batch

        return batch.resolve_kernel(self.kernel, self.n)

    def _batch_neighborhood(self):
        from repro.core import batch

        if self._flat is None:
            self._flat = batch.FlatInstance(self.instance)
        if self._batch_neigh is None or self._batch_gen != self._base_gen:
            self._batch_neigh = batch.BatchNeighborhood(self._flat, self._base)
            self._batch_gen = self._base_gen
        return self._batch_neigh

    def eval_all_swaps(self, constraints=None):
        """Score every pairwise swap of the base order in one pass.

        Returns ``(objectives, feasible)``: an ``(n, n)`` symmetric
        matrix of swapped-order objectives (diagonal = base objective)
        and a matching boolean feasibility mask.  With the scalar
        kernel, infeasible cells are left at ``+inf`` (they are never
        scored); vector kernels score every cell and leave masking to
        the caller.  Requires :meth:`set_base`.
        """
        from repro.core import batch
        from repro.solvers.localsearch.neighborhood import swap_feasible

        base = self._require_base()
        n = self.n
        kernel = self.batch_kernel()
        self.stats.batch_evals += 1
        if kernel == "scalar":
            if batch.HAVE_NUMPY:
                import numpy as np

                objectives = np.full((n, n), float("inf"))
                np.fill_diagonal(objectives, self.base_objective)
                feasible = batch.swap_feasibility_mask(
                    base, constraints, swap_feasible
                )
            else:  # pragma: no cover - numpy present in CI
                objectives = [
                    [float("inf")] * n for _ in range(n)
                ]
                for k in range(n):
                    objectives[k][k] = self.base_objective
                feasible = [
                    [
                        swap_feasible(base, a, b, constraints)
                        for b in range(n)
                    ]
                    for a in range(n)
                ]
            for pos_a in range(n - 1):
                for pos_b in range(pos_a + 1, n):
                    if feasible[pos_a][pos_b]:
                        value = self.eval_swap(pos_a, pos_b)
                        objectives[pos_a][pos_b] = value
                        objectives[pos_b][pos_a] = value
            return objectives, feasible
        neigh = self._batch_neighborhood()
        if kernel == "numba":
            objectives = batch.numba_swap_neighborhood(self._flat, neigh)
            self.stats.batch_numba += 1
        else:
            objectives = neigh.score_swap_neighborhood()
            self.stats.batch_numpy += 1
        feasible = batch.swap_feasibility_mask(base, constraints, swap_feasible)
        self.stats.batch_moves += n * (n - 1) // 2
        return objectives, feasible

    def eval_all_inserts(self, index_id: int, constraints=None):
        """Score relocating ``index_id`` to every position in one pass.

        Returns ``(objectives, feasible)`` vectors of length ``n``
        (entry ``dst`` = objective of the base order with ``index_id``
        moved to position ``dst``).  Scalar-kernel infeasible cells are
        ``+inf``.  Requires :meth:`set_base`.
        """
        from repro.core import batch
        from repro.solvers.localsearch.neighborhood import relocate_feasible

        base = self._require_base()
        n = self.n
        try:
            src = self._base_pos[index_id]
        except KeyError:
            raise ValidationError(
                f"index {index_id} is not in the base order"
            ) from None
        kernel = self.batch_kernel()
        self.stats.batch_evals += 1
        if kernel == "scalar":
            if batch.HAVE_NUMPY:
                import numpy as np

                objectives = np.full(n, float("inf"))
                feasible = batch.relocate_feasibility_mask(
                    base, src, constraints, relocate_feasible
                )
            else:  # pragma: no cover - numpy present in CI
                objectives = [float("inf")] * n
                feasible = [
                    relocate_feasible(base, src, dst, constraints)
                    for dst in range(n)
                ]
            for dst in range(n):
                if feasible[dst]:
                    objectives[dst] = self.eval_relocate(src, dst)
            return objectives, feasible
        neigh = self._batch_neighborhood()
        # No jitted insert kernel: the numpy one is already a handful of
        # vector ops per call, so "numba" serves inserts through numpy.
        objectives = neigh.score_insert_neighborhood(index_id)
        self.stats.batch_numpy += 1
        feasible = batch.relocate_feasibility_mask(
            base, src, constraints, relocate_feasible
        )
        self.stats.batch_moves += n
        return objectives, feasible

    def _require_base(self) -> Tuple[int, ...]:
        if self._base is None:
            raise ValidationError("set_base() must be called before delta moves")
        return self._base

    def _check_position(self, position: int) -> None:
        if not 0 <= position < self.n:
            raise ValidationError(
                f"position must be in 0..{self.n - 1}, got {position}"
            )

    def _build_snapshots(self) -> None:
        """Record the base deployment state entering every position.

        One extra base replay plus O(n * (plans + queries)) copies, paid
        once per base and only after repeated far jumps; afterwards any
        window replay starts at its exact position with zero cursor
        re-alignment.
        """
        base = self._base
        missing = self.plan_size[:]
        qbest = [0.0] * self.instance.n_queries
        built = bytearray(self.n)
        runtime = self.base_runtime
        snapshots: List[tuple] = []
        for index_id in base:
            snapshots.append((missing[:], qbest[:], bytes(built), runtime))
            best_saving = 0.0
            for helper, saving in self.helpers[index_id]:
                if built[helper] and saving > best_saving:
                    best_saving = saving
            built[index_id] = 1
            for plan_id in self.plans_of_index[index_id]:
                missing[plan_id] -= 1
                if missing[plan_id] == 0:
                    query_id = self.plan_query[plan_id]
                    speedup = self.plan_speedup[plan_id]
                    if speedup > qbest[query_id]:
                        runtime -= (speedup - qbest[query_id]) * self.qweight[
                            query_id
                        ]
                        qbest[query_id] = speedup
        self._snapshots = snapshots

    def _replay_from_snapshot(self, first: int, window: List[int]) -> float:
        """Objective after replaying ``window`` from the ``first`` snapshot."""
        missing, qbest, built_bytes, runtime = self._snapshots[first]
        missing = missing[:]
        qbest = qbest[:]
        built = bytearray(built_bytes)
        objective = self._base_obj_prefix[first]
        plan_query = self.plan_query
        plan_speedup = self.plan_speedup
        plans_of_index = self.plans_of_index
        helpers = self.helpers
        ctime = self.ctime
        qweight = self.qweight
        for index_id in window:
            best_saving = 0.0
            for helper, saving in helpers[index_id]:
                if built[helper] and saving > best_saving:
                    best_saving = saving
            objective += runtime * (ctime[index_id] - best_saving)
            built[index_id] = 1
            for plan_id in plans_of_index[index_id]:
                missing[plan_id] -= 1
                if missing[plan_id] == 0:
                    query_id = plan_query[plan_id]
                    speedup = plan_speedup[plan_id]
                    if speedup > qbest[query_id]:
                        runtime -= (speedup - qbest[query_id]) * qweight[
                            query_id
                        ]
                        qbest[query_id] = speedup
        return objective

    def _eval_window(self, first: int, last: int, window: List[int]) -> float:
        """Replay ``window`` over base positions ``first..last`` inclusive.

        Past ``last`` the deployed set equals the base's at the same
        position, so the suffix contributes its base area unchanged —
        the early exit that distinguishes the engine from a
        checkpoint-replay evaluator.

        The base cursor is aligned (amortized: a scan of moves sharing a
        prefix re-aligns by single steps) and the window itself replays
        on throwaway scratch state, so a move evaluation allocates no
        undo records and never pops back.  Moves far from the cursor
        (random-pattern probes) instead start from a per-position base
        snapshot, built lazily after :data:`_SNAPSHOT_AFTER` far jumps,
        skipping the re-alignment entirely.
        """
        base = self._base
        cursor = self._base_cursor
        replayed = 0
        distance = (
            cursor.depth - first if cursor.depth > first else first - cursor.depth
        )
        if distance > _SNAPSHOT_STRIDE and self._snapshots is None:
            self._far_jumps += 1
            if self._far_jumps > _SNAPSHOT_AFTER:
                self._build_snapshots()
        if distance > _SNAPSHOT_STRIDE and self._snapshots is not None:
            objective = self._replay_from_snapshot(first, window)
            objective += (
                self._base_obj_prefix[self.n] - self._base_obj_prefix[last + 1]
            )
            stats = self.stats
            stats.delta_evals += 1
            stats.replayed_steps += len(window)
            checkpoint = (first // _BASELINE_STRIDE) * _BASELINE_STRIDE
            stats.baseline_steps += self.n - checkpoint
            return objective
        while cursor.depth > first:
            cursor.pop()
        while cursor.depth < first:
            cursor.push(base[cursor.depth])
            replayed += 1
        # Scratch replay of the window from the cursor's state.
        missing = cursor._missing[:]
        qbest = cursor._qbest[:]
        built = bytearray(cursor._built)
        runtime = cursor.runtime
        objective = cursor.objective
        plan_query = self.plan_query
        plan_speedup = self.plan_speedup
        plans_of_index = self.plans_of_index
        helpers = self.helpers
        ctime = self.ctime
        qweight = self.qweight
        for index_id in window:
            best_saving = 0.0
            for helper, saving in helpers[index_id]:
                if built[helper] and saving > best_saving:
                    best_saving = saving
            objective += runtime * (ctime[index_id] - best_saving)
            built[index_id] = 1
            for plan_id in plans_of_index[index_id]:
                missing[plan_id] -= 1
                if missing[plan_id] == 0:
                    query_id = plan_query[plan_id]
                    speedup = plan_speedup[plan_id]
                    if speedup > qbest[query_id]:
                        runtime -= (speedup - qbest[query_id]) * qweight[
                            query_id
                        ]
                        qbest[query_id] = speedup
        replayed += len(window)
        objective += (
            self._base_obj_prefix[self.n] - self._base_obj_prefix[last + 1]
        )
        stats = self.stats
        stats.delta_evals += 1
        stats.replayed_steps += replayed
        # What PrefixCachedEvaluator(stride=16) would have replayed for
        # the same candidate: nearest checkpoint at/before the first
        # divergence, then the entire tail.
        checkpoint = (first // _BASELINE_STRIDE) * _BASELINE_STRIDE
        stats.baseline_steps += self.n - checkpoint
        return objective

    # ------------------------------------------------------------------
    # Built-set memo layer
    # ------------------------------------------------------------------
    @staticmethod
    def mask_of(built: Iterable[int]) -> int:
        """Bitmask encoding of an iterable of index ids."""
        mask = 0
        for index_id in built:
            mask |= 1 << index_id
        return mask

    def runtime_of(self, built: BuiltSet) -> float:
        """Weighted total runtime for a built-set (memoized on bitmask)."""
        mask = built if isinstance(built, int) else self.mask_of(built)
        cached = self._mask_runtime.get(mask)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        self.stats.memo_misses += 1
        members = {i for i in range(self.n) if mask >> i & 1}
        value = self.instance.total_runtime(members)
        self._mask_runtime[mask] = value
        return value

    def build_cost_in(self, index_id: int, built: BuiltSet) -> float:
        """Build cost of ``index_id`` given a built-set (best helper applied)."""
        best_saving = 0.0
        if isinstance(built, int):
            for helper, saving in self.helpers[index_id]:
                if built >> helper & 1 and saving > best_saving:
                    best_saving = saving
        else:
            built_set = set(built)
            for helper, saving in self.helpers[index_id]:
                if helper in built_set and saving > best_saving:
                    best_saving = saving
        return self.ctime[index_id] - best_saving

    def new_transposition_table(self) -> TranspositionTable:
        """Fresh per-search transposition table wired to this engine's stats."""
        return TranspositionTable(self.stats)

    # ------------------------------------------------------------------
    # Bound provider
    # ------------------------------------------------------------------
    def _ensure_bound_data(self) -> None:
        if self._bound_ready:
            return
        instance = self.instance
        n = self.n
        self.min_cost = [instance.min_build_cost(i) for i in range(n)]
        self.final_runtime = self.runtime_of((1 << n) - 1)
        s_max = [0.0] * n
        for query in instance.queries:
            best_with: Dict[int, float] = {}
            for plan_id in instance.plans_of_query(query.query_id):
                plan = instance.plans[plan_id]
                value = plan.speedup * query.weight
                for member in plan.indexes:
                    if value > best_with.get(member, 0.0):
                        best_with[member] = value
            for member, value in best_with.items():
                s_max[member] += value
        self.s_max = s_max
        self.density_order = sorted(
            range(n),
            key=lambda i: -(s_max[i] / max(self.min_cost[i], 1e-12)),
        )
        self._bound_ready = True

    def suffix_bound(self, runtime_now: float, built: BuiltSet) -> float:
        """Admissible lower bound on the objective of any suffix.

        Relaxation: every remaining index ``i`` costs its minimum
        possible build cost ``minC(i)`` and drops the runtime by its
        maximum possible marginal speed-up ``S_max(i)``.  With fixed
        per-item costs and drops, the density-descending order
        (``S_max / minC``) minimizes the staircase area — a classic
        exchange argument — and that minimum lower-bounds the true
        suffix area of every feasible completion.  The simple bound
        ``R_final * sum minC`` is taken as a floor (the max of two
        admissible bounds is admissible).
        """
        self._ensure_bound_data()
        if not isinstance(built, int):
            built = self.mask_of(built)
        relaxed = 0.0
        runtime = runtime_now
        simple = 0.0
        min_cost = self.min_cost
        s_max = self.s_max
        final_runtime = self.final_runtime
        for index_id in self.density_order:
            if built >> index_id & 1:
                continue
            cost = min_cost[index_id]
            relaxed += runtime * cost
            simple += final_runtime * cost
            runtime -= s_max[index_id]
        return max(relaxed, simple)
