"""Objective-variant transforms (Section 4.4 of the paper).

The paper notes two variations of the objective that fit the same
machinery "with minor modifications":

* **query weighting** — "putting different weights on particular
  queries can be incorporated by simply scaling up or down runtimes of
  the queries";
* **total deployment time** — "one can consider minimizing the total
  deployment time, sum C_i, like [Bruno & Chaudhuri]".

Both are implemented here as *instance transforms*: the returned
instance is an ordinary :class:`ProblemInstance` whose area objective
equals the variant objective on the original instance, so every solver,
pruning analysis, and evaluator works unchanged.

For the deployment-time variant the trick is a single constant
"unit-runtime" query with no plans: the weighted runtime is then 1 at
every step and the area ``sum R_{k-1} C_k`` collapses to
``sum C_k`` — exactly the total deployment time, including build
interactions.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.instance import ProblemInstance, QueryDef
from repro.errors import ValidationError

__all__ = ["deploy_time_variant", "reweighted_variant"]


def deploy_time_variant(instance: ProblemInstance) -> ProblemInstance:
    """Variant whose area objective equals total deployment time.

    Queries and plans are replaced by one plan-less unit query; indexes,
    build interactions, and precedences are preserved.  Minimizing the
    standard objective on the result orders the deployment to exploit
    build interactions as aggressively as possible (the Bruno &
    Chaudhuri objective the paper contrasts with in Section 4.4).
    """
    return ProblemInstance(
        indexes=instance.indexes,
        queries=[QueryDef(0, "_unit_runtime", base_runtime=1.0)],
        plans=[],
        build_interactions=instance.build_interactions,
        precedences=instance.precedences,
        name=f"{instance.name}-deploytime",
    )


def reweighted_variant(
    instance: ProblemInstance,
    weights: Mapping[str, float],
    default: Optional[float] = None,
) -> ProblemInstance:
    """Variant with per-query weights scaled by name.

    Args:
        instance: The instance to reweight.
        weights: Query name -> multiplicative weight factor (applied on
            top of the query's existing weight).
        default: Factor for queries not named in ``weights``; ``None``
            keeps their current weight.

    Raises:
        ValidationError: If ``weights`` names an unknown query or a
            factor is not positive.
    """
    known = {query.name for query in instance.queries}
    unknown = set(weights) - known
    if unknown:
        raise ValidationError(
            f"reweighted_variant: unknown queries {sorted(unknown)}"
        )
    for name, factor in weights.items():
        if factor <= 0:
            raise ValidationError(
                f"reweighted_variant: weight for {name!r} must be "
                f"positive, got {factor}"
            )
    if default is not None and default <= 0:
        raise ValidationError("reweighted_variant: default must be positive")
    queries = []
    for query in instance.queries:
        factor = weights.get(query.name, default)
        weight = query.weight if factor is None else query.weight * factor
        queries.append(
            QueryDef(query.query_id, query.name, query.base_runtime, weight)
        )
    return ProblemInstance(
        indexes=instance.indexes,
        queries=queries,
        plans=instance.plans,
        build_interactions=instance.build_interactions,
        precedences=instance.precedences,
        name=f"{instance.name}-reweighted",
    )
