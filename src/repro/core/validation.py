"""Deep consistency checks for problem instances and solutions.

:class:`~repro.core.instance.ProblemInstance` validates structural
invariants at construction.  This module adds the *semantic* checks that
are cheap enough to run in tests and extraction pipelines but too strict
to enforce unconditionally (e.g. dominance of plan speed-ups is a
modelling convention, not a hard requirement).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.instance import ProblemInstance
from repro.errors import InfeasibleError, ValidationError

__all__ = ["lint_instance", "check_precedence_feasibility", "check_order_feasible"]


def lint_instance(instance: ProblemInstance) -> List[str]:
    """Return a list of human-readable warnings about an instance.

    An empty list means the instance looks healthy.  Warnings flag
    conditions that are legal but usually indicate an extraction bug:

    * a query whose plans can never beat its base runtime share,
    * duplicate plans (same query, same index set),
    * an index appearing in no plan and no build interaction (it can
      only ever hurt the objective),
    * a plan strictly dominated by a subset plan of the same query
      (larger index set, no larger speed-up).
    """
    warnings: List[str] = []
    seen_plan_keys = {}
    for plan in instance.plans:
        key = (plan.query_id, plan.indexes)
        if key in seen_plan_keys:
            warnings.append(
                f"duplicate plan for query {plan.query_id}: plans "
                f"{seen_plan_keys[key]} and {plan.plan_id} share index set"
            )
        else:
            seen_plan_keys[key] = plan.plan_id
    for plan in instance.plans:
        for other_id in instance.plans_of_query(plan.query_id):
            other = instance.plans[other_id]
            if (
                other.plan_id != plan.plan_id
                and other.indexes < plan.indexes
                and other.speedup >= plan.speedup
            ):
                warnings.append(
                    f"plan {plan.plan_id} is dominated by subset plan "
                    f"{other.plan_id} (query {plan.query_id})"
                )
                break
    for index in instance.indexes:
        used_in_plans = bool(instance.plans_containing(index.index_id))
        helps = bool(instance.build_helped(index.index_id))
        if not used_in_plans and not helps:
            warnings.append(
                f"index {index.index_id} ({index.name!r}) appears in no "
                f"plan and helps no build: it is pure overhead"
            )
    return warnings


def check_precedence_feasibility(instance: ProblemInstance) -> None:
    """Raise :class:`InfeasibleError` if precedence rules contain a cycle."""
    n = instance.n_indexes
    succ: List[List[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    for rule in instance.precedences:
        succ[rule.before].append(rule.after)
        indeg[rule.after] += 1
    stack = [i for i in range(n) if indeg[i] == 0]
    visited = 0
    while stack:
        node = stack.pop()
        visited += 1
        for nxt in succ[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                stack.append(nxt)
    if visited != n:
        raise InfeasibleError("precedence rules contain a cycle")


def check_order_feasible(
    instance: ProblemInstance, order: Sequence[int]
) -> None:
    """Validate ``order`` is a permutation satisfying all precedences.

    Raises:
        ValidationError: If ``order`` is not a permutation or violates a
            precedence rule.
    """
    n = instance.n_indexes
    if len(order) != n or set(order) != set(range(n)):
        raise ValidationError(
            f"order must be a permutation of 0..{n - 1}, got {order!r}"
        )
    position = {index_id: pos for pos, index_id in enumerate(order)}
    for rule in instance.precedences:
        if position[rule.before] > position[rule.after]:
            raise ValidationError(
                f"order violates precedence {rule.before} -> {rule.after}"
                + (f" ({rule.reason})" if rule.reason else "")
            )
