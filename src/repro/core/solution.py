"""Solution and solver-result value objects.

All solvers in :mod:`repro.solvers` return a :class:`SolveResult`, which
carries the best :class:`Solution` found, a machine-readable
:class:`SolveStatus`, search statistics, and an *anytime trace* — the
sequence of ``(elapsed_seconds, objective)`` improvements used to draw
the paper's Figure 11/12 curves.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.instance import ProblemInstance
from repro.core.objective import ObjectiveEvaluator
from repro.errors import ValidationError

__all__ = ["Solution", "SolveStatus", "SolveResult", "AnytimeTrace"]


@dataclass(frozen=True)
class Solution:
    """A deployment order together with its objective value."""

    order: Tuple[int, ...]
    objective: float

    @staticmethod
    def from_order(
        instance: ProblemInstance, order: Sequence[int]
    ) -> "Solution":
        """Evaluate ``order`` against ``instance`` and wrap it."""
        evaluator = ObjectiveEvaluator(instance)
        return Solution(tuple(order), evaluator.evaluate(order))

    def validate_against(self, instance: ProblemInstance) -> None:
        """Check the stored objective matches a fresh evaluation.

        Raises:
            ValidationError: On permutation or objective mismatch.
        """
        evaluator = ObjectiveEvaluator(instance)
        actual = evaluator.evaluate(self.order)
        if abs(actual - self.objective) > 1e-6 * max(1.0, abs(actual)):
            raise ValidationError(
                f"stored objective {self.objective} != evaluated {actual}"
            )


class SolveStatus(enum.Enum):
    """Terminal status of a solver run."""

    OPTIMAL = "optimal"
    """The solver proved the returned solution optimal."""

    FEASIBLE = "feasible"
    """A solution was found but optimality was not proved."""

    TIMEOUT = "timeout"
    """The budget expired; the best incumbent (if any) is returned."""

    DID_NOT_FINISH = "did_not_finish"
    """The solver gave up without any feasible solution (paper's "DF")."""

    INFEASIBLE = "infeasible"
    """The constraints admit no permutation at all."""


class AnytimeTrace:
    """Records ``(elapsed, objective)`` improvement events during a solve."""

    def __init__(self, clock: Optional[float] = None) -> None:
        self._start = time.perf_counter() if clock is None else clock
        self._events: List[Tuple[float, float]] = []

    def record(self, objective: float, elapsed: Optional[float] = None) -> None:
        """Record an incumbent improvement at the current (or given) time."""
        if elapsed is None:
            elapsed = time.perf_counter() - self._start
        self._events.append((elapsed, objective))

    @property
    def events(self) -> List[Tuple[float, float]]:
        """All recorded ``(elapsed_seconds, objective)`` improvements."""
        return list(self._events)

    def objective_at(self, elapsed: float) -> Optional[float]:
        """Best objective known at time ``elapsed``, or ``None``."""
        best: Optional[float] = None
        for when, objective in self._events:
            if when <= elapsed and (best is None or objective < best):
                best = objective
        return best


@dataclass
class SolveResult:
    """Outcome of one solver invocation."""

    solver: str
    status: SolveStatus
    solution: Optional[Solution]
    runtime: float
    nodes: int = 0
    trace: List[Tuple[float, float]] = field(default_factory=list)
    message: str = ""

    @property
    def objective(self) -> Optional[float]:
        """Objective of the returned solution, or ``None``."""
        return self.solution.objective if self.solution else None

    @property
    def proved_optimal(self) -> bool:
        """True when the solver proved optimality."""
        return self.status is SolveStatus.OPTIMAL

    def describe(self) -> str:
        """One-line human-readable summary."""
        objective = (
            f"{self.solution.objective:.4f}" if self.solution else "-"
        )
        return (
            f"{self.solver}: status={self.status.value} obj={objective} "
            f"nodes={self.nodes} time={self.runtime:.3f}s"
        )
