"""Objective evaluation for index deployment orders.

The objective (Section 4.1, equation 1) is the area under the
query-runtime-over-deployment-time curve::

    Obj(order) = sum_k  R_{k-1} * C_k

where ``R_{k-1}`` is the weighted total query runtime *before* the k-th
index finishes building and ``C_k`` is its build cost after applying the
best available build interaction.  Smaller is better: it rewards both
prompt query speed-ups (small ``R`` early) and short total deployment
time (small ``sum C_k``).

Two evaluators are provided:

* :class:`ObjectiveEvaluator` — stateless full evaluation, schedules and
  improvement curves.  This is the reference implementation every solver
  and test trusts.
* :class:`PrefixCachedEvaluator` — bound to a *base order*, it snapshots
  evaluation state at regular checkpoints so that the objective of a
  nearby order (e.g. after a swap) is computed by replaying only the
  changed suffix.

The production hot path of every solver is
:class:`repro.core.engine.EvalEngine`, which additionally early-exits
once a move's divergence window closes and memoizes built-set states;
the evaluators here remain the independent reference implementation the
parity tests pin the engine against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.instance import ProblemInstance
from repro.errors import ValidationError

__all__ = [
    "DeploymentStep",
    "DeploymentSchedule",
    "ObjectiveEvaluator",
    "PrefixCachedEvaluator",
    "normalized_objective",
]


@dataclass(frozen=True)
class DeploymentStep:
    """One step of a deployment schedule.

    Attributes:
        position: 1-based position in the order.
        index_id: The index deployed at this step.
        start_time: Elapsed deployment time when the build starts.
        build_cost: Actual cost ``C_k`` (after build interactions).
        saving: Build-cost saving obtained from the best helper.
        helper_id: The helper index used, or ``None``.
        runtime_before: ``R_{k-1}``, weighted total query runtime during
            this build.
        runtime_after: ``R_k``, runtime once this index is available.
    """

    position: int
    index_id: int
    start_time: float
    build_cost: float
    saving: float
    helper_id: Optional[int]
    runtime_before: float
    runtime_after: float

    @property
    def finish_time(self) -> float:
        """Elapsed deployment time when this build completes."""
        return self.start_time + self.build_cost

    @property
    def area(self) -> float:
        """This step's contribution ``R_{k-1} * C_k`` to the objective."""
        return self.runtime_before * self.build_cost


@dataclass(frozen=True)
class DeploymentSchedule:
    """A fully evaluated deployment order.

    Produced by :meth:`ObjectiveEvaluator.schedule`; used by the
    experiment harness for Figure-13-style decompositions and improvement
    curves.
    """

    order: Tuple[int, ...]
    steps: Tuple[DeploymentStep, ...]
    objective: float

    @property
    def total_deploy_time(self) -> float:
        """Total wall time to deploy every index (``sum C_k``)."""
        if not self.steps:
            return 0.0
        return self.steps[-1].finish_time

    @property
    def final_runtime(self) -> float:
        """Weighted total query runtime once everything is deployed."""
        if not self.steps:
            return 0.0
        return self.steps[-1].runtime_after

    @property
    def average_runtime_during_deployment(self) -> float:
        """Time-averaged query runtime over the deployment window.

        This is the y-axis of Figure 13 (right axis is deployment time).
        Equals ``objective / total_deploy_time``.
        """
        total = self.total_deploy_time
        if total <= 0:
            return 0.0
        return self.objective / total

    def improvement_curve(self) -> List[Tuple[float, float]]:
        """Piecewise-constant ``(elapsed_time, runtime)`` curve.

        Starts at ``(0, R_0)`` and ends at ``(total_deploy_time, R_n)``;
        the area under this staircase is exactly :attr:`objective`.
        """
        if not self.steps:
            return []
        points: List[Tuple[float, float]] = [(0.0, self.steps[0].runtime_before)]
        for step in self.steps:
            points.append((step.finish_time, step.runtime_after))
        return points

    def total_build_saving(self) -> float:
        """Total build cost saved through build interactions."""
        return sum(step.saving for step in self.steps)


class ObjectiveEvaluator:
    """Reference evaluator for deployment orders over one instance.

    A full evaluation runs in ``O(sum of plan sizes + n * interactions)``
    by maintaining a per-plan missing-index counter: when an index is
    deployed, only plans containing it are touched, and a plan whose
    counter hits zero becomes available and may improve its query's best
    speed-up.
    """

    def __init__(self, instance: ProblemInstance) -> None:
        self.instance = instance
        self._n = instance.n_indexes
        self._plan_query = [p.query_id for p in instance.plans]
        self._plan_speedup = [p.speedup for p in instance.plans]
        self._plan_size = [len(p.indexes) for p in instance.plans]
        self._plans_of_index = [
            list(instance.plans_containing(i)) for i in range(self._n)
        ]
        self._helpers = [list(instance.build_helpers(i)) for i in range(self._n)]
        self._ctime = [ix.create_cost for ix in instance.indexes]
        self._qweight = [q.weight for q in instance.queries]
        self._r0 = instance.total_base_runtime

    # ------------------------------------------------------------------
    def check_order(self, order: Sequence[int]) -> None:
        """Raise :class:`ValidationError` unless ``order`` is a permutation."""
        if len(order) != self._n or set(order) != set(range(self._n)):
            raise ValidationError(
                f"order must be a permutation of 0..{self._n - 1}, got {order!r}"
            )

    def evaluate(self, order: Sequence[int]) -> float:
        """Return the objective value of a complete deployment order."""
        self.check_order(order)
        return self._evaluate_raw(order)

    def _evaluate_raw(self, order: Sequence[int]) -> float:
        missing = self._plan_size[:]
        qbest = [0.0] * self.instance.n_queries
        built = bytearray(self._n)
        runtime = self._r0
        objective = 0.0
        plan_query = self._plan_query
        plan_speedup = self._plan_speedup
        qweight = self._qweight
        for index_id in order:
            cost = self._ctime[index_id]
            best_saving = 0.0
            for helper, saving in self._helpers[index_id]:
                if built[helper] and saving > best_saving:
                    best_saving = saving
            objective += runtime * (cost - best_saving)
            built[index_id] = 1
            for plan_id in self._plans_of_index[index_id]:
                missing[plan_id] -= 1
                if missing[plan_id] == 0:
                    query_id = plan_query[plan_id]
                    speedup = plan_speedup[plan_id]
                    if speedup > qbest[query_id]:
                        runtime -= (speedup - qbest[query_id]) * qweight[query_id]
                        qbest[query_id] = speedup
        return objective

    def evaluate_prefix(
        self, prefix: Sequence[int]
    ) -> Tuple[float, float, float]:
        """Evaluate a partial order.

        Returns ``(prefix_objective, runtime_after_prefix, elapsed_time)``
        — the ingredients exact solvers use for branch-and-bound on
        partial sequences.
        """
        missing = self._plan_size[:]
        qbest = [0.0] * self.instance.n_queries
        built = bytearray(self._n)
        runtime = self._r0
        objective = 0.0
        elapsed = 0.0
        for index_id in prefix:
            cost = self._ctime[index_id]
            best_saving = 0.0
            for helper, saving in self._helpers[index_id]:
                if built[helper] and saving > best_saving:
                    best_saving = saving
            actual = cost - best_saving
            objective += runtime * actual
            elapsed += actual
            built[index_id] = 1
            for plan_id in self._plans_of_index[index_id]:
                missing[plan_id] -= 1
                if missing[plan_id] == 0:
                    query_id = self._plan_query[plan_id]
                    speedup = self._plan_speedup[plan_id]
                    if speedup > qbest[query_id]:
                        runtime -= (speedup - qbest[query_id]) * self._qweight[
                            query_id
                        ]
                        qbest[query_id] = speedup
        return objective, runtime, elapsed

    def schedule(self, order: Sequence[int]) -> DeploymentSchedule:
        """Evaluate ``order`` and return the full deployment schedule."""
        self.check_order(order)
        missing = self._plan_size[:]
        qbest = [0.0] * self.instance.n_queries
        built = bytearray(self._n)
        runtime = self._r0
        objective = 0.0
        elapsed = 0.0
        steps: List[DeploymentStep] = []
        for position, index_id in enumerate(order, start=1):
            cost = self._ctime[index_id]
            best_saving = 0.0
            best_helper: Optional[int] = None
            for helper, saving in self._helpers[index_id]:
                if built[helper] and saving > best_saving:
                    best_saving = saving
                    best_helper = helper
            actual = cost - best_saving
            runtime_before = runtime
            objective += runtime * actual
            built[index_id] = 1
            for plan_id in self._plans_of_index[index_id]:
                missing[plan_id] -= 1
                if missing[plan_id] == 0:
                    query_id = self._plan_query[plan_id]
                    speedup = self._plan_speedup[plan_id]
                    if speedup > qbest[query_id]:
                        runtime -= (speedup - qbest[query_id]) * self._qweight[
                            query_id
                        ]
                        qbest[query_id] = speedup
            steps.append(
                DeploymentStep(
                    position=position,
                    index_id=index_id,
                    start_time=elapsed,
                    build_cost=actual,
                    saving=best_saving,
                    helper_id=best_helper,
                    runtime_before=runtime_before,
                    runtime_after=runtime,
                )
            )
            elapsed += actual
        return DeploymentSchedule(tuple(order), tuple(steps), objective)


class PrefixCachedEvaluator:
    """Evaluator optimized for local-search move evaluation.

    Bound to a *base order* via :meth:`set_base`, it stores state
    snapshots every ``checkpoint_stride`` steps.  Evaluating a candidate
    order that agrees with the base on a prefix restores the nearest
    snapshot at or before the first divergence and replays only the
    suffix — for a random swap this roughly halves the work, and for the
    pair scans of TS-BSwap (sorted by first position) it does far better.
    """

    def __init__(
        self, instance: ProblemInstance, checkpoint_stride: int = 16
    ) -> None:
        if checkpoint_stride < 1:
            raise ValidationError("checkpoint_stride must be >= 1")
        self.instance = instance
        self.stride = checkpoint_stride
        self._full = ObjectiveEvaluator(instance)
        self._n = instance.n_indexes
        self._base: Optional[Tuple[int, ...]] = None
        self._snapshots: List[tuple] = []
        self.evaluations = 0

    @property
    def base_order(self) -> Optional[Tuple[int, ...]]:
        """The order snapshots were taken against, or ``None``."""
        return self._base

    def set_base(self, order: Sequence[int]) -> float:
        """Adopt ``order`` as the base; returns its objective."""
        self._full.check_order(order)
        self._base = tuple(order)
        self._snapshots = []
        ev = self._full
        missing = ev._plan_size[:]
        qbest = [0.0] * self.instance.n_queries
        built = bytearray(self._n)
        runtime = ev._r0
        objective = 0.0
        # Snapshot *before* step k for k = 0, stride, 2*stride, ...
        for position, index_id in enumerate(self._base):
            if position % self.stride == 0:
                self._snapshots.append(
                    (position, missing[:], qbest[:], bytes(built), runtime, objective)
                )
            cost = ev._ctime[index_id]
            best_saving = 0.0
            for helper, saving in ev._helpers[index_id]:
                if built[helper] and saving > best_saving:
                    best_saving = saving
            objective += runtime * (cost - best_saving)
            built[index_id] = 1
            for plan_id in ev._plans_of_index[index_id]:
                missing[plan_id] -= 1
                if missing[plan_id] == 0:
                    query_id = ev._plan_query[plan_id]
                    speedup = ev._plan_speedup[plan_id]
                    if speedup > qbest[query_id]:
                        runtime -= (speedup - qbest[query_id]) * ev._qweight[
                            query_id
                        ]
                        qbest[query_id] = speedup
        self._base_objective = objective
        self.evaluations += 1
        return objective

    def evaluate(self, order: Sequence[int]) -> float:
        """Evaluate any permutation, reusing base-prefix snapshots."""
        self.evaluations += 1
        if self._base is None:
            return self._full.evaluate(order)
        base = self._base
        n = self._n
        if len(order) != n:
            raise ValidationError(
                f"order must have length {n}, got {len(order)}"
            )
        diverge = 0
        while diverge < n and order[diverge] == base[diverge]:
            diverge += 1
        if diverge == n:
            return self._base_objective
        snap_idx = min(diverge // self.stride, len(self._snapshots) - 1)
        position, missing, qbest, built_bytes, runtime, objective = self._snapshots[
            snap_idx
        ]
        missing = missing[:]
        qbest = qbest[:]
        built = bytearray(built_bytes)
        ev = self._full
        for index_id in order[position:]:
            cost = ev._ctime[index_id]
            best_saving = 0.0
            for helper, saving in ev._helpers[index_id]:
                if built[helper] and saving > best_saving:
                    best_saving = saving
            objective += runtime * (cost - best_saving)
            built[index_id] = 1
            for plan_id in ev._plans_of_index[index_id]:
                missing[plan_id] -= 1
                if missing[plan_id] == 0:
                    query_id = ev._plan_query[plan_id]
                    speedup = ev._plan_speedup[plan_id]
                    if speedup > qbest[query_id]:
                        runtime -= (speedup - qbest[query_id]) * ev._qweight[
                            query_id
                        ]
                        qbest[query_id] = speedup
        return objective

    def evaluate_swap(self, pos_a: int, pos_b: int) -> float:
        """Objective of the base order with positions ``pos_a``/``pos_b`` swapped."""
        if self._base is None:
            raise ValidationError("set_base() must be called before evaluate_swap()")
        if pos_a == pos_b:
            return self._base_objective
        order = list(self._base)
        order[pos_a], order[pos_b] = order[pos_b], order[pos_a]
        return self.evaluate(order)


def normalized_objective(instance: ProblemInstance, objective: float) -> float:
    """Scale a raw objective to a unitless 0–100 score.

    100 corresponds to the worst-possible rectangle ``R_0 * sum ctime(i)``
    (no query ever speeds up, no build interaction exploited).  The
    paper's Table 7 reports objective values in the 40–75 range on this
    kind of scale, which makes instances of different absolute magnitude
    comparable.
    """
    worst = instance.total_base_runtime * instance.total_create_cost()
    if worst <= 0:
        return 0.0
    return 100.0 * objective / worst
