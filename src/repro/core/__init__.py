"""Core data model of the index deployment ordering problem.

Public surface:

* :class:`ProblemInstance` and its value objects (:class:`IndexDef`,
  :class:`QueryDef`, :class:`PlanDef`, :class:`BuildInteraction`,
  :class:`PrecedenceRule`),
* objective evaluation (:class:`ObjectiveEvaluator`,
  :class:`PrefixCachedEvaluator`, :class:`DeploymentSchedule`),
* the shared incremental evaluation backend (:class:`EvalEngine`),
* solver results (:class:`Solution`, :class:`SolveResult`,
  :class:`SolveStatus`),
* matrix-file I/O (:func:`save_instance`, :func:`load_instance`),
* density reduction (:func:`reduce_density`) and instance linting.
"""

from repro.core.density import DENSITY_LEVELS, reduce_density
from repro.core.engine import (
    EngineStats,
    EvalEngine,
    PrefixCursor,
    TranspositionTable,
)
from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    PrecedenceRule,
    ProblemInstance,
    QueryDef,
)
from repro.core.objective import (
    DeploymentSchedule,
    DeploymentStep,
    ObjectiveEvaluator,
    PrefixCachedEvaluator,
    normalized_objective,
)
from repro.core.serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.core.solution import AnytimeTrace, Solution, SolveResult, SolveStatus
from repro.core.transforms import deploy_time_variant, reweighted_variant
from repro.core.validation import (
    check_order_feasible,
    check_precedence_feasibility,
    lint_instance,
)

__all__ = [
    "BuildInteraction",
    "IndexDef",
    "PlanDef",
    "PrecedenceRule",
    "ProblemInstance",
    "QueryDef",
    "DeploymentSchedule",
    "DeploymentStep",
    "ObjectiveEvaluator",
    "PrefixCachedEvaluator",
    "EngineStats",
    "EvalEngine",
    "PrefixCursor",
    "TranspositionTable",
    "normalized_objective",
    "deploy_time_variant",
    "reweighted_variant",
    "instance_from_dict",
    "instance_to_dict",
    "load_instance",
    "save_instance",
    "AnytimeTrace",
    "Solution",
    "SolveResult",
    "SolveStatus",
    "check_order_feasible",
    "check_precedence_feasibility",
    "lint_instance",
    "reduce_density",
    "DENSITY_LEVELS",
]
