"""Ordering-constraint bookkeeping shared by analyses and solvers.

Every pruning property of Section 5 ultimately emits one of two kinds of
constraints over the position variables ``T``:

* a *precedence* ``T_a < T_b`` (colonized, dominated, disjoint, tails),
* a *consecutive pair* ``T_b = T_a + 1`` (alliances).

:class:`ConstraintSet` stores both, maintains the transitive closure of
the precedence relation as bitmasks (cheap for the |I| <= few hundred
sizes this problem has), detects contradictions eagerly, and offers the
queries solvers need: known predecessor/successor sets, position bounds,
and feasibility checks for complete orders.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import InfeasibleError, ValidationError

__all__ = ["ConstraintSet"]


class ConstraintSet:
    """A consistent set of ordering constraints over ``n`` indexes.

    The precedence relation is kept transitively closed at all times:
    after ``add_precedence(a, b)`` and ``add_precedence(b, c)``,
    ``is_before(a, c)`` is true.  Adding a constraint that contradicts
    the closure raises :class:`InfeasibleError`, which preserves the
    library invariant that a live ``ConstraintSet`` is always satisfiable
    by at least one permutation.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        self.n = n
        # _before[i] = bitmask of indexes known to precede i.
        self._before: List[int] = [0] * n
        # _after[i] = bitmask of indexes known to succeed i.
        self._after: List[int] = [0] * n
        # Consecutive pairs (a, b): T_b == T_a + 1.
        self._consecutive: List[Tuple[int, int]] = []
        self._direct_edges: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_precedence(self, before: int, after: int, reason: str = "") -> bool:
        """Require ``T_before < T_after``.

        Returns ``True`` if new information was added, ``False`` if the
        constraint was already implied.

        Raises:
            InfeasibleError: If the reverse ordering is already implied.
            ValidationError: On out-of-range or self-referential ids.
        """
        self._check_pair(before, after)
        bit_before = 1 << before
        bit_after = 1 << after
        if self._before[before] & bit_after:
            raise InfeasibleError(
                f"precedence {before} -> {after} contradicts existing "
                f"constraints" + (f" ({reason})" if reason else "")
            )
        if self._before[after] & bit_before:
            return False
        # Transitive update: everything <= before now precedes everything
        # >= after.
        left = self._before[before] | bit_before
        right = self._after[after] | bit_after
        for member in _bits(right):
            self._before[member] |= left
        for member in _bits(left):
            self._after[member] |= right
        self._direct_edges.add((before, after))
        return True

    def add_consecutive(self, first: int, second: int, reason: str = "") -> None:
        """Require ``T_second = T_first + 1`` (alliance constraint).

        Implies the precedence ``first -> second``.  The consecutive pair
        is also recorded so CP/local-search can keep the pair glued.
        """
        self._check_pair(first, second)
        self.add_precedence(first, second, reason=reason)
        pair = (first, second)
        if pair not in self._consecutive:
            self._consecutive.append(pair)

    def merge(self, other: "ConstraintSet") -> None:
        """Absorb all constraints of ``other`` into this set."""
        if other.n != self.n:
            raise ValidationError(
                f"cannot merge constraint sets of sizes {self.n} and {other.n}"
            )
        for before, after in other._direct_edges:
            self.add_precedence(before, after)
        for first, second in other._consecutive:
            self.add_consecutive(first, second)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_before(self, a: int, b: int) -> bool:
        """True when ``T_a < T_b`` is implied."""
        return bool(self._before[b] & (1 << a))

    def predecessors(self, i: int) -> Set[int]:
        """All indexes known to precede ``i``."""
        return set(_bits(self._before[i]))

    def successors(self, i: int) -> Set[int]:
        """All indexes known to succeed ``i``."""
        return set(_bits(self._after[i]))

    def predecessor_mask(self, i: int) -> int:
        """Bitmask of known predecessors of ``i``."""
        return self._before[i]

    def successor_mask(self, i: int) -> int:
        """Bitmask of known successors of ``i``."""
        return self._after[i]

    @property
    def consecutive_pairs(self) -> List[Tuple[int, int]]:
        """Recorded alliance pairs ``(first, second)``."""
        return list(self._consecutive)

    @property
    def precedence_edges(self) -> Set[Tuple[int, int]]:
        """Directly added precedence edges (not the closure)."""
        return set(self._direct_edges)

    def implied_pair_count(self) -> int:
        """Number of ordered pairs fixed by the closure.

        This is the quantity that shrinks the search space: each implied
        pair halves (roughly) the number of admissible permutations.
        """
        return sum(_popcount(mask) for mask in self._before)

    def position_bounds(self, i: int) -> Tuple[int, int]:
        """Inclusive 1-based position bounds ``(lo, hi)`` for index ``i``."""
        lo = _popcount(self._before[i]) + 1
        hi = self.n - _popcount(self._after[i])
        return lo, hi

    def check_order(self, order: Sequence[int]) -> bool:
        """True when a complete order satisfies every constraint."""
        position = {index_id: pos for pos, index_id in enumerate(order)}
        for b in range(self.n):
            pos_b = position[b]
            for a in _bits(self._before[b]):
                if position[a] >= pos_b:
                    return False
        for first, second in self._consecutive:
            if position[second] != position[first] + 1:
                return False
        return True

    def topological_order(self) -> List[int]:
        """Any order satisfying the precedences (ignores consecutiveness).

        Useful as a feasible starting point; consecutive pairs are then
        repaired by gluing the pair members together.
        """
        indeg = [_popcount(self._before[i]) for i in range(self.n)]
        # Kahn's algorithm over the closed relation still works: we peel
        # off indexes whose predecessor counts reach zero.
        remaining = set(range(self.n))
        order: List[int] = []
        while remaining:
            ready = sorted(
                i for i in remaining if not (self._before[i] & _mask(remaining))
            )
            if not ready:
                raise InfeasibleError("constraint set contains a cycle")
            nxt = ready[0]
            order.append(nxt)
            remaining.discard(nxt)
        return order

    def copy(self) -> "ConstraintSet":
        """Deep copy of this constraint set."""
        clone = ConstraintSet(self.n)
        clone._before = list(self._before)
        clone._after = list(self._after)
        clone._consecutive = list(self._consecutive)
        clone._direct_edges = set(self._direct_edges)
        return clone

    def summary(self) -> Dict[str, int]:
        """Counts used in experiment reports."""
        return {
            "direct_edges": len(self._direct_edges),
            "implied_pairs": self.implied_pair_count(),
            "consecutive_pairs": len(self._consecutive),
        }

    # ------------------------------------------------------------------
    def _check_pair(self, a: int, b: int) -> None:
        for value in (a, b):
            if not 0 <= value < self.n:
                raise ValidationError(
                    f"index {value} out of range 0..{self.n - 1}"
                )
        if a == b:
            raise ValidationError(f"constraint on a single index {a}")

    def __repr__(self) -> str:
        return (
            f"ConstraintSet(n={self.n}, edges={len(self._direct_edges)}, "
            f"implied={self.implied_pair_count()}, "
            f"consecutive={len(self._consecutive)})"
        )


def _bits(mask: int) -> Iterable[int]:
    """Yield set-bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


def _mask(values: Iterable[int]) -> int:
    out = 0
    for v in values:
        out |= 1 << v
    return out
