"""Alliance detection (Section 5.1, Appendix D.2).

An *alliance* is a set of indexes that appear in query plans only as a
complete group and have no build interactions crossing the group
boundary.  Building a strict subset of an alliance yields no query
speed-up, so Theorem 1 shows some optimal solution builds the whole
group consecutively — which lets us glue the members together with
``T_next = T_prev + 1`` constraints and effectively remove ``|group|-1``
decision variables.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance

__all__ = ["find_alliances", "apply_alliances", "best_internal_order"]

_EXACT_ORDER_LIMIT = 7


def find_alliances(instance: ProblemInstance) -> List[Tuple[int, ...]]:
    """Return alliance groups (each a tuple of >= 2 index ids).

    Two indexes are allied when they have identical plan-membership
    signatures (they appear in exactly the same plans) — this is the
    fixed point of the paper's overlap-breaking procedure — and no build
    interaction connects a member to a non-member.
    """
    signature: Dict[int, FrozenSet[int]] = {}
    for index in instance.indexes:
        signature[index.index_id] = frozenset(
            instance.plans_containing(index.index_id)
        )
    groups: Dict[FrozenSet[int], List[int]] = {}
    for index_id, sig in signature.items():
        if not sig:
            continue  # index serves no plan: not an alliance candidate
        groups.setdefault(sig, []).append(index_id)
    alliances: List[Tuple[int, ...]] = []
    for sig, members in sorted(groups.items(), key=lambda kv: min(kv[1])):
        if len(members) < 2:
            continue
        member_set = set(members)
        if _has_external_build_interaction(instance, member_set):
            continue
        alliances.append(tuple(sorted(members)))
    return alliances


def _has_external_build_interaction(
    instance: ProblemInstance, members: set
) -> bool:
    for member in members:
        for helper, _ in instance.build_helpers(member):
            if helper not in members:
                return True
        for target, _ in instance.build_helped(member):
            if target not in members:
                return True
    return False


def best_internal_order(
    instance: ProblemInstance, group: Sequence[int]
) -> List[int]:
    """Pick the cheapest internal order for an alliance group.

    While an alliance is being deployed no query speeds up (the group is
    incomplete), so the only order-dependent quantity is the total build
    cost via *intra-group* build interactions.  Small groups are solved
    exactly; larger ones greedily (cheapest next build).
    """
    members = list(group)
    if len(members) <= 1:
        return members
    has_internal = any(
        helper in group
        for member in members
        for helper, _ in instance.build_helpers(member)
    )
    if not has_internal:
        return sorted(members)
    if len(members) <= _EXACT_ORDER_LIMIT:
        best_order: List[int] = sorted(members)
        best_cost = _chain_cost(instance, best_order)
        for perm in itertools.permutations(sorted(members)):
            cost = _chain_cost(instance, perm)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_order = list(perm)
        return best_order
    # Greedy: repeatedly build the member that is currently cheapest.
    remaining = set(members)
    built: set = set()
    order: List[int] = []
    while remaining:
        nxt = min(
            remaining,
            key=lambda m: (instance.build_cost(m, built), m),
        )
        order.append(nxt)
        built.add(nxt)
        remaining.discard(nxt)
    return order


def _chain_cost(instance: ProblemInstance, order: Sequence[int]) -> float:
    built: set = set()
    total = 0.0
    for member in order:
        total += instance.build_cost(member, built)
        built.add(member)
    return total


def apply_alliances(
    instance: ProblemInstance, constraints: ConstraintSet
) -> int:
    """Detect alliances and add their consecutive-pair constraints.

    Returns the number of new constraints added.  Groups whose members
    are already ordered by existing constraints in a way that conflicts
    with the chosen internal order are left untouched (the existing
    constraints carry more specific information).
    """
    added = 0
    for group in find_alliances(instance):
        order = best_internal_order(instance, group)
        conflict = any(
            constraints.is_before(order[k + 1], order[k])
            for k in range(len(order) - 1)
        )
        if conflict:
            continue
        for first, second in zip(order, order[1:]):
            before = constraints.summary()
            constraints.add_consecutive(first, second, reason="alliance")
            after = constraints.summary()
            if after != before:
                added += 1
    return added
