"""Tail-index analysis (Sections 5.5–5.6, Appendix D.6).

For a fixed *set* of tail indexes, the preceding indexes — and therefore
every interaction they send into the tail — are determined, so the tail
contribution to the objective can be computed exactly for each feasible
internal order.  The cheapest order is the group's *champion* (Theorem
9), and any rule that holds in **every** champion holds in the optimal
solution (Theorem 10).

This module implements the rule the paper exploits in its TPC-H study:
when one index is the last element of every champion, it must be the
last deployed index.  The surrounding loop then fixes that index,
shrinks the active problem, and repeats (Section 5.6, iterate and
recurse).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.errors import InfeasibleError

__all__ = ["TailPattern", "enumerate_tail_patterns", "apply_tails"]

DEFAULT_MAX_PATTERNS = 20000


class TailPattern:
    """One feasible ordered tail with its exact tail objective."""

    __slots__ = ("order", "objective")

    def __init__(self, order: Tuple[int, ...], objective: float) -> None:
        self.order = order
        self.objective = objective

    @property
    def tail_set(self) -> frozenset:
        """The unordered set of tail indexes (the comparison group)."""
        return frozenset(self.order)

    def __repr__(self) -> str:
        arrow = "->".join(str(i) for i in self.order)
        return f"TailPattern({arrow}, obj={self.objective:.4f})"


def _tail_objective(
    instance: ProblemInstance, preceding: Set[int], order: Sequence[int]
) -> float:
    """Exact objective contribution of the tail steps.

    ``preceding`` is the set of indexes built before the tail begins; all
    their interactions into the tail are therefore determined.
    """
    built = set(preceding)
    objective = 0.0
    for index_id in order:
        runtime = instance.total_runtime(built)
        cost = instance.build_cost(index_id, built)
        objective += runtime * cost
        built.add(index_id)
    return objective


def _order_feasible(
    constraints: ConstraintSet,
    active: Set[int],
    tail_order: Sequence[int],
) -> bool:
    """Check a tail order against precedence and consecutive constraints."""
    position = {index_id: pos for pos, index_id in enumerate(tail_order)}
    members = set(tail_order)
    for pos, b in enumerate(tail_order):
        for a in constraints.predecessors(b):
            if a in position and position[a] >= pos:
                return False
    for first, second in constraints.consecutive_pairs:
        if first in members and second in members:
            if position[second] != position[first] + 1:
                return False
        elif second in members and first in active:
            # first precedes the whole tail, so second must open it.
            if position[second] != 0:
                return False
        elif first in members and second in active:
            # second must immediately follow first but is not in the tail.
            return False
    return True


def enumerate_tail_patterns(
    instance: ProblemInstance,
    constraints: ConstraintSet,
    active: Set[int],
    length: int,
    max_patterns: int = DEFAULT_MAX_PATTERNS,
) -> Optional[List[TailPattern]]:
    """Enumerate all feasible ordered tails of ``length`` within ``active``.

    Returns ``None`` when the enumeration would exceed ``max_patterns``
    (the analysis then gives up rather than pay unbounded pre-analysis
    cost, mirroring the paper's threshold ``k``).
    """
    if length > len(active):
        return []
    candidates = [
        t
        for t in sorted(active)
        if len(constraints.successors(t) & active) < length
    ]
    patterns: List[TailPattern] = []
    count = 0
    for combo in itertools.combinations(candidates, length):
        member_set = set(combo)
        # Successor closure: nothing outside the tail may be forced after
        # a tail member.
        if any(
            not (constraints.successors(t) & active) <= member_set
            for t in combo
        ):
            continue
        preceding = active - member_set
        for perm in itertools.permutations(combo):
            count += 1
            if count > max_patterns:
                return None
            if not _order_feasible(constraints, active, perm):
                continue
            objective = _tail_objective(instance, preceding, perm)
            patterns.append(TailPattern(tuple(perm), objective))
    return patterns


def _champions(patterns: List[TailPattern]) -> Dict[frozenset, TailPattern]:
    """Best pattern per tail set (Theorem 9)."""
    best: Dict[frozenset, TailPattern] = {}
    for pattern in patterns:
        key = pattern.tail_set
        incumbent = best.get(key)
        if incumbent is None or pattern.objective < incumbent.objective - 1e-12:
            best[key] = pattern
    return best


def _find_forced_last(
    instance: ProblemInstance,
    constraints: ConstraintSet,
    active: Set[int],
    max_patterns: int,
    max_length: int,
) -> Optional[int]:
    """Index that is last in every champion, or ``None``."""
    for length in range(2, max_length + 1):
        if length > len(active) - 1:
            break
        patterns = enumerate_tail_patterns(
            instance, constraints, active, length, max_patterns
        )
        if patterns is None:
            break  # enumeration threshold exceeded; stop growing
        if not patterns:
            continue
        champions = _champions(patterns)
        last_elements = {pattern.order[-1] for pattern in champions.values()}
        if len(last_elements) == 1:
            return next(iter(last_elements))
    return None


def apply_tails(
    instance: ProblemInstance,
    constraints: ConstraintSet,
    max_patterns: int = DEFAULT_MAX_PATTERNS,
    max_length: int = 4,
) -> int:
    """Iteratively pin forced-last indexes (Sections 5.5–5.6).

    Each round enumerates tail patterns over the still-active indexes; if
    one index closes every champion it is fixed to the end (precedences
    from every other active index) and the analysis recurses on the rest.

    Returns the number of new precedence constraints added.
    """
    added = 0
    active = set(range(instance.n_indexes))
    while len(active) >= 3:
        forced = _find_forced_last(
            instance, constraints, active, max_patterns, max_length
        )
        if forced is None:
            break
        for other in sorted(active - {forced}):
            try:
                if constraints.add_precedence(other, forced, reason="tail"):
                    added += 1
            except InfeasibleError:
                # Contradicts existing knowledge; abandon this round.
                return added
        active.discard(forced)
    return added
