"""Disjoint indexes and clusters (Section 5.4, Appendix D.5).

Two indexes *interact* when they appear together in a query plan, serve
the same query through competing plans, or share a build interaction.
Connected components of this interaction graph are *disjoint clusters*.

For a fully disjoint index (a singleton cluster), Theorems 4–6 show that
in an optimal solution the index sits at the unique *dip* of the density
curve: every prefix before it is denser, every suffix after it is less
dense.  For a pair of disjoint indexes this pins their relative order by
density (speed-up divided by build cost).

The *backward/forward-disjoint* generalization (Theorems 7–8) extends
the density argument to indexes in different clusters whose interacting
partners are already pinned to one side by existing constraints; this is
re-run each fixpoint iteration because constraints added by other
analyses keep unlocking new backward/forward-disjoint pairs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.errors import InfeasibleError

__all__ = [
    "interaction_graph",
    "disjoint_clusters",
    "index_density",
    "apply_disjoint",
]

_EPS = 1e-12


def interaction_graph(instance: ProblemInstance) -> List[Set[int]]:
    """Adjacency sets of the index-interaction graph."""
    n = instance.n_indexes
    adjacency: List[Set[int]] = [set() for _ in range(n)]

    def connect(a: int, b: int) -> None:
        if a != b:
            adjacency[a].add(b)
            adjacency[b].add(a)

    # Plan co-membership (query interactions).
    for plan in instance.plans:
        members = sorted(plan.indexes)
        for pos, a in enumerate(members):
            for b in members[pos + 1 :]:
                connect(a, b)
    # Competing interactions: different plans of the same query.
    for query in instance.queries:
        serving: Set[int] = set()
        for plan_id in instance.plans_of_query(query.query_id):
            serving |= instance.plans[plan_id].indexes
        serving_sorted = sorted(serving)
        for pos, a in enumerate(serving_sorted):
            for b in serving_sorted[pos + 1 :]:
                connect(a, b)
    # Build interactions.
    for bi in instance.build_interactions:
        connect(bi.target, bi.helper)
    return adjacency


def disjoint_clusters(instance: ProblemInstance) -> List[Set[int]]:
    """Connected components of the interaction graph."""
    adjacency = interaction_graph(instance)
    n = instance.n_indexes
    seen = [False] * n
    clusters: List[Set[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        component = {start}
        seen[start] = True
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    component.add(neighbor)
                    stack.append(neighbor)
        clusters.append(component)
    return clusters


def index_density(
    instance: ProblemInstance, index_id: int, context: Set[int]
) -> float:
    """``den_i = S(i, context) / C(i, context)``.

    ``context`` is the set of indexes assumed already built when
    ``index_id`` is deployed.
    """
    speedup = instance.total_runtime(context) - instance.total_runtime(
        context | {index_id}
    )
    cost = instance.build_cost(index_id, context)
    if cost <= _EPS:
        return float("inf")
    return speedup / cost


def _pinned_context(
    adjacency: Sequence[Set[int]],
    constraints: ConstraintSet,
    i: int,
    j: int,
) -> Tuple[bool, Set[int]]:
    """Check backward-disjointness of ``i`` regarding ``j``.

    ``i`` is backward-disjoint regarding ``j`` when every index
    interacting with ``i`` or ``j`` is already constrained after ``i`` or
    before ``j``.  When that holds, the context in which both densities
    are evaluated is exactly the set of indexes known to precede ``j``
    (those are built before ``j`` and hence before ``i`` in any
    ``j -> X -> i`` subsequence).

    Returns ``(holds, context)``.
    """
    interacting = (adjacency[i] | adjacency[j]) - {i, j}
    context: Set[int] = set(constraints.predecessors(j))
    for x in interacting:
        after_i = constraints.is_before(i, x)
        before_j = constraints.is_before(x, j)
        if not (after_i or before_j):
            return False, set()
    return True, context - {i, j}


def apply_disjoint(
    instance: ProblemInstance, constraints: ConstraintSet
) -> int:
    """Add density-based precedences between disjoint(-ish) indexes.

    Two tiers:

    1. Pure disjoint indexes (singleton clusters): totally ordered by
       density, descending — denser indexes first (Theorems 4–6).
    2. Backward/forward-disjoint pairs in *different* clusters under the
       current constraints (Theorems 7–8).

    Returns the number of new constraints added.
    """
    added = 0
    adjacency = interaction_graph(instance)
    clusters = disjoint_clusters(instance)
    cluster_of: Dict[int, int] = {}
    for cluster_id, members in enumerate(clusters):
        for member in members:
            cluster_of[member] = cluster_id

    # Tier 1: totally order the pure disjoint indexes by density.
    singletons = sorted(
        member for cluster in clusters if len(cluster) == 1 for member in cluster
    )
    useful_singletons = [
        s for s in singletons if instance.plans_containing(s)
    ]
    ranked = sorted(
        useful_singletons,
        key=lambda s: (-index_density(instance, s, set()), s),
    )
    for first, second in zip(ranked, ranked[1:]):
        try:
            if constraints.add_precedence(first, second, reason="disjoint"):
                added += 1
        except InfeasibleError:
            continue

    # Tier 2: backward/forward-disjoint pairs across clusters.
    n = instance.n_indexes
    for i in range(n):
        for j in range(n):
            if i == j or cluster_of[i] == cluster_of[j]:
                continue
            if constraints.is_before(i, j) or constraints.is_before(j, i):
                continue
            holds, context = _pinned_context(adjacency, constraints, i, j)
            if not holds:
                continue
            den_i = index_density(instance, i, context)
            den_j = index_density(instance, j, context)
            if den_i > den_j + _EPS:
                # i backward-disjoint regarding j and denser: i precedes j.
                try:
                    if constraints.add_precedence(
                        i, j, reason="backward-disjoint"
                    ):
                        added += 1
                except InfeasibleError:
                    continue
    return added
