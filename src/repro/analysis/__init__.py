"""Problem-specific pruning analyses (Section 5 of the paper).

The entry point is :func:`analyze`, which runs the selected property
passes (alliances, colonized, dominated, disjoint, tails) to a fixed
point and returns a :class:`ConstraintSet` that every solver in
:mod:`repro.solvers` can consume.
"""

from repro.analysis.alliances import apply_alliances, best_internal_order, find_alliances
from repro.analysis.colonized import apply_colonized, find_colonized
from repro.analysis.constraints import ConstraintSet
from repro.analysis.disjoint import (
    apply_disjoint,
    disjoint_clusters,
    index_density,
    interaction_graph,
)
from repro.analysis.dominated import apply_dominated, find_dominated
from repro.analysis.fixpoint import PROPERTY_ORDER, AnalysisReport, analyze
from repro.analysis.tails import TailPattern, apply_tails, enumerate_tail_patterns

__all__ = [
    "ConstraintSet",
    "AnalysisReport",
    "analyze",
    "PROPERTY_ORDER",
    "find_alliances",
    "apply_alliances",
    "best_internal_order",
    "find_colonized",
    "apply_colonized",
    "find_dominated",
    "apply_dominated",
    "interaction_graph",
    "disjoint_clusters",
    "index_density",
    "apply_disjoint",
    "TailPattern",
    "enumerate_tail_patterns",
    "apply_tails",
]
