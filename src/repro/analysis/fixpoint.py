"""Iterate-and-recurse pre-analysis driver (Section 5.6).

Each pruning property can unlock the others: fixing a tail index turns
interior indexes into backward-disjoint ones, new precedences tighten
dominance checks, and so on.  :func:`analyze` therefore repeats the
enabled passes until a fixed point — no pass adds a constraint — and
returns the accumulated :class:`ConstraintSet`.

The ``properties`` string selects which passes run, using the paper's
Table-6 drill-down letters:

* ``A`` — alliances,
* ``C`` — colonized indexes,
* ``M`` — min/max domination,
* ``D`` — disjoint indexes and clusters,
* ``T`` — tail indexes.

``"ACMDT"`` (the default) is the full pre-analysis; ``""`` disables all
pruning (the bare-CP baseline of Table 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.alliances import apply_alliances
from repro.analysis.colonized import apply_colonized
from repro.analysis.constraints import ConstraintSet
from repro.analysis.dominated import apply_dominated
from repro.analysis.disjoint import apply_disjoint
from repro.analysis.tails import apply_tails
from repro.core.instance import ProblemInstance
from repro.errors import ValidationError

__all__ = ["AnalysisReport", "analyze", "PROPERTY_ORDER"]

PROPERTY_ORDER = "ACMDT"


@dataclass
class AnalysisReport:
    """Outcome of the pre-analysis.

    Attributes:
        constraints: The accumulated constraint set (also contains the
            instance's hard precedence rules).
        added_by_property: Constraints contributed per property letter.
        iterations: Number of full passes until the fixed point.
        elapsed: Wall-clock seconds spent.
    """

    constraints: ConstraintSet
    added_by_property: Dict[str, int] = field(default_factory=dict)
    iterations: int = 0
    elapsed: float = 0.0

    @property
    def total_added(self) -> int:
        """Total constraints added by the analysis passes."""
        return sum(self.added_by_property.values())

    def describe(self) -> str:
        """One-line summary for experiment logs."""
        parts = ", ".join(
            f"{letter}:{count}"
            for letter, count in sorted(self.added_by_property.items())
        )
        return (
            f"analysis({parts}) iterations={self.iterations} "
            f"implied_pairs={self.constraints.implied_pair_count()} "
            f"elapsed={self.elapsed:.3f}s"
        )


def analyze(
    instance: ProblemInstance,
    properties: str = PROPERTY_ORDER,
    time_budget: Optional[float] = 60.0,
    max_tail_patterns: int = 20000,
) -> AnalysisReport:
    """Run the enabled pruning analyses to a fixed point.

    Args:
        instance: The problem to analyze.
        properties: Subset of ``"ACMDT"`` selecting the passes; order in
            the string is ignored (passes always run in paper order).
        time_budget: Soft wall-clock cap in seconds; the loop stops after
            the pass that exceeds it ("we only used additional
            constraints we could deduce within one minute", §8.1).
            ``None`` disables the cap.
        max_tail_patterns: Enumeration threshold for the tail analysis.

    Returns:
        An :class:`AnalysisReport` whose constraint set includes the
        instance's hard precedence rules plus everything deduced.
    """
    unknown = set(properties.upper()) - set(PROPERTY_ORDER)
    if unknown:
        raise ValidationError(
            f"unknown property letters {sorted(unknown)}; "
            f"expected subset of {PROPERTY_ORDER!r}"
        )
    enabled = set(properties.upper())
    constraints = ConstraintSet(instance.n_indexes)
    for rule in instance.precedences:
        constraints.add_precedence(rule.before, rule.after, reason=rule.reason)
    report = AnalysisReport(constraints=constraints)
    start = time.perf_counter()
    passes = {
        "A": lambda: apply_alliances(instance, constraints),
        "C": lambda: apply_colonized(instance, constraints),
        "M": lambda: apply_dominated(instance, constraints),
        "D": lambda: apply_disjoint(instance, constraints),
        "T": lambda: apply_tails(
            instance, constraints, max_patterns=max_tail_patterns
        ),
    }
    while True:
        report.iterations += 1
        added_this_round = 0
        for letter in PROPERTY_ORDER:
            if letter not in enabled:
                continue
            added = passes[letter]()
            report.added_by_property[letter] = (
                report.added_by_property.get(letter, 0) + added
            )
            added_this_round += added
            if time_budget is not None and (
                time.perf_counter() - start > time_budget
            ):
                report.elapsed = time.perf_counter() - start
                return report
        if added_this_round == 0:
            break
    report.elapsed = time.perf_counter() - start
    return report
