"""Dominated-index detection (Section 5.3, Appendix D.4).

Index ``i`` is *dominated* by ``k`` when building ``k`` always yields at
least the query speed-up of building ``i``, at no greater cost, in every
context (conditions 1–5 of Appendix D.4).  Theorem 3 then shows no
optimal solution builds ``i`` before ``k``, so we may add ``T_k < T_i``.

This implementation applies the conditions in their *provably sound*
special case, which matches the simplified setting the paper presents in
Section 5.3:

* both indexes participate only in **singleton plans** (so their benefit
  does not depend on partner indexes, only on competing plans), and
* neither index takes part in any **build interaction** (conditions 2,
  3 and 5 are then immediate).

Under those restrictions, per-query dominance of the singleton speed-ups
plus a cheaper creation cost implies all five conditions, and the swap
argument of Theorem 3 goes through verbatim.  The detection is
re-evaluated on each fixpoint iteration so indexes that *become*
effectively singleton after other reductions are caught.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.errors import InfeasibleError

__all__ = [
    "find_dominated",
    "find_useless",
    "apply_dominated",
    "singleton_speedups",
]

_EPS = 1e-12


def singleton_speedups(
    instance: ProblemInstance, index_id: int
) -> Dict[int, float]:
    """Best singleton-plan speed-up of ``index_id`` per query it serves."""
    result: Dict[int, float] = {}
    for plan_id in instance.plans_containing(index_id):
        plan = instance.plans[plan_id]
        if plan.indexes == frozenset([index_id]):
            if plan.speedup > result.get(plan.query_id, 0.0):
                result[plan.query_id] = plan.speedup
    return result


def _is_singleton_only(instance: ProblemInstance, index_id: int) -> bool:
    return all(
        len(instance.plans[pid].indexes) == 1
        for pid in instance.plans_containing(index_id)
    )


def _no_build_interactions(instance: ProblemInstance, index_id: int) -> bool:
    return not instance.build_helpers(index_id) and not instance.build_helped(
        index_id
    )


def find_dominated(instance: ProblemInstance) -> List[Tuple[int, int]]:
    """Return ``(dominated, dominator)`` pairs.

    Ties (identical speed-up vectors and costs) are broken by index id so
    the emitted relation stays antisymmetric.
    """
    candidates = [
        ix.index_id
        for ix in instance.indexes
        if _is_singleton_only(instance, ix.index_id)
        and _no_build_interactions(instance, ix.index_id)
        and instance.plans_containing(ix.index_id)
    ]
    speedups = {i: singleton_speedups(instance, i) for i in candidates}
    pairs: List[Tuple[int, int]] = []
    for i in candidates:
        for k in candidates:
            if i == k:
                continue
            if _dominates(instance, speedups, k, i):
                pairs.append((i, k))
    return pairs


def _dominates(
    instance: ProblemInstance,
    speedups: Dict[int, Dict[int, float]],
    k: int,
    i: int,
) -> bool:
    """True when ``k`` dominates ``i`` (build ``k`` first)."""
    cost_k = instance.indexes[k].create_cost
    cost_i = instance.indexes[i].create_cost
    if cost_k > cost_i + _EPS:
        return False
    s_i = speedups[i]
    s_k = speedups[k]
    # Condition 1 (per query): k's speed-up >= i's wherever i helps.
    for query_id, value in s_i.items():
        if s_k.get(query_id, 0.0) + _EPS < value:
            return False
    strictly_better = (
        cost_k < cost_i - _EPS
        or any(
            s_k.get(q, 0.0) > s_i.get(q, 0.0) + _EPS
            for q in set(s_i) | set(s_k)
        )
    )
    if strictly_better:
        return True
    # Complete tie: use id order as the canonical direction.
    return k < i


def find_useless(instance: ProblemInstance) -> List[int]:
    """Indexes serving no plan and helping no build.

    Deploying such an index can only delay everything after it, so some
    optimal solution builds all of them last (it may still *receive*
    build help, which only improves by being late).  This is the extreme
    case of domination: every other index dominates it.
    """
    return [
        ix.index_id
        for ix in instance.indexes
        if not instance.plans_containing(ix.index_id)
        and not instance.build_helped(ix.index_id)
    ]


def apply_dominated(
    instance: ProblemInstance, constraints: ConstraintSet
) -> int:
    """Add ``dominator -> dominated`` precedences; returns #new constraints."""
    added = 0
    useless = set(find_useless(instance))
    for u in sorted(useless):
        for other in range(instance.n_indexes):
            if other == u:
                continue
            if other in useless and other > u:
                continue  # order useless indexes among themselves by id
            if constraints.is_before(u, other):
                continue
            try:
                if constraints.add_precedence(other, u, reason="useless-last"):
                    added += 1
            except InfeasibleError:
                continue
    for dominated, dominator in find_dominated(instance):
        if constraints.is_before(dominated, dominator):
            continue
        try:
            if constraints.add_precedence(
                dominator, dominated, reason="dominated"
            ):
                added += 1
        except InfeasibleError:
            continue
    return added
