"""Colonized-index detection (Section 5.2, Appendix D.3).

An index ``i`` is *colonized* by ``j`` when every plan using ``i`` also
uses ``j`` (but not vice versa) and ``i`` has no build interaction that
speeds up other indexes.  Building ``i`` before ``j`` can never help any
query, so Theorem 2 shows some optimal solution builds the colonizer
first: we may add ``T_j < T_i``.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.constraints import ConstraintSet
from repro.core.instance import ProblemInstance
from repro.errors import InfeasibleError

__all__ = ["find_colonized", "apply_colonized"]


def find_colonized(instance: ProblemInstance) -> List[Tuple[int, int]]:
    """Return ``(colonized, colonizer)`` pairs.

    The colonizer relation must be strict — there is some plan using the
    colonizer without the colonized index — which keeps the emitted
    precedences acyclic (mutually-colonizing indexes have identical plan
    signatures and are handled by the alliance analysis instead).
    """
    pairs: List[Tuple[int, int]] = []
    for index in instance.indexes:
        i = index.index_id
        plan_ids = instance.plans_containing(i)
        if not plan_ids:
            continue
        if instance.build_helped(i):
            # i speeds up building another index: deferring i may lose
            # that interaction, so the theorem does not apply.
            continue
        colonizers: Set[int] = None  # type: ignore[assignment]
        for plan_id in plan_ids:
            members = set(instance.plans[plan_id].indexes) - {i}
            colonizers = members if colonizers is None else colonizers & members
            if not colonizers:
                break
        if not colonizers:
            continue
        for j in sorted(colonizers):
            # Strictness: j must appear in some plan without i.
            strict = any(
                i not in instance.plans[pid].indexes
                for pid in instance.plans_containing(j)
            )
            if strict:
                pairs.append((i, j))
    return pairs


def apply_colonized(
    instance: ProblemInstance, constraints: ConstraintSet
) -> int:
    """Add ``colonizer -> colonized`` precedences; returns #new constraints.

    A pair that would contradict existing constraints is skipped (the
    existing constraints may encode stronger problem knowledge, e.g. a
    hard precedence rule from the DBMS).
    """
    added = 0
    for colonized, colonizer in find_colonized(instance):
        if constraints.is_before(colonized, colonizer):
            continue
        try:
            if constraints.add_precedence(
                colonizer, colonized, reason="colonized"
            ):
                added += 1
        except InfeasibleError:
            continue
    return added
