"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError):
    """A problem instance, solution, or model failed consistency checks."""


class InfeasibleError(ReproError):
    """No feasible solution exists under the given constraints.

    Raised, for example, when precedence constraints contain a cycle so no
    permutation of the indexes can satisfy them.
    """


class BudgetExceeded(ReproError):
    """A solver exhausted its time or node budget before completing.

    Solvers normally report budget exhaustion through their result status
    rather than raising; this exception is reserved for callers that
    explicitly request strict budget enforcement.
    """


class SolverError(ReproError):
    """A solver reached an internal state it cannot recover from."""


class CatalogError(ReproError):
    """A DBMS catalog operation referenced an unknown or duplicate object."""


class QueryError(ReproError):
    """A query definition is malformed or references unknown schema objects."""
