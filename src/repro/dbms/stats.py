"""Cardinality and selectivity estimation.

Textbook System-R style estimates: equality selects ``1/distinct`` of a
column, ranges default to 1/3, IN probes ``values/distinct``; conjuncts
multiply under the independence assumption.  Join cardinalities use the
``|L| * |R| / max(d_L, d_R)`` rule on the join columns.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dbms.query import JoinEdge, Predicate, PredicateOp
from repro.dbms.schema import Table

__all__ = [
    "predicate_selectivity",
    "combined_selectivity",
    "filtered_rows",
    "join_cardinality",
    "DEFAULT_RANGE_SELECTIVITY",
]

DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

_MIN_SELECTIVITY = 1e-9


def predicate_selectivity(predicate: Predicate, table: Table) -> float:
    """Fraction of ``table`` rows passing ``predicate``."""
    if predicate.selectivity is not None:
        return predicate.selectivity
    column = table.column(predicate.column)
    if predicate.op is PredicateOp.EQ:
        return max(_MIN_SELECTIVITY, 1.0 / column.distinct)
    if predicate.op is PredicateOp.IN:
        return max(
            _MIN_SELECTIVITY,
            min(1.0, predicate.values / column.distinct),
        )
    return DEFAULT_RANGE_SELECTIVITY


def combined_selectivity(
    predicates: Sequence[Predicate], table: Table
) -> float:
    """Product of predicate selectivities (independence assumption)."""
    selectivity = 1.0
    for predicate in predicates:
        selectivity *= predicate_selectivity(predicate, table)
    return max(_MIN_SELECTIVITY, selectivity)


def filtered_rows(
    table: Table, predicates: Sequence[Predicate]
) -> float:
    """Estimated surviving rows after applying all filters."""
    return table.row_count * combined_selectivity(predicates, table)


def join_cardinality(
    left_rows: float,
    right_rows: float,
    left_distinct: int,
    right_distinct: int,
) -> float:
    """Equi-join output estimate ``|L|*|R| / max(dL, dR)``."""
    denominator = max(left_distinct, right_distinct, 1)
    return max(1.0, left_rows * right_rows / denominator)
