"""Index build-cost model with build interactions (Section 4.2).

Building a B-tree costs: read the source, sort the entries, write the
leaf level.  Existing indexes create the paper's *build interactions*:

* **covering source** — if an existing index stores every column the new
  index needs, the build scans its (narrower) leaf level instead of the
  heap: ``i1(City)`` built from ``i2(City, Salary)``,
* **sort avoidance** — if the source index's key order already matches
  the new index's full key sequence, the sort is skipped entirely; a
  matching first key column lets the sort run on nearly-sorted runs at
  half cost: ``i2(City, Salary)`` built after ``i1(City)``.

The paper observed up to ~80% single-index build savings from these
effects; this model reproduces that range (wide table, narrow index).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.dbms.catalog import Catalog
from repro.dbms.optimizer import CostModel
from repro.dbms.schema import IndexSpec, Table

__all__ = ["BuildCostModel"]

_PARTIAL_SORT_FACTOR = 0.5
_MIN_SAVING_FRACTION = 0.01


class BuildCostModel:
    """Estimates index creation costs and pairwise build savings."""

    def __init__(
        self, catalog: Catalog, cost_model: Optional[CostModel] = None
    ) -> None:
        self.catalog = catalog
        self.cost = cost_model or CostModel()

    # ------------------------------------------------------------------
    def base_cost(self, spec: IndexSpec) -> float:
        """Cost of building ``spec`` from the heap with no helpers."""
        table = self.catalog.table(spec.table)
        return (
            self._scan_cost_heap(table)
            + self._sort_cost(table, full=True)
            + self._write_cost(spec, table)
        )

    def cost_with_helper(self, spec: IndexSpec, helper: IndexSpec) -> float:
        """Cost of building ``spec`` when ``helper`` already exists."""
        table = self.catalog.table(spec.table)
        if helper.table != spec.table or helper.name == spec.name:
            return self.base_cost(spec)
        covering = helper.covers(spec.all_columns)
        if covering:
            scan = helper.leaf_pages(table) * self.cost.seq_page + (
                table.row_count * self.cost.cpu_row
            )
        else:
            scan = self._scan_cost_heap(table)
        sort = self._sort_cost_with_helper(spec, helper, table, covering)
        return scan + sort + self._write_cost(spec, table)

    def cost_with_helpers(
        self, spec: IndexSpec, helpers: Iterable[IndexSpec]
    ) -> float:
        """Cheapest build cost over all available helpers (pairwise max)."""
        best = self.base_cost(spec)
        for helper in helpers:
            cost = self.cost_with_helper(spec, helper)
            if cost < best:
                best = cost
        return best

    def saving(self, spec: IndexSpec, helper: IndexSpec) -> float:
        """Build-cost saving ``cspdup(spec, helper)``; 0 when negligible.

        Savings below 1% of the base cost are treated as noise and
        dropped, keeping extracted instances free of spurious
        interactions.
        """
        base = self.base_cost(spec)
        with_helper = self.cost_with_helper(spec, helper)
        saving = base - with_helper
        if saving < _MIN_SAVING_FRACTION * base:
            return 0.0
        return saving

    # ------------------------------------------------------------------
    def _scan_cost_heap(self, table: Table) -> float:
        return table.pages * self.cost.seq_page + (
            table.row_count * self.cost.cpu_row
        )

    def _sort_cost(self, table: Table, full: bool) -> float:
        rows = table.row_count
        if rows <= 1:
            return 0.0
        cost = rows * math.log2(rows + 1) * self.cost.cpu_sort_row
        return cost if full else cost * _PARTIAL_SORT_FACTOR

    def _sort_cost_with_helper(
        self,
        spec: IndexSpec,
        helper: IndexSpec,
        table: Table,
        covering: bool,
    ) -> float:
        if covering and spec.key_prefix_of(helper):
            # Source already delivers the target key order: no sort.
            return 0.0
        if (
            covering
            and helper.key_columns
            and spec.key_columns
            and helper.key_columns[0] == spec.key_columns[0]
        ):
            # Nearly-sorted input: cheap run-merge sort.
            return self._sort_cost(table, full=False)
        return self._sort_cost(table, full=True)

    def _write_cost(self, spec: IndexSpec, table: Table) -> float:
        return spec.leaf_pages(table) * self.cost.seq_page
