"""Instance extraction: from workload + design to a matrix file.

This is the left half of the paper's Figure 3 pipeline: given a catalog,
a workload, and a set of suggested indexes, produce the
:class:`~repro.core.instance.ProblemInstance` ("matrix file") the
solvers consume.

* **Query plans** come from the what-if atomic-configuration loop
  (Section 8): repeated re-optimization with used hypothetical indexes
  removed, plus drop-one probing.
* **Build interactions** come from the build-cost model evaluated for
  every ordered pair of suggested indexes on the same table.
* **Precedences** encode clustered-before-secondary rules on the same
  table (the paper's materialized-view example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    PrecedenceRule,
    ProblemInstance,
    QueryDef,
)
from repro.dbms.build_cost import BuildCostModel
from repro.dbms.catalog import Catalog
from repro.dbms.query import Workload
from repro.dbms.schema import IndexSpec
from repro.dbms.whatif import WhatIfOptimizer
from repro.errors import CatalogError

__all__ = ["ExtractionConfig", "InstanceExtractor"]


@dataclass
class ExtractionConfig:
    """Knobs for the extraction loop."""

    max_rounds: int = 8
    probe_subsets: bool = True
    min_speedup_fraction: float = 0.002
    min_build_saving_fraction: float = 0.01


class InstanceExtractor:
    """Builds ordering-problem instances from a simulated DBMS."""

    def __init__(
        self,
        catalog: Catalog,
        workload: Workload,
        config: Optional[ExtractionConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.workload = workload
        self.config = config or ExtractionConfig()
        self.whatif = WhatIfOptimizer(catalog)
        self.build_cost = BuildCostModel(catalog)

    def extract(
        self,
        suggested: Sequence[IndexSpec],
        name: str = "extracted",
    ) -> ProblemInstance:
        """Produce the matrix file for ``suggested`` indexes.

        Args:
            suggested: The design-tool output to be deployed; each must
                already be registered in the catalog (hypothetically).
            name: Instance name for reports.

        Raises:
            CatalogError: If a suggested index is unknown.
        """
        for spec in suggested:
            if not self.catalog.has_index(spec.name):
                raise CatalogError(
                    f"suggested index {spec.name!r} is not in the catalog"
                )
        index_ids: Dict[str, int] = {
            spec.name: position for position, spec in enumerate(suggested)
        }
        index_defs = [
            IndexDef(
                index_id=index_ids[spec.name],
                name=spec.name,
                create_cost=self.build_cost.base_cost(spec),
                size=float(
                    spec.size_bytes(self.catalog.table(spec.table))
                ),
            )
            for spec in suggested
        ]
        query_defs: List[QueryDef] = []
        plan_defs: List[PlanDef] = []
        candidate_names = [spec.name for spec in suggested]
        for query_id, query in enumerate(self.workload):
            base = self.whatif.base_cost(query)
            query_defs.append(
                QueryDef(
                    query_id=query_id,
                    name=query.name,
                    base_runtime=base,
                    weight=query.weight,
                )
            )
            configurations = self.whatif.atomic_configurations(
                query,
                candidate_names,
                max_rounds=self.config.max_rounds,
                probe_subsets=self.config.probe_subsets,
                min_speedup_fraction=self.config.min_speedup_fraction,
            )
            for configuration in configurations:
                members = frozenset(
                    index_ids[name] for name in configuration.indexes
                )
                speedup = min(configuration.speedup, base)
                if speedup <= 0:
                    continue
                plan_defs.append(
                    PlanDef(
                        plan_id=len(plan_defs),
                        query_id=query_id,
                        indexes=members,
                        speedup=speedup,
                    )
                )
        interactions = self._build_interactions(suggested, index_ids, index_defs)
        precedences = self._precedences(suggested, index_ids)
        return ProblemInstance(
            indexes=index_defs,
            queries=query_defs,
            plans=plan_defs,
            build_interactions=interactions,
            precedences=precedences,
            name=name,
        )

    # ------------------------------------------------------------------
    def _build_interactions(
        self,
        suggested: Sequence[IndexSpec],
        index_ids: Dict[str, int],
        index_defs: Sequence[IndexDef],
    ) -> List[BuildInteraction]:
        by_table: Dict[str, List[IndexSpec]] = {}
        for spec in suggested:
            by_table.setdefault(spec.table, []).append(spec)
        interactions: List[BuildInteraction] = []
        for specs in by_table.values():
            for target in specs:
                base = index_defs[index_ids[target.name]].create_cost
                for helper in specs:
                    if helper.name == target.name:
                        continue
                    saving = self.build_cost.saving(target, helper)
                    if saving <= self.config.min_build_saving_fraction * base:
                        continue
                    # Guard the model invariant saving < create_cost.
                    saving = min(saving, base * 0.95)
                    interactions.append(
                        BuildInteraction(
                            target=index_ids[target.name],
                            helper=index_ids[helper.name],
                            saving=saving,
                        )
                    )
        return interactions

    def _precedences(
        self,
        suggested: Sequence[IndexSpec],
        index_ids: Dict[str, int],
    ) -> List[PrecedenceRule]:
        rules: List[PrecedenceRule] = []
        by_table: Dict[str, List[IndexSpec]] = {}
        for spec in suggested:
            by_table.setdefault(spec.table, []).append(spec)
        for table, specs in by_table.items():
            clustered = [spec for spec in specs if spec.clustered]
            if not clustered:
                continue
            anchor = clustered[0]
            for spec in specs:
                if spec.name == anchor.name:
                    continue
                rules.append(
                    PrecedenceRule(
                        before=index_ids[anchor.name],
                        after=index_ids[spec.name],
                        reason=f"clustered index on {table} first",
                    )
                )
        return rules
