"""What-if analysis: hypothetical-index costing and atomic configurations.

Implements the extraction protocol of Section 8: call the optimizer with
all hypothetical indexes enabled, record the *atomic configuration* (the
hypothetical indexes the best plan actually uses), remove them, and
re-optimize — each round surfaces the next-best (suboptimal) plan and
its competing interactions.  Drop-one probing of each atomic
configuration additionally surfaces partial-availability plans, which is
what gives extracted instances their dense query-interaction structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.dbms.catalog import Catalog
from repro.dbms.optimizer import Optimizer, QueryPlan
from repro.dbms.query import Query

__all__ = ["WhatIfOptimizer", "AtomicConfiguration"]


@dataclass(frozen=True)
class AtomicConfiguration:
    """A plan's hypothetical-index set and the speed-up it unlocks."""

    query: str
    indexes: FrozenSet[str]
    cost: float
    speedup: float


class WhatIfOptimizer:
    """Optimizer facade for hypothetical-index analysis."""

    def __init__(self, catalog: Catalog, optimizer: Optional[Optimizer] = None) -> None:
        self.catalog = catalog
        self.optimizer = optimizer or Optimizer(catalog)
        self._cache: Dict[Tuple[str, FrozenSet[str]], QueryPlan] = {}

    # ------------------------------------------------------------------
    def plan(self, query: Query, hypothetical: Sequence[str] = ()) -> QueryPlan:
        """Best plan using the real design plus ``hypothetical`` indexes."""
        configuration = self.catalog.configuration(extra=hypothetical)
        key = (query.name, frozenset(configuration))
        cached = self._cache.get(key)
        if cached is None:
            cached = self.optimizer.optimize(query, configuration)
            self._cache[key] = cached
        return cached

    def base_cost(self, query: Query) -> float:
        """Query cost with only the materialized design (``qtime``)."""
        return self.plan(query).cost

    def clear_cache(self) -> None:
        """Drop memoized plans (after catalog changes)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    def atomic_configurations(
        self,
        query: Query,
        candidates: Sequence[str],
        max_rounds: int = 8,
        probe_subsets: bool = True,
        min_speedup_fraction: float = 0.01,
    ) -> List[AtomicConfiguration]:
        """Enumerate this query's plans over the candidate indexes.

        Args:
            query: The query to analyze.
            candidates: Hypothetical index names under consideration.
            max_rounds: Removal-loop iterations (the paper repeats "several
                times").
            probe_subsets: Also evaluate each atomic configuration with
                one member dropped, surfacing partial-availability plans.
            min_speedup_fraction: Plans speeding the query up by less
                than this fraction of its base cost are discarded.

        Returns:
            Deduplicated configurations, best speed-up per index set.
        """
        base = self.base_cost(query)
        threshold = base * min_speedup_fraction
        found: Dict[FrozenSet[str], AtomicConfiguration] = {}
        available = list(candidates)
        probe_queue: List[FrozenSet[str]] = []
        for _ in range(max_rounds):
            plan = self.plan(query, available)
            used = frozenset(
                name
                for name in plan.used_indexes
                if self.catalog.is_hypothetical(name) and name in set(available)
            )
            if not used:
                break
            speedup = base - plan.cost
            if speedup > threshold:
                self._record(found, query, used, plan.cost, speedup)
                probe_queue.append(used)
            available = [name for name in available if name not in used]
            if not available:
                break
        if probe_subsets:
            seen_probes: Set[FrozenSet[str]] = set()
            while probe_queue:
                config = probe_queue.pop()
                if len(config) < 2:
                    continue
                for dropped in sorted(config):
                    reduced = config - {dropped}
                    if reduced in seen_probes:
                        continue
                    seen_probes.add(reduced)
                    plan = self.plan(query, sorted(reduced))
                    used = frozenset(
                        name
                        for name in plan.used_indexes
                        if self.catalog.is_hypothetical(name)
                        and name in reduced
                    )
                    speedup = base - plan.cost
                    if used and speedup > threshold:
                        self._record(found, query, used, plan.cost, speedup)
                        if used not in seen_probes and len(used) >= 2:
                            probe_queue.append(used)
        return sorted(
            found.values(), key=lambda c: (-c.speedup, sorted(c.indexes))
        )

    @staticmethod
    def _record(
        found: Dict[FrozenSet[str], AtomicConfiguration],
        query: Query,
        used: FrozenSet[str],
        cost: float,
        speedup: float,
    ) -> None:
        incumbent = found.get(used)
        if incumbent is None or speedup > incumbent.speedup:
            found[used] = AtomicConfiguration(
                query=query.name, indexes=used, cost=cost, speedup=speedup
            )
