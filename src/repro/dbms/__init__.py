"""Simulated DBMS substrate (the paper's commercial-DBMS stand-in).

Pipeline pieces, mirroring Figure 3 of the paper: a :class:`Catalog` of
tables and (hypothetical) indexes, a cost-based :class:`Optimizer`, the
:class:`WhatIfOptimizer` atomic-configuration interface, an
:class:`IndexAdvisor` design tool, the :class:`BuildCostModel` for index
creation costs and build interactions, a row-level :class:`DataStore`
executor for validation, and the :class:`InstanceExtractor` that turns
it all into a solver-ready :class:`~repro.core.ProblemInstance`.
"""

from repro.dbms.advisor import AdvisorConfig, IndexAdvisor, generate_candidates
from repro.dbms.build_cost import BuildCostModel
from repro.dbms.catalog import Catalog
from repro.dbms.executor import DataStore, ExecutionResult, generate_rows
from repro.dbms.extract import ExtractionConfig, InstanceExtractor
from repro.dbms.optimizer import AccessPath, CostModel, Optimizer, QueryPlan
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query, Workload
from repro.dbms.schema import Column, IndexSpec, Table
from repro.dbms.stats import (
    combined_selectivity,
    filtered_rows,
    join_cardinality,
    predicate_selectivity,
)
from repro.dbms.whatif import AtomicConfiguration, WhatIfOptimizer

__all__ = [
    "Catalog",
    "Column",
    "Table",
    "IndexSpec",
    "Predicate",
    "PredicateOp",
    "JoinEdge",
    "Query",
    "Workload",
    "CostModel",
    "AccessPath",
    "QueryPlan",
    "Optimizer",
    "WhatIfOptimizer",
    "AtomicConfiguration",
    "AdvisorConfig",
    "IndexAdvisor",
    "generate_candidates",
    "BuildCostModel",
    "ExtractionConfig",
    "InstanceExtractor",
    "DataStore",
    "ExecutionResult",
    "generate_rows",
    "predicate_selectivity",
    "combined_selectivity",
    "filtered_rows",
    "join_cardinality",
]
