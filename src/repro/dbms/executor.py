"""Row-level executor for validating the cost model's decisions.

The ordering problem only needs the optimizer's *estimates*, but a cost
model nobody can execute is a stub.  This module generates synthetic
rows consistent with the catalog statistics and actually runs queries
(filter → hash join → group-by), reporting true row counts.  Tests use
it to check that the estimator's cardinalities track reality and that
index-eligible predicates really are selective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dbms.catalog import Catalog
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query
from repro.dbms.schema import Table
from repro.errors import QueryError

__all__ = ["DataStore", "ExecutionResult", "generate_rows"]


def generate_rows(
    table: Table, seed: int = 0, max_rows: Optional[int] = None
) -> Dict[str, np.ndarray]:
    """Synthesize rows matching the table's column statistics.

    Column values are uniform integers in ``[0, distinct)``; the row
    count is capped at ``max_rows`` (scaled validation runs don't need
    the full cardinality).
    """
    rng = np.random.RandomState(seed ^ (hash(table.name) & 0x7FFFFFFF))
    rows = table.row_count if max_rows is None else min(table.row_count, max_rows)
    return {
        column.name: rng.randint(0, column.distinct, size=rows)
        for column in table.columns
    }


@dataclass
class ExecutionResult:
    """Outcome of one executed query."""

    query: str
    rows_out: int
    rows_scanned: int
    per_table_selected: Dict[str, int]


class DataStore:
    """In-memory synthetic data for a catalog."""

    def __init__(
        self, catalog: Catalog, seed: int = 0, max_rows: int = 20000
    ) -> None:
        self.catalog = catalog
        self.max_rows = max_rows
        self._data: Dict[str, Dict[str, np.ndarray]] = {}
        for table in catalog.tables:
            self._data[table.name] = generate_rows(
                table, seed=seed, max_rows=max_rows
            )

    def rows(self, table: str) -> Dict[str, np.ndarray]:
        """Column arrays of one table."""
        try:
            return self._data[table]
        except KeyError:
            raise QueryError(f"no data generated for table {table!r}") from None

    def row_count(self, table: str) -> int:
        data = self.rows(table)
        first = next(iter(data.values()), None)
        return 0 if first is None else len(first)

    # ------------------------------------------------------------------
    def _filter_mask(
        self, table: str, predicates: Sequence[Predicate], seed: int = 7
    ) -> np.ndarray:
        data = self.rows(table)
        count = self.row_count(table)
        mask = np.ones(count, dtype=bool)
        rng = np.random.RandomState(seed)
        for predicate in predicates:
            values = data[predicate.column]
            if predicate.op is PredicateOp.EQ:
                probe = rng.randint(0, values.max() + 1) if count else 0
                mask &= values == probe
            elif predicate.op is PredicateOp.IN:
                table_obj = self.catalog.table(table)
                distinct = table_obj.column(predicate.column).distinct
                probes = rng.choice(
                    max(1, distinct),
                    size=min(predicate.values, max(1, distinct)),
                    replace=False,
                )
                mask &= np.isin(values, probes)
            else:  # RANGE: take a window of the value space
                table_obj = self.catalog.table(table)
                distinct = table_obj.column(predicate.column).distinct
                selectivity = (
                    predicate.selectivity
                    if predicate.selectivity is not None
                    else 1.0 / 3.0
                )
                cutoff = max(1, int(distinct * selectivity))
                mask &= values < cutoff
        return mask

    def execute(self, query: Query, seed: int = 7) -> ExecutionResult:
        """Execute ``query`` over the synthetic data.

        Filters each table, then hash-joins along the query's join edges
        in a connected order, and finally groups.  Predicate constants
        are drawn deterministically from ``seed``.
        """
        filtered: Dict[str, np.ndarray] = {}
        per_table: Dict[str, int] = {}
        scanned = 0
        for table in query.tables:
            mask = self._filter_mask(
                table, query.predicates_on(table), seed=seed
            )
            indices = np.nonzero(mask)[0]
            filtered[table] = indices
            per_table[table] = int(indices.size)
            scanned += self.row_count(table)
        # Join in a connected order starting from the smallest table.
        order = self._join_order(query)
        current = self._tuples(query, order[0], filtered[order[0]])
        joined = {order[0]}
        for table in order[1:]:
            edge = self._edge(query, joined, table)
            if edge is None:
                current = self._cartesian(
                    current, query, table, filtered[table]
                )
            else:
                current = self._hash_join(
                    current, query, table, filtered[table], edge
                )
            joined.add(table)
        rows_out = len(current)
        if query.group_by:
            data = {
                t: self.rows(t) for t in query.tables
            }
            groups = set()
            for tup in current:
                key = tuple(
                    data[table][column][tup[table]]
                    for table, column in query.group_by
                )
                groups.add(key)
            rows_out = len(groups)
        return ExecutionResult(
            query=query.name,
            rows_out=rows_out,
            rows_scanned=scanned,
            per_table_selected=per_table,
        )

    # ------------------------------------------------------------------
    def _join_order(self, query: Query) -> List[str]:
        remaining = list(query.tables)
        remaining.sort(key=lambda t: self.row_count(t))
        order = [remaining.pop(0)]
        while remaining:
            joined = set(order)
            nxt = None
            for table in remaining:
                if any(
                    e.involves(table) and e.other(table) in joined
                    for e in query.joins
                ):
                    nxt = table
                    break
            if nxt is None:
                nxt = remaining[0]
            order.append(nxt)
            remaining.remove(nxt)
        return order

    def _tuples(
        self, query: Query, table: str, indices: np.ndarray
    ) -> List[Dict[str, int]]:
        return [{table: int(i)} for i in indices]

    def _edge(
        self, query: Query, joined: set, table: str
    ) -> Optional[JoinEdge]:
        for edge in query.joins:
            if edge.involves(table) and edge.other(table) in joined:
                return edge
        return None

    def _hash_join(
        self,
        current: List[Dict[str, int]],
        query: Query,
        table: str,
        indices: np.ndarray,
        edge: JoinEdge,
    ) -> List[Dict[str, int]]:
        inner_column = self.rows(table)[edge.column_of(table)]
        buckets: Dict[int, List[int]] = {}
        for i in indices:
            buckets.setdefault(int(inner_column[i]), []).append(int(i))
        outer_table = edge.other(table)
        outer_column = self.rows(outer_table)[edge.column_of(outer_table)]
        output: List[Dict[str, int]] = []
        for tup in current:
            key = int(outer_column[tup[outer_table]])
            for inner_row in buckets.get(key, ()):
                combined = dict(tup)
                combined[table] = inner_row
                output.append(combined)
        return output

    def _cartesian(
        self,
        current: List[Dict[str, int]],
        query: Query,
        table: str,
        indices: np.ndarray,
    ) -> List[Dict[str, int]]:
        output: List[Dict[str, int]] = []
        for tup in current:
            for i in indices:
                combined = dict(tup)
                combined[table] = int(i)
                output.append(combined)
        return output
