"""Index advisor: candidate generation and greedy design selection.

Stands in for the commercial "database designer" of the paper's pipeline
(Figure 3): given a workload it proposes candidate indexes from query
shapes, then greedily selects a design under a storage budget by benefit
density (what-if benefit divided by index size), using the classic
lazy-greedy refinement to avoid re-evaluating every candidate each round.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dbms.catalog import Catalog
from repro.dbms.query import PredicateOp, Query, Workload
from repro.dbms.schema import IndexSpec
from repro.dbms.whatif import WhatIfOptimizer
from repro.errors import CatalogError

__all__ = ["AdvisorConfig", "IndexAdvisor", "generate_candidates"]


@dataclass
class AdvisorConfig:
    """Knobs for candidate generation and selection."""

    max_key_columns: int = 3
    max_include_columns: int = 6
    storage_budget_bytes: Optional[int] = None
    max_indexes: Optional[int] = None
    min_benefit_fraction: float = 0.0005


def _candidate_name(spec_table: str, keys: Sequence[str], tag: str) -> str:
    return f"ix_{spec_table}_{'_'.join(keys)}_{tag}"


def generate_candidates(
    catalog: Catalog,
    workload: Workload,
    config: Optional[AdvisorConfig] = None,
) -> List[IndexSpec]:
    """Propose candidate indexes from the workload's query shapes.

    Per query and referenced table, up to three candidates:

    * a *key-only* index on the sargable columns (equality columns by
      ascending selectivity, then one range column),
    * a *covering* variant that adds the query's remaining columns as
      includes,
    * a *join-probe* index keyed on the join column (with the sargable
      columns appended), for index-nested-loop inners.

    Duplicates (same table, keys, includes) are merged.
    """
    config = config or AdvisorConfig()
    seen: Dict[Tuple[str, Tuple[str, ...], Tuple[str, ...]], IndexSpec] = {}

    def register(table: str, keys: Sequence[str], includes: Sequence[str], tag: str) -> None:
        keys = tuple(keys)[: config.max_key_columns]
        includes = tuple(
            column for column in includes if column not in keys
        )[: config.max_include_columns]
        if not keys:
            return
        signature = (table, keys, tuple(sorted(includes)))
        if signature in seen:
            return
        name = _candidate_name(table, keys, tag)
        suffix = 0
        while any(spec.name == name for spec in seen.values()):
            suffix += 1
            name = _candidate_name(table, keys, f"{tag}{suffix}")
        seen[signature] = IndexSpec(
            name=name,
            table=table,
            key_columns=keys,
            include_columns=tuple(sorted(includes)),
        )

    for query in workload:
        for table_name in query.tables:
            table = catalog.table(table_name)
            predicates = query.predicates_on(table_name)
            eq_columns = [
                p.column
                for p in sorted(
                    (p for p in predicates if p.op is not PredicateOp.RANGE),
                    key=lambda p: (
                        1.0 / max(1, table.column(p.column).distinct),
                        p.column,
                    ),
                )
            ]
            range_columns = [
                p.column for p in predicates if p.op is PredicateOp.RANGE
            ]
            needed = query.columns_needed(table_name)
            keys = list(dict.fromkeys(eq_columns + range_columns[:1]))
            if keys:
                register(table_name, keys, (), "key")
                includes = [c for c in needed if c not in keys]
                if includes:
                    register(table_name, keys, includes, "cov")
            # Single-column candidates for each sargable predicate.
            for column in eq_columns + range_columns:
                register(table_name, [column], (), "col")
            for join in query.joins_of(table_name):
                join_column = join.column_of(table_name)
                join_keys = list(dict.fromkeys([join_column] + eq_columns))
                register(
                    table_name,
                    join_keys,
                    [c for c in needed if c not in join_keys],
                    "join",
                )
                register(table_name, [join_column], (), "col")
            # Group-by-ordered covering candidate (sort avoidance).
            group_columns = [
                column for owner, column in query.group_by if owner == table_name
            ]
            if group_columns:
                register(
                    table_name,
                    group_columns,
                    [c for c in needed if c not in group_columns],
                    "gb",
                )
    return sorted(seen.values(), key=lambda spec: spec.name)


class IndexAdvisor:
    """Greedy what-if design selection (the paper's "DB design tool")."""

    def __init__(
        self,
        catalog: Catalog,
        workload: Workload,
        config: Optional[AdvisorConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.workload = workload
        self.config = config or AdvisorConfig()
        self.whatif = WhatIfOptimizer(catalog)

    # ------------------------------------------------------------------
    def register_candidates(
        self, candidates: Optional[Sequence[IndexSpec]] = None
    ) -> List[IndexSpec]:
        """Add candidates to the catalog as hypothetical indexes."""
        if candidates is None:
            candidates = generate_candidates(
                self.catalog, self.workload, self.config
            )
        registered: List[IndexSpec] = []
        for spec in candidates:
            if not self.catalog.has_index(spec.name):
                self.catalog.add_index(spec, hypothetical=True)
            registered.append(spec)
        return registered

    def _workload_cost(self, selected: Sequence[str]) -> float:
        total = 0.0
        for query in self.workload:
            total += self.whatif.plan(query, selected).cost * query.weight
        return total

    def _marginal_benefit(
        self, selected: List[str], candidate: str
    ) -> float:
        related_queries = self._queries_touching(candidate)
        before = sum(
            self.whatif.plan(q, selected).cost * q.weight
            for q in related_queries
        )
        after = sum(
            self.whatif.plan(q, selected + [candidate]).cost * q.weight
            for q in related_queries
        )
        return before - after

    def _queries_touching(self, candidate: str) -> List[Query]:
        table = self.catalog.index(candidate).table
        return [q for q in self.workload if table in q.tables]

    def select(
        self, candidates: Optional[Sequence[IndexSpec]] = None
    ) -> List[IndexSpec]:
        """Greedily pick a design by benefit density under the budget.

        Uses lazy greedy: candidates sit in a max-heap keyed by their
        last-known density; the top is re-evaluated against the current
        selection and accepted only if it still beats the runner-up.
        """
        specs = self.register_candidates(candidates)
        base_total = self._workload_cost([])
        min_benefit = base_total * self.config.min_benefit_fraction
        sizes = {
            spec.name: spec.size_bytes(self.catalog.table(spec.table))
            for spec in specs
        }
        selected: List[str] = []
        used_bytes = 0
        heap: List[Tuple[float, str]] = []
        for spec in specs:
            benefit = self._marginal_benefit(selected, spec.name)
            if benefit > min_benefit:
                heapq.heappush(
                    heap, (-benefit / max(1, sizes[spec.name]), spec.name)
                )
        while heap:
            if (
                self.config.max_indexes is not None
                and len(selected) >= self.config.max_indexes
            ):
                break
            _, name = heapq.heappop(heap)
            if (
                self.config.storage_budget_bytes is not None
                and used_bytes + sizes[name]
                > self.config.storage_budget_bytes
            ):
                continue
            # Lazy greedy: re-evaluate the popped candidate against the
            # current selection; accept only if it still beats the
            # runner-up's (stale, hence optimistic) density.
            benefit = self._marginal_benefit(selected, name)
            if benefit <= min_benefit:
                continue
            density = benefit / max(1, sizes[name])
            if heap and density < -heap[0][0] - 1e-15:
                heapq.heappush(heap, (-density, name))
                continue
            selected.append(name)
            used_bytes += sizes[name]
        return [self.catalog.index(name) for name in selected]
