"""Cost-based query optimizer with configuration-relative costing.

The optimizer estimates the cost of a query *given a configuration* —
an explicit set of index names it may use — which is exactly the what-if
interface (Chaudhuri & Narasayya) the paper's extraction pipeline calls.
It models:

* access paths: heap scan, index seek (eq-prefix plus one range key),
  covering index-only scan, with residual-filter CPU,
* left-deep join ordering (greedy from every start table), with hash
  join and index-nested-loop join methods,
* sort avoidance for group-by when the driving access path already
  delivers the grouping order.

Costs are abstract seconds: sequential page reads cost 1 unit, random
page reads 4, per-row CPU 0.002.  Only ratios matter for the ordering
problem; these constants produce multi-index plans and competing plans
with the same qualitative structure the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.dbms.catalog import Catalog
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query
from repro.dbms.schema import IndexSpec, Table
from repro.dbms.stats import (
    combined_selectivity,
    join_cardinality,
    predicate_selectivity,
)
from repro.errors import QueryError

__all__ = ["CostModel", "AccessPath", "QueryPlan", "Optimizer"]


@dataclass(frozen=True)
class CostModel:
    """Tunable cost constants (defaults follow common optimizer lore)."""

    seq_page: float = 1.0
    random_page: float = 4.0
    cpu_row: float = 0.002
    cpu_sort_row: float = 0.004
    index_seek: float = 0.05


@dataclass(frozen=True)
class AccessPath:
    """A costed way to read one table's qualifying rows."""

    table: str
    index_name: Optional[str]
    cost: float
    out_rows: float
    index_only: bool
    sorted_by: Tuple[str, ...]

    @property
    def is_index(self) -> bool:
        """True for index paths, False for heap scans."""
        return self.index_name is not None


@dataclass(frozen=True)
class QueryPlan:
    """A fully costed query plan."""

    query: str
    cost: float
    used_indexes: FrozenSet[str]
    join_order: Tuple[str, ...]
    description: str


class Optimizer:
    """Configuration-relative cost-based optimizer."""

    def __init__(
        self, catalog: Catalog, cost_model: Optional[CostModel] = None
    ) -> None:
        self.catalog = catalog
        self.cost = cost_model or CostModel()

    # ------------------------------------------------------------------
    # Access-path selection
    # ------------------------------------------------------------------
    def access_paths(
        self,
        query: Query,
        table_name: str,
        configuration: Set[str],
        join_column: Optional[str] = None,
    ) -> List[AccessPath]:
        """All costed access paths for one table under a configuration.

        ``join_column`` adds an equality probe on that column (the inner
        side of an index-nested-loop join).
        """
        table = self.catalog.table(table_name)
        predicates = query.predicates_on(table_name)
        needed = query.columns_needed(table_name)
        paths = [self._heap_scan(table, predicates)]
        for spec in self.catalog.indexes_on(table_name):
            if spec.name not in configuration:
                continue
            path = self._index_path(
                table, spec, predicates, needed, join_column
            )
            if path is not None:
                paths.append(path)
        return paths

    def best_access_path(
        self,
        query: Query,
        table_name: str,
        configuration: Set[str],
        join_column: Optional[str] = None,
    ) -> AccessPath:
        """Cheapest access path for one table."""
        paths = self.access_paths(query, table_name, configuration, join_column)
        return min(paths, key=lambda p: (p.cost, p.index_name or ""))

    def _heap_scan(
        self, table: Table, predicates: Sequence[Predicate]
    ) -> AccessPath:
        selectivity = combined_selectivity(predicates, table)
        cost = (
            table.pages * self.cost.seq_page
            + table.row_count * self.cost.cpu_row
        )
        return AccessPath(
            table=table.name,
            index_name=None,
            cost=cost,
            out_rows=max(1.0, table.row_count * selectivity),
            index_only=False,
            sorted_by=(),
        )

    def _index_path(
        self,
        table: Table,
        spec: IndexSpec,
        predicates: Sequence[Predicate],
        needed: Sequence[str],
        join_column: Optional[str],
    ) -> Optional[AccessPath]:
        eq_columns: Dict[str, Predicate] = {}
        range_columns: Dict[str, Predicate] = {}
        for predicate in predicates:
            if predicate.op in (PredicateOp.EQ, PredicateOp.IN):
                eq_columns.setdefault(predicate.column, predicate)
            else:
                range_columns.setdefault(predicate.column, predicate)
        join_selectivity = 1.0
        if join_column is not None:
            join_selectivity = 1.0 / max(
                1, table.column(join_column).distinct
            )
        # Match the key prefix: equality (or join-probe) columns first,
        # then at most one range column.
        key_selectivity = 1.0
        matched = 0
        used_join_probe = False
        for key_column in spec.key_columns:
            if key_column in eq_columns:
                key_selectivity *= predicate_selectivity(
                    eq_columns[key_column], table
                )
                matched += 1
                continue
            if join_column is not None and key_column == join_column:
                key_selectivity *= join_selectivity
                matched += 1
                used_join_probe = True
                continue
            if key_column in range_columns:
                key_selectivity *= predicate_selectivity(
                    range_columns[key_column], table
                )
                matched += 1
            break  # range (or unmatched) key ends the sargable prefix
        if matched == 0:
            covering = spec.covers(needed)
            if not covering:
                return None
            # Covering index scan: cheaper than the heap when narrower.
            selectivity = combined_selectivity(predicates, table)
            cost = (
                spec.leaf_pages(table) * self.cost.seq_page
                + table.row_count * self.cost.cpu_row
            )
            return AccessPath(
                table=table.name,
                index_name=spec.name,
                cost=cost,
                out_rows=max(1.0, table.row_count * selectivity),
                index_only=True,
                sorted_by=spec.key_columns,
            )
        matched_rows = max(1.0, table.row_count * key_selectivity)
        residual = [
            p
            for p in predicates
            if p.column not in spec.key_columns[:matched]
        ]
        residual_selectivity = combined_selectivity(residual, table)
        out_rows = max(1.0, matched_rows * residual_selectivity)
        needed_all = set(needed)
        if join_column is not None:
            needed_all.add(join_column)
        covering = spec.covers(sorted(needed_all))
        cost = (
            self.cost.index_seek
            + spec.leaf_pages(table) * key_selectivity * self.cost.seq_page
            + matched_rows * self.cost.cpu_row
        )
        if not covering:
            fetch = min(
                matched_rows * self.cost.random_page,
                table.pages * self.cost.seq_page,
            )
            cost += fetch
        # Rows arrive ordered by the key columns after the eq prefix.
        sorted_by = spec.key_columns
        if used_join_probe:
            out_rows = max(
                1.0, out_rows / max(matched_rows, 1.0) * matched_rows
            )
        return AccessPath(
            table=table.name,
            index_name=spec.name,
            cost=cost,
            out_rows=out_rows,
            index_only=covering,
            sorted_by=sorted_by,
        )

    # ------------------------------------------------------------------
    # Plan costing
    # ------------------------------------------------------------------
    def optimize(self, query: Query, configuration: Set[str]) -> QueryPlan:
        """Cheapest left-deep plan for ``query`` under ``configuration``.

        Greedy join ordering is attempted from every start table and the
        cheapest complete plan wins, which keeps the optimizer
        deterministic and cheap while still letting different
        configurations flip the join order (the source of the paper's
        multi-index query interactions).
        """
        best: Optional[QueryPlan] = None
        for start in query.tables:
            plan = self._greedy_plan(query, configuration, start)
            if best is None or plan.cost < best.cost - 1e-12:
                best = plan
        if best is None:
            raise QueryError(f"query {query.name!r}: no plan found")
        return best

    def _greedy_plan(
        self, query: Query, configuration: Set[str], start: str
    ) -> QueryPlan:
        used: Set[str] = set()
        start_path = self.best_access_path(query, start, configuration)
        if start_path.index_name is not None:
            used.add(start_path.index_name)
        total_cost = start_path.cost
        current_rows = start_path.out_rows
        joined: List[str] = [start]
        joined_set = {start}
        remaining = [t for t in query.tables if t != start]
        driving_sorted_by = start_path.sorted_by
        while remaining:
            best_choice: Optional[Tuple[float, float, str, Optional[str]]] = None
            for candidate in remaining:
                edge = self._edge_between(query, joined_set, candidate)
                if edge is None and len(remaining) > 1:
                    continue  # defer cartesian products while joins exist
                step = self._join_step(
                    query, configuration, candidate, edge, current_rows
                )
                if step is None:
                    continue
                step_cost, out_rows, used_index = step
                key = (step_cost, out_rows, candidate, used_index)
                if best_choice is None or key < best_choice:
                    best_choice = key
            if best_choice is None:
                # Only cartesian products remain: take the cheapest scan.
                candidate = remaining[0]
                path = self.best_access_path(query, candidate, configuration)
                best_choice = (
                    path.cost + current_rows * path.out_rows * self.cost.cpu_row,
                    current_rows * path.out_rows,
                    candidate,
                    path.index_name,
                )
            step_cost, out_rows, candidate, used_index = best_choice
            total_cost += step_cost
            current_rows = out_rows
            joined.append(candidate)
            joined_set.add(candidate)
            remaining.remove(candidate)
            if used_index is not None:
                used.add(used_index)
        total_cost += self._sort_cost(query, current_rows, driving_sorted_by)
        return QueryPlan(
            query=query.name,
            cost=total_cost,
            used_indexes=frozenset(used),
            join_order=tuple(joined),
            description=" -> ".join(joined),
        )

    def _edge_between(
        self, query: Query, joined: Set[str], candidate: str
    ) -> Optional[JoinEdge]:
        for edge in query.joins:
            if edge.involves(candidate) and edge.other(candidate) in joined:
                return edge
        return None

    def _join_step(
        self,
        query: Query,
        configuration: Set[str],
        candidate: str,
        edge: Optional[JoinEdge],
        outer_rows: float,
    ) -> Optional[Tuple[float, float, Optional[str]]]:
        """Cost of joining ``candidate`` next; returns (cost, rows, index)."""
        if edge is None:
            return None
        table = self.catalog.table(candidate)
        join_column = edge.column_of(candidate)
        # Hash join: scan the inner once, probe per outer row.
        inner_scan = self.best_access_path(query, candidate, configuration)
        hash_cost = (
            inner_scan.cost
            + inner_scan.out_rows * self.cost.cpu_row
            + outer_rows * 2.0 * self.cost.cpu_row
        )
        out_rows = join_cardinality(
            outer_rows,
            inner_scan.out_rows,
            table.column(join_column).distinct,
            table.column(join_column).distinct,
        )
        best_cost = hash_cost
        best_index = inner_scan.index_name
        # Index nested loop: one probe per outer row.
        probe = self.best_access_path(
            query, candidate, configuration, join_column=join_column
        )
        if probe.index_name is not None:
            inl_cost = outer_rows * probe.cost
            if inl_cost < best_cost:
                best_cost = inl_cost
                best_index = probe.index_name
        return best_cost, out_rows, best_index

    def _sort_cost(
        self,
        query: Query,
        rows: float,
        driving_sorted_by: Tuple[str, ...],
    ) -> float:
        if not query.group_by:
            return 0.0
        group_tables = {table for table, _ in query.group_by}
        if len(group_tables) == 1:
            group_columns = [column for _, column in query.group_by]
            prefix = driving_sorted_by[: len(group_columns)]
            if list(prefix) == group_columns:
                return 0.0  # the driving index already delivers the order
        if rows <= 1:
            return 0.0
        return rows * math.log2(rows + 1) * self.cost.cpu_sort_row
