"""System catalog: tables plus real and hypothetical indexes.

The catalog distinguishes *materialized* indexes (part of the physical
design) from *hypothetical* ones (registered for what-if analysis, per
the AutoAdmin what-if interface the paper builds on).  The optimizer is
always costed against an explicit *configuration* — a set of index names
it may use — so what-if evaluation never mutates the catalog.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.dbms.schema import IndexSpec, Table
from repro.errors import CatalogError

__all__ = ["Catalog"]


class Catalog:
    """A named collection of tables and indexes."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, IndexSpec] = {}
        self._hypothetical: Set[str] = set()

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Register a table.

        Raises:
            CatalogError: On duplicate table names.
        """
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    @property
    def tables(self) -> List[Table]:
        """All registered tables."""
        return list(self._tables.values())

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def add_index(self, spec: IndexSpec, hypothetical: bool = False) -> None:
        """Register an index (optionally as what-if hypothetical).

        Raises:
            CatalogError: On duplicate names, unknown tables/columns, or
                a second clustered index on the same table.
        """
        if spec.name in self._indexes:
            raise CatalogError(f"index {spec.name!r} already exists")
        table = self.table(spec.table)
        for column_name in spec.all_columns:
            if not table.has_column(column_name):
                raise CatalogError(
                    f"index {spec.name!r}: table {spec.table!r} has no "
                    f"column {column_name!r}"
                )
        if spec.clustered:
            for other in self.indexes_on(spec.table):
                if other.clustered and other.name != spec.name:
                    raise CatalogError(
                        f"table {spec.table!r} already has clustered index "
                        f"{other.name!r}"
                    )
        self._indexes[spec.name] = spec
        if hypothetical:
            self._hypothetical.add(spec.name)

    def drop_index(self, name: str) -> None:
        """Remove an index from the catalog."""
        if name not in self._indexes:
            raise CatalogError(f"unknown index {name!r}")
        del self._indexes[name]
        self._hypothetical.discard(name)

    def index(self, name: str) -> IndexSpec:
        """Look up an index by name."""
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    def has_index(self, name: str) -> bool:
        """True when the catalog defines ``name``."""
        return name in self._indexes

    def is_hypothetical(self, name: str) -> bool:
        """True when ``name`` was registered as a what-if index."""
        return name in self._hypothetical

    def indexes_on(self, table_name: str) -> List[IndexSpec]:
        """All indexes (real and hypothetical) on a table."""
        return [
            spec for spec in self._indexes.values() if spec.table == table_name
        ]

    @property
    def indexes(self) -> List[IndexSpec]:
        """All registered indexes."""
        return list(self._indexes.values())

    @property
    def materialized_indexes(self) -> List[str]:
        """Names of non-hypothetical indexes (the current design)."""
        return [
            name for name in self._indexes if name not in self._hypothetical
        ]

    def configuration(
        self, extra: Iterable[str] = (), include_materialized: bool = True
    ) -> Set[str]:
        """An index-name set for what-if costing.

        Args:
            extra: Hypothetical indexes to enable.
            include_materialized: Include the real physical design.
        """
        config: Set[str] = set()
        if include_materialized:
            config.update(self.materialized_indexes)
        for name in extra:
            if name not in self._indexes:
                raise CatalogError(f"unknown index {name!r}")
            config.add(name)
        return config
