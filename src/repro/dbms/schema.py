"""Relational schema objects for the simulated DBMS.

The substrate models what the ordering problem actually consumes from a
DBMS: table/column statistics precise enough for a cost-based optimizer
and for an index build-cost model.  Physical layout is abstracted to
page counts derived from row counts and column widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, ValidationError

__all__ = ["Column", "Table", "IndexSpec", "PAGE_BYTES"]

#: Bytes per storage page; only ratios matter, but a realistic constant
#: keeps page counts interpretable.
PAGE_BYTES = 8192

#: Per-row overhead (row header, null bitmap) in bytes.
_ROW_OVERHEAD = 16

#: Per-entry overhead in index leaf pages (pointer + header).
_INDEX_ENTRY_OVERHEAD = 12


@dataclass(frozen=True)
class Column:
    """A table column with optimizer statistics.

    Attributes:
        name: Column name, unique within its table.
        width: Average stored width in bytes.
        distinct: Number of distinct values (cardinality statistic).
    """

    name: str
    width: int = 8
    distinct: int = 100

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("column name must be non-empty")
        if self.width <= 0:
            raise ValidationError(f"column {self.name!r}: width must be > 0")
        if self.distinct <= 0:
            raise ValidationError(
                f"column {self.name!r}: distinct must be > 0"
            )


class Table:
    """A base table with row count and column statistics."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        row_count: int,
    ) -> None:
        if not name:
            raise ValidationError("table name must be non-empty")
        if row_count < 0:
            raise ValidationError(f"table {name!r}: row_count must be >= 0")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.row_count = row_count
        self._by_name: Dict[str, Column] = {}
        for column in self.columns:
            if column.name in self._by_name:
                raise CatalogError(
                    f"table {name!r}: duplicate column {column.name!r}"
                )
            self._by_name[column.name] = column

    def column(self, name: str) -> Column:
        """Look up a column by name.

        Raises:
            CatalogError: If the column does not exist.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        """True when the table defines ``name``."""
        return name in self._by_name

    @property
    def row_width(self) -> int:
        """Average stored row width in bytes."""
        return _ROW_OVERHEAD + sum(c.width for c in self.columns)

    @property
    def pages(self) -> int:
        """Heap page count (the full-scan cost driver)."""
        if self.row_count == 0:
            return 1
        rows_per_page = max(1, PAGE_BYTES // self.row_width)
        return max(1, -(-self.row_count // rows_per_page))

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, cols={len(self.columns)}, "
            f"rows={self.row_count})"
        )


@dataclass(frozen=True)
class IndexSpec:
    """A (possibly hypothetical) B-tree index definition.

    Attributes:
        name: Index name, unique within the catalog.
        table: Owning table name.
        key_columns: Ordered key columns (seek/sort order).
        include_columns: Non-key leaf payload columns (covering support).
        clustered: Clustered indexes store the full row; at most one per
            table.  A clustered index must be deployed before dependent
            secondaries (the paper's precedence example).
    """

    name: str
    table: str
    key_columns: Tuple[str, ...]
    include_columns: Tuple[str, ...] = ()
    clustered: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "key_columns", tuple(self.key_columns))
        object.__setattr__(
            self, "include_columns", tuple(self.include_columns)
        )
        if not self.name:
            raise ValidationError("index name must be non-empty")
        if not self.key_columns:
            raise ValidationError(
                f"index {self.name!r}: needs at least one key column"
            )
        overlap = set(self.key_columns) & set(self.include_columns)
        if overlap:
            raise ValidationError(
                f"index {self.name!r}: columns {sorted(overlap)} are both "
                f"key and include"
            )
        if len(set(self.key_columns)) != len(self.key_columns):
            raise ValidationError(
                f"index {self.name!r}: duplicate key columns"
            )

    @property
    def all_columns(self) -> Tuple[str, ...]:
        """Key columns followed by include columns."""
        return self.key_columns + self.include_columns

    def covers(self, needed: Sequence[str]) -> bool:
        """True when every needed column is stored in the index leaf."""
        return set(needed) <= set(self.all_columns)

    def entry_width(self, table: Table) -> int:
        """Average leaf-entry width in bytes."""
        width = _INDEX_ENTRY_OVERHEAD
        if self.clustered:
            return table.row_width
        for column_name in self.all_columns:
            width += table.column(column_name).width
        return width

    def leaf_pages(self, table: Table) -> int:
        """Leaf page count (the index-scan cost driver)."""
        if table.row_count == 0:
            return 1
        entries_per_page = max(1, PAGE_BYTES // self.entry_width(table))
        return max(1, -(-table.row_count // entries_per_page))

    def size_bytes(self, table: Table) -> int:
        """Approximate total index size (leaf level dominates)."""
        return self.leaf_pages(table) * PAGE_BYTES

    def key_prefix_of(self, other: "IndexSpec") -> bool:
        """True when this index's keys are a prefix of ``other``'s keys."""
        if len(self.key_columns) > len(other.key_columns):
            return False
        return (
            other.key_columns[: len(self.key_columns)] == self.key_columns
        )
