"""Structural query representation for the simulated DBMS.

Queries are select-project-join-aggregate blocks encoded structurally —
the information a what-if optimizer consumes — rather than SQL text:

* :class:`Predicate` — single-table filters (equality, range, IN),
* :class:`JoinEdge` — equi-join between two tables,
* :class:`Query` — tables, filters, joins, referenced columns, and a
  workload weight (execution frequency).

This mirrors the substitution documented in DESIGN.md: the candidate
generation, plan costing, and interaction structure depend only on which
columns are filtered/joined/grouped and how selective those filters are.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError, ValidationError

__all__ = ["PredicateOp", "Predicate", "JoinEdge", "Query", "Workload"]


class PredicateOp(enum.Enum):
    """Filter operator classes the cost model distinguishes."""

    EQ = "eq"
    RANGE = "range"
    IN = "in"


@dataclass(frozen=True)
class Predicate:
    """A single-table filter.

    Attributes:
        table: Table name.
        column: Filtered column.
        op: Operator class.
        selectivity: Fraction of rows passing; ``None`` derives an
            estimate from column statistics (``1/distinct`` for EQ, a
            conventional 1/3 for ranges, ``values/distinct`` for IN).
        values: For IN predicates, the number of probed values.
    """

    table: str
    column: str
    op: PredicateOp = PredicateOp.EQ
    selectivity: Optional[float] = None
    values: int = 1

    def __post_init__(self) -> None:
        if self.selectivity is not None and not 0.0 < self.selectivity <= 1.0:
            raise ValidationError(
                f"predicate on {self.table}.{self.column}: selectivity "
                f"must be in (0, 1], got {self.selectivity}"
            )
        if self.values < 1:
            raise ValidationError("IN predicate needs values >= 1")


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join ``left.left_column = right.right_column``."""

    left: str
    left_column: str
    right: str
    right_column: str

    def involves(self, table: str) -> bool:
        """True when the edge touches ``table``."""
        return table in (self.left, self.right)

    def other(self, table: str) -> str:
        """The table on the opposite side of ``table``."""
        if table == self.left:
            return self.right
        if table == self.right:
            return self.left
        raise QueryError(f"join edge does not involve table {table!r}")

    def column_of(self, table: str) -> str:
        """The join column on ``table``'s side."""
        if table == self.left:
            return self.left_column
        if table == self.right:
            return self.right_column
        raise QueryError(f"join edge does not involve table {table!r}")


class Query:
    """One workload query.

    Args:
        name: Unique query name (e.g. ``"tpch_q3"``).
        tables: Tables referenced.
        predicates: Single-table filters.
        joins: Equi-join edges; the join graph must be connected over
            ``tables`` (validated by the optimizer).
        group_by: Columns grouped on, as ``(table, column)`` pairs.
        select: Additional output columns, as ``(table, column)`` pairs
            (aggregation inputs, projections).
        weight: Execution frequency weight.
    """

    def __init__(
        self,
        name: str,
        tables: Sequence[str],
        predicates: Sequence[Predicate] = (),
        joins: Sequence[JoinEdge] = (),
        group_by: Sequence[Tuple[str, str]] = (),
        select: Sequence[Tuple[str, str]] = (),
        weight: float = 1.0,
    ) -> None:
        if not name:
            raise ValidationError("query name must be non-empty")
        if not tables:
            raise QueryError(f"query {name!r}: needs at least one table")
        if len(set(tables)) != len(tables):
            raise QueryError(f"query {name!r}: duplicate table references")
        if weight <= 0:
            raise ValidationError(f"query {name!r}: weight must be positive")
        self.name = name
        self.tables: Tuple[str, ...] = tuple(tables)
        self.predicates: Tuple[Predicate, ...] = tuple(predicates)
        self.joins: Tuple[JoinEdge, ...] = tuple(joins)
        self.group_by: Tuple[Tuple[str, str], ...] = tuple(group_by)
        self.select: Tuple[Tuple[str, str], ...] = tuple(select)
        self.weight = weight
        table_set = set(self.tables)
        for predicate in self.predicates:
            if predicate.table not in table_set:
                raise QueryError(
                    f"query {name!r}: predicate on unreferenced table "
                    f"{predicate.table!r}"
                )
        for join in self.joins:
            for side in (join.left, join.right):
                if side not in table_set:
                    raise QueryError(
                        f"query {name!r}: join touches unreferenced table "
                        f"{side!r}"
                    )
        for table, _ in tuple(self.group_by) + tuple(self.select):
            if table not in table_set:
                raise QueryError(
                    f"query {name!r}: output column on unreferenced table "
                    f"{table!r}"
                )

    # ------------------------------------------------------------------
    def predicates_on(self, table: str) -> List[Predicate]:
        """Filters applying to ``table``."""
        return [p for p in self.predicates if p.table == table]

    def joins_of(self, table: str) -> List[JoinEdge]:
        """Join edges touching ``table``."""
        return [j for j in self.joins if j.involves(table)]

    def columns_needed(self, table: str) -> List[str]:
        """Every column of ``table`` the query touches.

        Union of filter columns, join columns, group-by columns, and
        selected columns — the set an index must store to be covering.
        """
        needed: Set[str] = set()
        for predicate in self.predicates_on(table):
            needed.add(predicate.column)
        for join in self.joins_of(table):
            needed.add(join.column_of(table))
        for owner, column in tuple(self.group_by) + tuple(self.select):
            if owner == table:
                needed.add(column)
        return sorted(needed)

    def __repr__(self) -> str:
        return (
            f"Query({self.name!r}, tables={list(self.tables)}, "
            f"|preds|={len(self.predicates)}, |joins|={len(self.joins)})"
        )


class Workload:
    """A named, ordered collection of queries."""

    def __init__(self, name: str, queries: Sequence[Query]) -> None:
        self.name = name
        self.queries: Tuple[Query, ...] = tuple(queries)
        seen: Set[str] = set()
        for query in self.queries:
            if query.name in seen:
                raise QueryError(f"duplicate query name {query.name!r}")
            seen.add(query.name)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def query(self, name: str) -> Query:
        """Look up a query by name."""
        for query in self.queries:
            if query.name == name:
                return query
        raise QueryError(f"unknown query {name!r}")
