"""repro — Incremental Database Design: index deployment ordering.

A faithful, self-contained reproduction of *"Optimizing Index Deployment
Order for Evolving OLAP"* (Kimura, Coffrin, Rasin, Zdonik — EDBT 2012).

Quickstart::

    from repro import ProblemInstance, analyze, VNSSolver, Budget

    instance = ...                       # build or load a matrix file
    report = analyze(instance)           # Section-5 pruning constraints
    result = VNSSolver().solve(
        instance, report.constraints, Budget(time_limit=5.0)
    )
    print(result.solution.order, result.solution.objective)

Packages:

* :mod:`repro.core` — problem model, objective evaluation, matrix I/O.
* :mod:`repro.analysis` — Section-5 pruning properties and the
  iterate-and-recurse fixpoint.
* :mod:`repro.solvers` — greedy/DP/random heuristics, exhaustive /
  subset-DP / A* / CP / MIP exact search, Tabu / LNS / VNS local search.
* :mod:`repro.dbms` — a simulated DBMS substrate: catalog, statistics,
  cost-based what-if optimizer, index advisor, build-cost model, and
  the instance-extraction pipeline of Section 8.
* :mod:`repro.workloads` — TPC-H / TPC-DS style workloads and a
  synthetic instance generator.
* :mod:`repro.experiments` — regenerators for every table and figure of
  the paper's evaluation.
"""

from repro.analysis import AnalysisReport, ConstraintSet, analyze
from repro.core import (
    BuildInteraction,
    DeploymentSchedule,
    EngineStats,
    EvalEngine,
    IndexDef,
    ObjectiveEvaluator,
    PlanDef,
    PrecedenceRule,
    PrefixCachedEvaluator,
    ProblemInstance,
    QueryDef,
    Solution,
    SolveResult,
    SolveStatus,
    deploy_time_variant,
    load_instance,
    normalized_objective,
    reduce_density,
    reweighted_variant,
    save_instance,
)
from repro.errors import (
    BudgetExceeded,
    CatalogError,
    InfeasibleError,
    QueryError,
    ReproError,
    SolverError,
    ValidationError,
)
from repro.solvers import (
    AStarSolver,
    Budget,
    CPSolver,
    available_solvers,
    create,
    solver_specs,
    DPSolver,
    ExhaustiveSolver,
    GreedySolver,
    LNSSolver,
    MIPSolver,
    RandomSolver,
    SubsetDPSolver,
    TabuSolver,
    VNSSolver,
    greedy_order,
    random_statistics,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ProblemInstance",
    "IndexDef",
    "QueryDef",
    "PlanDef",
    "BuildInteraction",
    "PrecedenceRule",
    "ObjectiveEvaluator",
    "PrefixCachedEvaluator",
    "DeploymentSchedule",
    "Solution",
    "SolveResult",
    "SolveStatus",
    "normalized_objective",
    "reduce_density",
    "save_instance",
    "load_instance",
    "deploy_time_variant",
    "reweighted_variant",
    # analysis
    "ConstraintSet",
    "AnalysisReport",
    "analyze",
    # solvers
    "Budget",
    "GreedySolver",
    "greedy_order",
    "DPSolver",
    "RandomSolver",
    "random_statistics",
    "ExhaustiveSolver",
    "SubsetDPSolver",
    "AStarSolver",
    "CPSolver",
    "MIPSolver",
    "TabuSolver",
    "LNSSolver",
    "VNSSolver",
    # errors
    "ReproError",
    "ValidationError",
    "InfeasibleError",
    "BudgetExceeded",
    "SolverError",
    "CatalogError",
    "QueryError",
]
