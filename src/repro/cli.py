"""Command-line interface for the index deployment ordering toolkit.

Three subcommands mirror the Figure-3 pipeline stages a DBA would
script:

* ``repro analyze <matrix.json>`` — run the Section-5 pre-analysis and
  report the deduced constraints;
* ``repro solve <matrix.json>`` — order the deployment with a chosen
  solver and print the schedule (optionally writing the order to JSON);
* ``repro experiment <name>`` — regenerate one of the paper's tables or
  figures (``table4``..``fig13``, ``build_savings``, ``ablation``,
  ``objectives``).

Usage::

    python -m repro solve matrix.json --solver vns --time-limit 10
    python -m repro analyze matrix.json
    python -m repro experiment table7
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.fixpoint import analyze
from repro.core.instance import ProblemInstance
from repro.core.objective import ObjectiveEvaluator, normalized_objective
from repro.core.serialization import load_instance
from repro.errors import ReproError
from repro.solvers.base import Budget, Solver
from repro.solvers.registry import available_solvers, create, solver_specs

__all__ = ["main", "build_parser", "SOLVERS"]

#: Solver names accepted by ``repro solve --solver`` — the registry's
#: name -> factory view.  Adding a solver module that calls
#: ``registry.register`` makes it appear here with no CLI change.
SOLVERS = {name: spec.factory for name, spec in solver_specs().items()}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Index deployment ordering (Kimura et al., EDBT 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="order a matrix file's deployment")
    solve.add_argument("matrix", help="path to a matrix JSON file")
    solve.add_argument(
        "--solver",
        choices=list(available_solvers()),
        default="vns",
        help="solution method (default: vns)",
    )
    solve.add_argument(
        "--time-limit",
        type=float,
        default=10.0,
        help="wall-clock budget in seconds (default: 10)",
    )
    solve.add_argument(
        "--no-analysis",
        action="store_true",
        help="skip the Section-5 pre-analysis constraints",
    )
    solve.add_argument(
        "--output",
        help="write the resulting order to this JSON file",
    )
    solve.add_argument(
        "--schedule",
        action="store_true",
        help="print the step-by-step deployment schedule",
    )

    analyze_cmd = sub.add_parser(
        "analyze", help="run the pruning pre-analysis on a matrix file"
    )
    analyze_cmd.add_argument("matrix", help="path to a matrix JSON file")
    analyze_cmd.add_argument(
        "--properties",
        default="ACMDT",
        help="property subset to run (letters from ACMDT; default all)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument(
        "name",
        help="experiment name (e.g. table5, fig11, objectives)",
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard the experiment grid across N worker processes "
            "(table5/table6/fig13; default: 1 = sequential)"
        ),
    )
    experiment.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="override the per-cell budget in seconds",
    )
    return parser


def _load(path: str) -> ProblemInstance:
    try:
        return load_instance(path)
    except FileNotFoundError:
        raise ReproError(f"matrix file not found: {path}") from None


def _cmd_solve(args: argparse.Namespace, out) -> int:
    instance = _load(args.matrix)
    print(f"instance: {instance}", file=out)
    constraints = None
    if not args.no_analysis:
        report = analyze(instance, time_budget=min(30.0, args.time_limit))
        constraints = report.constraints
        print(f"analysis: {report.describe()}", file=out)
    solver: Solver = create(args.solver)
    result = solver.solve(
        instance, constraints, Budget(time_limit=args.time_limit)
    )
    print(result.describe(), file=out)
    if result.solution is None:
        print("no solution found", file=out)
        return 1
    evaluator = ObjectiveEvaluator(instance)
    schedule = evaluator.schedule(result.solution.order)
    print(
        f"objective: {result.solution.objective:.6g} "
        f"(normalized {normalized_objective(instance, result.solution.objective):.2f})",
        file=out,
    )
    print(f"deployment time: {schedule.total_deploy_time:.6g}", file=out)
    if args.schedule:
        print(f"{'#':>3} {'index':<40} {'cost':>12} {'runtime after':>14}", file=out)
        for step in schedule.steps:
            name = instance.indexes[step.index_id].name
            print(
                f"{step.position:>3} {name:<40} "
                f"{step.build_cost:>12.4g} {step.runtime_after:>14.6g}",
                file=out,
            )
    if args.output:
        payload = {
            "instance": instance.name,
            "solver": args.solver,
            "status": result.status.value,
            "objective": result.solution.objective,
            "order": [
                instance.indexes[i].name for i in result.solution.order
            ],
            "order_ids": list(result.solution.order),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=1)
        print(f"order written to {args.output}", file=out)
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    instance = _load(args.matrix)
    print(f"instance: {instance}", file=out)
    report = analyze(instance, properties=args.properties)
    print(report.describe(), file=out)
    summary = report.constraints.summary()
    for key, value in sorted(summary.items()):
        print(f"  {key}: {value}", file=out)
    for first, second in report.constraints.consecutive_pairs:
        a = instance.indexes[first].name
        b = instance.indexes[second].name
        print(f"  alliance: {a} immediately before {b}", file=out)
    return 0


def _cmd_experiment(args: argparse.Namespace, out) -> int:
    import inspect

    from repro.experiments import ALL_EXPERIMENTS

    runner = ALL_EXPERIMENTS.get(args.name)
    if runner is None:
        print(
            f"unknown experiment {args.name!r}; available: "
            + ", ".join(sorted(ALL_EXPERIMENTS)),
            file=out,
        )
        return 2
    parameters = inspect.signature(runner).parameters
    kwargs = {}
    if args.time_limit is not None:
        if "time_limit" not in parameters:
            print(
                f"note: {args.name} does not take --time-limit; ignored",
                file=out,
            )
        else:
            kwargs["time_limit"] = args.time_limit
    if args.workers != 1:
        if "workers" not in parameters:
            print(
                f"note: {args.name} does not support --workers; "
                "running sequentially",
                file=out,
            )
        else:
            kwargs["workers"] = args.workers
    print(runner(**kwargs).render(), file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "analyze": _cmd_analyze,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 1


if __name__ == "__main__":
    sys.exit(main())
