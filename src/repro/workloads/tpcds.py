"""TPC-DS style schema and a 102-query analytic workload.

The schema covers the benchmark's central star constellations — three
sales channels with their returns, inventory, and the shared dimension
tables — at official SF-1 cardinalities (scaled by ``scale``).

The 102 queries are *structural equivalents* generated from the join
templates that drive the official query set (channel star joins,
demographic and geographic drill-downs, returns analysis, inventory
positioning, promotion effectiveness, and cross-channel comparisons),
with predicates and group-bys drawn deterministically from a seeded RNG.
DESIGN.md documents this substitution: the ordering problem consumes the
workload only through the extracted plan/interaction matrix, whose
structure these templates reproduce (large multi-index plans, shared
dimension indexes across many queries, and dense build interactions on
the wide fact tables).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dbms.catalog import Catalog
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query, Workload
from repro.dbms.schema import Column, Table

__all__ = ["tpcds_catalog", "tpcds_workload", "FACT_TABLES"]

FACT_TABLES = (
    "store_sales",
    "catalog_sales",
    "web_sales",
    "store_returns",
    "catalog_returns",
    "web_returns",
    "inventory",
)


def tpcds_catalog(scale: float = 1.0) -> Catalog:
    """Build the TPC-DS catalog at scale factor ``scale``."""

    def rows(base: int) -> int:
        return max(1, int(base * scale))

    catalog = Catalog()

    catalog.add_table(
        Table(
            "date_dim",
            [
                Column("d_date_sk", 4, 73_049),
                Column("d_date", 4, 73_049),
                Column("d_year", 4, 200),
                Column("d_moy", 4, 12),
                Column("d_qoy", 4, 4),
                Column("d_dow", 4, 7),
                Column("d_month_seq", 4, 2_400),
            ],
            row_count=73_049,
        )
    )
    catalog.add_table(
        Table(
            "item",
            [
                Column("i_item_sk", 4, rows(18_000)),
                Column("i_item_id", 16, rows(9_000)),
                Column("i_category", 16, 10),
                Column("i_class", 16, 100),
                Column("i_brand", 24, 700),
                Column("i_manufact_id", 4, 1_000),
                Column("i_color", 12, 92),
                Column("i_size", 8, 7),
                Column("i_current_price", 8, 100),
            ],
            row_count=rows(18_000),
        )
    )
    catalog.add_table(
        Table(
            "customer",
            [
                Column("c_customer_sk", 4, rows(100_000)),
                Column("c_customer_id", 16, rows(100_000)),
                Column("c_current_addr_sk", 4, rows(50_000)),
                Column("c_current_cdemo_sk", 4, rows(100_000)),
                Column("c_current_hdemo_sk", 4, 7_200),
                Column("c_birth_country", 16, 200),
                Column("c_birth_year", 4, 70),
            ],
            row_count=rows(100_000),
        )
    )
    catalog.add_table(
        Table(
            "customer_address",
            [
                Column("ca_address_sk", 4, rows(50_000)),
                Column("ca_state", 2, 51),
                Column("ca_county", 24, 1_850),
                Column("ca_city", 24, 600),
                Column("ca_zip", 8, 8_000),
                Column("ca_gmt_offset", 4, 6),
            ],
            row_count=rows(50_000),
        )
    )
    catalog.add_table(
        Table(
            "customer_demographics",
            [
                Column("cd_demo_sk", 4, rows(1_920_800)),
                Column("cd_gender", 1, 2),
                Column("cd_marital_status", 1, 5),
                Column("cd_education_status", 16, 7),
                Column("cd_purchase_estimate", 4, 20),
                Column("cd_credit_rating", 12, 4),
            ],
            row_count=rows(1_920_800),
        )
    )
    catalog.add_table(
        Table(
            "household_demographics",
            [
                Column("hd_demo_sk", 4, 7_200),
                Column("hd_income_band_sk", 4, 20),
                Column("hd_buy_potential", 12, 6),
                Column("hd_dep_count", 4, 10),
                Column("hd_vehicle_count", 4, 6),
            ],
            row_count=7_200,
        )
    )
    catalog.add_table(
        Table(
            "store",
            [
                Column("s_store_sk", 4, rows(102)),
                Column("s_store_id", 16, rows(51)),
                Column("s_state", 2, 9),
                Column("s_county", 24, 9),
                Column("s_city", 24, 18),
                Column("s_number_employees", 4, 100),
            ],
            row_count=rows(102),
        )
    )
    catalog.add_table(
        Table(
            "warehouse",
            [
                Column("w_warehouse_sk", 4, 5),
                Column("w_warehouse_sq_ft", 4, 5),
                Column("w_state", 2, 5),
            ],
            row_count=5,
        )
    )
    catalog.add_table(
        Table(
            "promotion",
            [
                Column("p_promo_sk", 4, rows(300)),
                Column("p_channel_dmail", 1, 2),
                Column("p_channel_email", 1, 2),
                Column("p_channel_tv", 1, 2),
            ],
            row_count=rows(300),
        )
    )
    catalog.add_table(
        Table(
            "ship_mode",
            [
                Column("sm_ship_mode_sk", 4, 20),
                Column("sm_type", 16, 6),
                Column("sm_carrier", 16, 20),
            ],
            row_count=20,
        )
    )
    catalog.add_table(
        Table(
            "web_site",
            [
                Column("web_site_sk", 4, 24),
                Column("web_class", 16, 6),
            ],
            row_count=24,
        )
    )
    catalog.add_table(
        Table(
            "call_center",
            [
                Column("cc_call_center_sk", 4, 6),
                Column("cc_class", 12, 3),
            ],
            row_count=6,
        )
    )

    catalog.add_table(
        Table(
            "store_sales",
            [
                Column("ss_sold_date_sk", 4, 1_800),
                Column("ss_item_sk", 4, rows(18_000)),
                Column("ss_customer_sk", 4, rows(100_000)),
                Column("ss_cdemo_sk", 4, rows(1_920_800)),
                Column("ss_hdemo_sk", 4, 7_200),
                Column("ss_addr_sk", 4, rows(50_000)),
                Column("ss_store_sk", 4, rows(102)),
                Column("ss_promo_sk", 4, rows(300)),
                Column("ss_quantity", 4, 100),
                Column("ss_sales_price", 8, 20_000),
                Column("ss_ext_sales_price", 8, 100_000),
                Column("ss_net_profit", 8, 200_000),
                Column("ss_net_paid", 8, 150_000),
            ],
            row_count=rows(2_880_000),
        )
    )
    catalog.add_table(
        Table(
            "catalog_sales",
            [
                Column("cs_sold_date_sk", 4, 1_800),
                Column("cs_item_sk", 4, rows(18_000)),
                Column("cs_bill_customer_sk", 4, rows(100_000)),
                Column("cs_bill_cdemo_sk", 4, rows(1_920_800)),
                Column("cs_call_center_sk", 4, 6),
                Column("cs_ship_mode_sk", 4, 20),
                Column("cs_warehouse_sk", 4, 5),
                Column("cs_promo_sk", 4, rows(300)),
                Column("cs_quantity", 4, 100),
                Column("cs_sales_price", 8, 20_000),
                Column("cs_ext_sales_price", 8, 100_000),
                Column("cs_net_profit", 8, 200_000),
            ],
            row_count=rows(1_440_000),
        )
    )
    catalog.add_table(
        Table(
            "web_sales",
            [
                Column("ws_sold_date_sk", 4, 1_800),
                Column("ws_item_sk", 4, rows(18_000)),
                Column("ws_bill_customer_sk", 4, rows(100_000)),
                Column("ws_bill_addr_sk", 4, rows(50_000)),
                Column("ws_web_site_sk", 4, 24),
                Column("ws_ship_mode_sk", 4, 20),
                Column("ws_warehouse_sk", 4, 5),
                Column("ws_promo_sk", 4, rows(300)),
                Column("ws_quantity", 4, 100),
                Column("ws_sales_price", 8, 20_000),
                Column("ws_ext_sales_price", 8, 100_000),
                Column("ws_net_profit", 8, 200_000),
            ],
            row_count=rows(720_000),
        )
    )
    catalog.add_table(
        Table(
            "store_returns",
            [
                Column("sr_returned_date_sk", 4, 1_800),
                Column("sr_item_sk", 4, rows(18_000)),
                Column("sr_customer_sk", 4, rows(100_000)),
                Column("sr_store_sk", 4, rows(102)),
                Column("sr_reason_sk", 4, 35),
                Column("sr_return_quantity", 4, 100),
                Column("sr_return_amt", 8, 50_000),
                Column("sr_net_loss", 8, 50_000),
            ],
            row_count=rows(288_000),
        )
    )
    catalog.add_table(
        Table(
            "catalog_returns",
            [
                Column("cr_returned_date_sk", 4, 1_800),
                Column("cr_item_sk", 4, rows(18_000)),
                Column("cr_returning_customer_sk", 4, rows(100_000)),
                Column("cr_call_center_sk", 4, 6),
                Column("cr_reason_sk", 4, 35),
                Column("cr_return_quantity", 4, 100),
                Column("cr_return_amount", 8, 50_000),
            ],
            row_count=rows(144_000),
        )
    )
    catalog.add_table(
        Table(
            "web_returns",
            [
                Column("wr_returned_date_sk", 4, 1_800),
                Column("wr_item_sk", 4, rows(18_000)),
                Column("wr_returning_customer_sk", 4, rows(100_000)),
                Column("wr_web_page_sk", 4, 60),
                Column("wr_reason_sk", 4, 35),
                Column("wr_return_quantity", 4, 100),
                Column("wr_return_amt", 8, 50_000),
            ],
            row_count=rows(72_000),
        )
    )
    catalog.add_table(
        Table(
            "inventory",
            [
                Column("inv_date_sk", 4, 261),
                Column("inv_item_sk", 4, rows(18_000)),
                Column("inv_warehouse_sk", 4, 5),
                Column("inv_quantity_on_hand", 4, 1_000),
            ],
            row_count=rows(11_745_000),
        )
    )
    return catalog


# ----------------------------------------------------------------------
# Template machinery for the 102-query workload
# ----------------------------------------------------------------------

_FACT_JOINS: Dict[str, Dict[str, Tuple[str, str, str]]] = {
    # fact -> dim role -> (fact column, dim table, dim column)
    "store_sales": {
        "date": ("ss_sold_date_sk", "date_dim", "d_date_sk"),
        "item": ("ss_item_sk", "item", "i_item_sk"),
        "customer": ("ss_customer_sk", "customer", "c_customer_sk"),
        "cdemo": ("ss_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        "hdemo": ("ss_hdemo_sk", "household_demographics", "hd_demo_sk"),
        "address": ("ss_addr_sk", "customer_address", "ca_address_sk"),
        "store": ("ss_store_sk", "store", "s_store_sk"),
        "promo": ("ss_promo_sk", "promotion", "p_promo_sk"),
    },
    "catalog_sales": {
        "date": ("cs_sold_date_sk", "date_dim", "d_date_sk"),
        "item": ("cs_item_sk", "item", "i_item_sk"),
        "customer": ("cs_bill_customer_sk", "customer", "c_customer_sk"),
        "cdemo": ("cs_bill_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        "callcenter": ("cs_call_center_sk", "call_center", "cc_call_center_sk"),
        "shipmode": ("cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk"),
        "warehouse": ("cs_warehouse_sk", "warehouse", "w_warehouse_sk"),
        "promo": ("cs_promo_sk", "promotion", "p_promo_sk"),
    },
    "web_sales": {
        "date": ("ws_sold_date_sk", "date_dim", "d_date_sk"),
        "item": ("ws_item_sk", "item", "i_item_sk"),
        "customer": ("ws_bill_customer_sk", "customer", "c_customer_sk"),
        "address": ("ws_bill_addr_sk", "customer_address", "ca_address_sk"),
        "website": ("ws_web_site_sk", "web_site", "web_site_sk"),
        "shipmode": ("ws_ship_mode_sk", "ship_mode", "sm_ship_mode_sk"),
        "warehouse": ("ws_warehouse_sk", "warehouse", "w_warehouse_sk"),
        "promo": ("ws_promo_sk", "promotion", "p_promo_sk"),
    },
    "store_returns": {
        "date": ("sr_returned_date_sk", "date_dim", "d_date_sk"),
        "item": ("sr_item_sk", "item", "i_item_sk"),
        "customer": ("sr_customer_sk", "customer", "c_customer_sk"),
        "store": ("sr_store_sk", "store", "s_store_sk"),
    },
    "catalog_returns": {
        "date": ("cr_returned_date_sk", "date_dim", "d_date_sk"),
        "item": ("cr_item_sk", "item", "i_item_sk"),
        "customer": ("cr_returning_customer_sk", "customer", "c_customer_sk"),
        "callcenter": ("cr_call_center_sk", "call_center", "cc_call_center_sk"),
    },
    "web_returns": {
        "date": ("wr_returned_date_sk", "date_dim", "d_date_sk"),
        "item": ("wr_item_sk", "item", "i_item_sk"),
        "customer": ("wr_returning_customer_sk", "customer", "c_customer_sk"),
    },
    "inventory": {
        "date": ("inv_date_sk", "date_dim", "d_date_sk"),
        "item": ("inv_item_sk", "item", "i_item_sk"),
        "warehouse": ("inv_warehouse_sk", "warehouse", "w_warehouse_sk"),
    },
}

_DIM_PREDICATES: Dict[str, List[Tuple[str, str, Optional[float]]]] = {
    # dim table -> candidate predicates (column, op, selectivity override)
    "date_dim": [
        ("d_year", "eq", None),
        ("d_moy", "eq", None),
        ("d_qoy", "eq", None),
        ("d_month_seq", "range", 0.05),
    ],
    "item": [
        ("i_category", "eq", None),
        ("i_class", "eq", None),
        ("i_brand", "in", None),
        ("i_manufact_id", "eq", None),
        ("i_color", "in", None),
        ("i_current_price", "range", 0.2),
    ],
    "customer_address": [
        ("ca_state", "in", None),
        ("ca_county", "in", None),
        ("ca_gmt_offset", "eq", None),
    ],
    "customer_demographics": [
        ("cd_gender", "eq", None),
        ("cd_marital_status", "eq", None),
        ("cd_education_status", "eq", None),
    ],
    "household_demographics": [
        ("hd_buy_potential", "eq", None),
        ("hd_dep_count", "eq", None),
        ("hd_income_band_sk", "range", 0.25),
    ],
    "store": [("s_state", "in", None), ("s_county", "eq", None)],
    "promotion": [("p_channel_dmail", "eq", None), ("p_channel_email", "eq", None)],
    "ship_mode": [("sm_type", "eq", None)],
    "web_site": [("web_class", "eq", None)],
    "call_center": [("cc_class", "eq", None)],
    "warehouse": [("w_state", "eq", None)],
    "customer": [("c_birth_year", "range", 0.15), ("c_birth_country", "in", None)],
}

_GROUP_COLUMNS: Dict[str, List[str]] = {
    "item": ["i_category", "i_class", "i_brand"],
    "date_dim": ["d_year", "d_moy"],
    "store": ["s_state", "s_store_id"],
    "customer_address": ["ca_state", "ca_city"],
    "customer": ["c_customer_id"],
    "customer_demographics": ["cd_gender", "cd_marital_status"],
    "household_demographics": ["hd_buy_potential"],
    "warehouse": ["w_state"],
    "web_site": ["web_class"],
    "ship_mode": ["sm_type"],
    "call_center": ["cc_class"],
    "promotion": ["p_channel_dmail"],
}

_FACT_MEASURES: Dict[str, List[str]] = {
    "store_sales": ["ss_quantity", "ss_ext_sales_price", "ss_net_profit"],
    "catalog_sales": ["cs_quantity", "cs_ext_sales_price", "cs_net_profit"],
    "web_sales": ["ws_quantity", "ws_ext_sales_price", "ws_net_profit"],
    "store_returns": ["sr_return_quantity", "sr_return_amt", "sr_net_loss"],
    "catalog_returns": ["cr_return_quantity", "cr_return_amount"],
    "web_returns": ["wr_return_quantity", "wr_return_amt"],
    "inventory": ["inv_quantity_on_hand"],
}

#: Which dimension roles each template draws from, per fact kind.
_TEMPLATES: List[Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = [
    # (template name, facts eligible, dim roles)
    ("channel_star", ("store_sales", "catalog_sales", "web_sales"),
     ("date", "item", "store", "website", "callcenter")),
    ("demographic", ("store_sales", "catalog_sales"),
     ("date", "cdemo", "hdemo", "item")),
    ("geographic", ("store_sales", "web_sales"),
     ("date", "customer", "address")),
    ("returns", ("store_returns", "catalog_returns", "web_returns"),
     ("date", "item", "customer")),
    ("inventory_position", ("inventory",), ("date", "item", "warehouse")),
    ("promotion_effect", ("store_sales", "catalog_sales", "web_sales"),
     ("date", "item", "promo")),
    ("fulfilment", ("catalog_sales", "web_sales"),
     ("date", "shipmode", "warehouse", "item")),
]

#: Roles shared by the sales channels in cross-channel comparisons.
_CROSS_CHANNEL_ROLES = ("date", "item", "customer", "promo")
_SALES_FACTS = ("store_sales", "catalog_sales", "web_sales")


def _make_predicate(
    table: str, column: str, op: str, selectivity: Optional[float], rng: random.Random
) -> Predicate:
    if op == "eq":
        return Predicate(table, column, PredicateOp.EQ, selectivity)
    if op == "in":
        return Predicate(
            table, column, PredicateOp.IN, selectivity, values=rng.randint(2, 6)
        )
    return Predicate(
        table,
        column,
        PredicateOp.RANGE,
        selectivity if selectivity is not None else rng.choice([0.1, 0.2, 0.3]),
    )


def _cross_channel_query(name: str, rng: random.Random) -> Query:
    """Two sales channels joined through shared dimensions (wide plans)."""
    fact_a, fact_b = rng.sample(list(_SALES_FACTS), 2)
    tables = [fact_a, fact_b]
    joins: List[JoinEdge] = []
    predicates: List[Predicate] = []
    group_by: List[Tuple[str, str]] = []
    roles = [
        role
        for role in _CROSS_CHANNEL_ROLES
        if role in _FACT_JOINS[fact_a] and role in _FACT_JOINS[fact_b]
    ]
    chosen = roles[: rng.randint(2, len(roles))]
    if "date" not in chosen and "date" in roles:
        chosen[0] = "date"
    for role in chosen:
        column_a, dim_table, dim_column = _FACT_JOINS[fact_a][role]
        column_b = _FACT_JOINS[fact_b][role][0]
        tables.append(dim_table)
        joins.append(JoinEdge(fact_a, column_a, dim_table, dim_column))
        joins.append(JoinEdge(fact_b, column_b, dim_table, dim_column))
        options = _DIM_PREDICATES.get(dim_table, [])
        if options:
            column, op, sel = options[rng.randrange(len(options))]
            predicates.append(_make_predicate(dim_table, column, op, sel, rng))
        for column in _GROUP_COLUMNS.get(dim_table, [])[:1]:
            group_by.append((dim_table, column))
    select = [
        (fact_a, _FACT_MEASURES[fact_a][0]),
        (fact_b, _FACT_MEASURES[fact_b][0]),
    ]
    return Query(
        name,
        tables=tables,
        predicates=predicates,
        joins=joins,
        group_by=group_by[:2],
        select=select,
        weight=rng.choice([0.5, 1.0, 1.0]),
    )


def _template_query(name: str, rng: random.Random) -> Query:
    if rng.random() < 0.18:
        return _cross_channel_query(name, rng)
    template_name, facts, roles = _TEMPLATES[rng.randrange(len(_TEMPLATES))]
    fact = rng.choice(list(facts))
    fact_joins = _FACT_JOINS[fact]
    usable_roles = [role for role in roles if role in fact_joins]
    n_dims = rng.randint(2, min(5, len(usable_roles)))
    chosen_roles = rng.sample(usable_roles, n_dims)
    if "date" in fact_joins and "date" not in chosen_roles:
        chosen_roles[0] = "date"  # analytic queries are date-bounded
    tables = [fact]
    joins: List[JoinEdge] = []
    predicates: List[Predicate] = []
    group_by: List[Tuple[str, str]] = []
    for role in chosen_roles:
        fact_column, dim_table, dim_column = fact_joins[role]
        if dim_table in tables:
            continue
        tables.append(dim_table)
        joins.append(JoinEdge(fact, fact_column, dim_table, dim_column))
        options = _DIM_PREDICATES.get(dim_table, [])
        if options:
            for column, op, sel in rng.sample(
                options, rng.randint(1, min(2, len(options)))
            ):
                predicates.append(
                    _make_predicate(dim_table, column, op, sel, rng)
                )
    group_candidates = [
        (table, column)
        for table in tables[1:]
        for column in _GROUP_COLUMNS.get(table, [])
    ]
    if group_candidates:
        for pair in rng.sample(
            group_candidates, rng.randint(1, min(2, len(group_candidates)))
        ):
            group_by.append(pair)
    measures = _FACT_MEASURES[fact]
    select = [
        (fact, column)
        for column in rng.sample(measures, rng.randint(1, min(2, len(measures))))
    ]
    return Query(
        name,
        tables=tables,
        predicates=predicates,
        joins=joins,
        group_by=group_by,
        select=select,
        weight=rng.choice([0.5, 1.0, 1.0, 1.0, 2.0]),
    )


def tpcds_workload(n_queries: int = 102, seed: int = 2012) -> Workload:
    """Generate the TPC-DS style workload.

    Deterministic for a given ``(n_queries, seed)``; the default matches
    the paper's 102-query setting.
    """
    rng = random.Random(seed)
    queries = [
        _template_query(f"tpcds_q{number:03d}", rng)
        for number in range(1, n_queries + 1)
    ]
    return Workload("tpcds", queries)
