"""End-to-end extraction of the TPC-H / TPC-DS ordering instances.

Convenience wrappers running the full Figure-3 pipeline: build the
catalog, generate and select candidate indexes with the advisor, then
extract the plan/interaction matrix.  Results are memoized in-process
and (optionally) on disk, since experiments re-use the same instances
many times.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.instance import ProblemInstance
from repro.core.serialization import load_instance, save_instance
from repro.dbms.advisor import AdvisorConfig, IndexAdvisor
from repro.dbms.catalog import Catalog
from repro.dbms.extract import ExtractionConfig, InstanceExtractor
from repro.dbms.query import Workload
from repro.workloads.tpch import tpch_catalog, tpch_workload
from repro.workloads.tpcds import tpcds_catalog, tpcds_workload

__all__ = [
    "build_instance",
    "build_tpch_instance",
    "build_tpcds_instance",
    "DATA_DIR",
]

#: Packaged matrix-file artifacts (pre-extracted instances).
DATA_DIR = Path(__file__).parent / "data"

_memo: Dict[Tuple[str, float, Optional[int]], ProblemInstance] = {}


def _default_cache(name: str, scale: float, extras: str = "") -> Optional[Path]:
    """Packaged artifact path for the canonical configuration, if any."""
    if scale != 1.0:
        return None
    candidate = DATA_DIR / f"{name}{extras}.json"
    return candidate if candidate.exists() else None


def build_instance(
    catalog: Catalog,
    workload: Workload,
    name: str,
    max_indexes: Optional[int] = None,
    extraction: Optional[ExtractionConfig] = None,
    advisor_config: Optional[AdvisorConfig] = None,
) -> ProblemInstance:
    """Run advisor + extractor over an arbitrary catalog/workload pair."""
    advisor = IndexAdvisor(
        catalog,
        workload,
        advisor_config or AdvisorConfig(max_indexes=max_indexes),
    )
    suggested = advisor.select()
    extractor = InstanceExtractor(catalog, workload, extraction)
    return extractor.extract(suggested, name=name)


def build_tpch_instance(
    scale: float = 1.0,
    max_indexes: Optional[int] = None,
    cache_path: Optional[Path] = None,
) -> ProblemInstance:
    """The TPC-H ordering instance (paper: |Q|=22, |I|=31, |P|=221)."""
    key = ("tpch", scale, max_indexes)
    if key in _memo:
        return _memo[key]
    if cache_path is None and max_indexes is None:
        cache_path = _default_cache("tpch", scale)
    if cache_path is not None and Path(cache_path).exists():
        instance = load_instance(cache_path)
        _memo[key] = instance
        return instance
    catalog = tpch_catalog(scale)
    instance = build_instance(
        catalog, tpch_workload(), name="tpch", max_indexes=max_indexes
    )
    _memo[key] = instance
    if cache_path is not None:
        save_instance(instance, cache_path)
    return instance


def build_tpcds_instance(
    scale: float = 1.0,
    n_queries: int = 102,
    max_indexes: Optional[int] = None,
    seed: int = 2012,
    cache_path: Optional[Path] = None,
) -> ProblemInstance:
    """The TPC-DS ordering instance (paper: |Q|=102, |I|=148, |P|=3386)."""
    key = (f"tpcds-{n_queries}-{seed}", scale, max_indexes)
    if key in _memo:
        return _memo[key]
    if cache_path is None and max_indexes is None and n_queries == 102 and seed == 2012:
        cache_path = _default_cache("tpcds", scale)
    if cache_path is not None and Path(cache_path).exists():
        instance = load_instance(cache_path)
        _memo[key] = instance
        return instance
    catalog = tpcds_catalog(scale)
    # The paper's design tool was permissive (148 suggested indexes, up
    # to 300 depending on configuration); match that with a near-zero
    # benefit threshold capped at the paper's index count.
    advisor_config = AdvisorConfig(
        min_benefit_fraction=1e-6,
        max_indexes=max_indexes if max_indexes is not None else 148,
    )
    instance = build_instance(
        catalog,
        tpcds_workload(n_queries=n_queries, seed=seed),
        name="tpcds",
        advisor_config=advisor_config,
    )
    _memo[key] = instance
    if cache_path is not None:
        save_instance(instance, cache_path)
    return instance
