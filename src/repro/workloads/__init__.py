"""Workloads: TPC-H, TPC-DS style, and synthetic instance generation."""

from repro.workloads.extracted import (
    build_instance,
    build_tpcds_instance,
    build_tpch_instance,
)
from repro.workloads.generator import GeneratorConfig, generate_instance
from repro.workloads.tpcds import tpcds_catalog, tpcds_workload
from repro.workloads.tpch import tpch_catalog, tpch_workload

__all__ = [
    "build_instance",
    "build_tpch_instance",
    "build_tpcds_instance",
    "GeneratorConfig",
    "generate_instance",
    "tpch_catalog",
    "tpch_workload",
    "tpcds_catalog",
    "tpcds_workload",
]
