"""Synthetic ordering-problem instance generator.

Generates :class:`~repro.core.ProblemInstance` objects directly (no
DBMS extraction) with controllable size and interaction density — used
by property-based tests and by scalability sweeps that need instance
families larger or denser than the benchmark workloads provide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.instance import (
    BuildInteraction,
    IndexDef,
    PlanDef,
    PrecedenceRule,
    ProblemInstance,
    QueryDef,
)
from repro.errors import ValidationError

__all__ = ["GeneratorConfig", "generate_instance"]


@dataclass
class GeneratorConfig:
    """Shape knobs for synthetic instances.

    Attributes:
        n_indexes: Permutation length.
        n_queries: Workload size.
        plans_per_query: Mean number of plans per query.
        max_plan_size: Largest index set a plan may use.
        multi_index_fraction: Fraction of plans using >= 2 indexes
            (query-interaction density).
        build_interaction_rate: Expected build interactions per index.
        cost_range: Index creation-cost range.
        runtime_range: Query base-runtime range.
        precedence_rate: Expected hard precedence rules per 10 indexes.
    """

    n_indexes: int = 20
    n_queries: int = 12
    plans_per_query: float = 3.0
    max_plan_size: int = 4
    multi_index_fraction: float = 0.5
    build_interaction_rate: float = 1.0
    cost_range: tuple = (5.0, 120.0)
    runtime_range: tuple = (50.0, 400.0)
    precedence_rate: float = 0.0


def generate_instance(
    seed: int, config: Optional[GeneratorConfig] = None, name: Optional[str] = None
) -> ProblemInstance:
    """Generate a random, valid instance (deterministic per seed)."""
    config = config or GeneratorConfig()
    if config.n_indexes < 1 or config.n_queries < 1:
        raise ValidationError("need at least one index and one query")
    rng = random.Random(seed)
    indexes = [
        IndexDef(
            index_id=i,
            name=f"ix{i:03d}",
            create_cost=rng.uniform(*config.cost_range),
            size=rng.uniform(1.0, 100.0),
        )
        for i in range(config.n_indexes)
    ]
    queries = [
        QueryDef(
            query_id=q,
            name=f"q{q:03d}",
            base_runtime=rng.uniform(*config.runtime_range),
            weight=rng.choice([0.5, 1.0, 1.0, 2.0]),
        )
        for q in range(config.n_queries)
    ]
    plans: List[PlanDef] = []
    for query in queries:
        count = max(1, int(rng.gauss(config.plans_per_query, 1.0)))
        remaining_budget = query.base_runtime * 0.9
        best_so_far = 0.0
        for _ in range(count):
            if rng.random() < config.multi_index_fraction:
                size = rng.randint(2, max(2, config.max_plan_size))
            else:
                size = 1
            size = min(size, config.n_indexes)
            members = frozenset(rng.sample(range(config.n_indexes), size))
            speedup = rng.uniform(0.05, 1.0) * remaining_budget
            if speedup <= 0:
                continue
            plans.append(
                PlanDef(len(plans), query.query_id, members, speedup)
            )
            best_so_far = max(best_so_far, speedup)
        if not plans or plans[-1].query_id != query.query_id:
            members = frozenset([rng.randrange(config.n_indexes)])
            plans.append(
                PlanDef(
                    len(plans),
                    query.query_id,
                    members,
                    rng.uniform(0.05, 0.5) * remaining_budget,
                )
            )
    interactions: List[BuildInteraction] = []
    seen_pairs = set()
    target_count = int(config.build_interaction_rate * config.n_indexes)
    attempts = 0
    while len(interactions) < target_count and attempts < target_count * 10:
        attempts += 1
        if config.n_indexes < 2:
            break
        target, helper = rng.sample(range(config.n_indexes), 2)
        if (target, helper) in seen_pairs:
            continue
        seen_pairs.add((target, helper))
        saving = rng.uniform(0.05, 0.8) * indexes[target].create_cost
        interactions.append(BuildInteraction(target, helper, saving))
    precedences: List[PrecedenceRule] = []
    target_rules = int(config.precedence_rate * config.n_indexes / 10)
    for _ in range(target_rules):
        if config.n_indexes < 2:
            break
        a, b = rng.sample(range(config.n_indexes), 2)
        before, after = (a, b) if a < b else (b, a)
        rule = PrecedenceRule(before, after, reason="synthetic")
        if (before, after) not in {(r.before, r.after) for r in precedences}:
            precedences.append(rule)
    return ProblemInstance(
        indexes,
        queries,
        plans,
        interactions,
        precedences,
        name=name or f"synthetic-{seed}",
    )
