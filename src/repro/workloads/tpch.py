"""TPC-H schema and the 22 benchmark queries in structural form.

The schema carries the official SF-1 cardinalities (scaled by the
``scale`` argument) and per-column distinct counts.  Queries are encoded
through the :mod:`repro.dbms.query` builder API rather than SQL text:
what the extraction pipeline needs is which columns each query filters,
joins, groups, and reads — and those follow the official query set.
Selectivity overrides reproduce the benchmark predicates' intent (e.g.
Q6's one-year ship-date window).
"""

from __future__ import annotations

from typing import Dict, List

from repro.dbms.catalog import Catalog
from repro.dbms.query import JoinEdge, Predicate, PredicateOp, Query, Workload
from repro.dbms.schema import Column, Table

__all__ = ["tpch_catalog", "tpch_workload", "TPCH_TABLES"]

TPCH_TABLES = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)


def tpch_catalog(scale: float = 1.0) -> Catalog:
    """Build the TPC-H catalog at scale factor ``scale``."""

    def rows(base: int) -> int:
        return max(1, int(base * scale))

    catalog = Catalog()
    catalog.add_table(
        Table(
            "region",
            [
                Column("r_regionkey", 4, 5),
                Column("r_name", 16, 5),
                Column("r_comment", 80, 5),
            ],
            row_count=5,
        )
    )
    catalog.add_table(
        Table(
            "nation",
            [
                Column("n_nationkey", 4, 25),
                Column("n_name", 16, 25),
                Column("n_regionkey", 4, 5),
                Column("n_comment", 80, 25),
            ],
            row_count=25,
        )
    )
    catalog.add_table(
        Table(
            "supplier",
            [
                Column("s_suppkey", 4, rows(10_000)),
                Column("s_name", 24, rows(10_000)),
                Column("s_address", 32, rows(10_000)),
                Column("s_nationkey", 4, 25),
                Column("s_phone", 16, rows(10_000)),
                Column("s_acctbal", 8, rows(9_000)),
                Column("s_comment", 64, rows(10_000)),
            ],
            row_count=rows(10_000),
        )
    )
    catalog.add_table(
        Table(
            "customer",
            [
                Column("c_custkey", 4, rows(150_000)),
                Column("c_name", 24, rows(150_000)),
                Column("c_address", 32, rows(150_000)),
                Column("c_nationkey", 4, 25),
                Column("c_phone", 16, rows(150_000)),
                Column("c_acctbal", 8, rows(140_000)),
                Column("c_mktsegment", 12, 5),
                Column("c_comment", 72, rows(150_000)),
            ],
            row_count=rows(150_000),
        )
    )
    catalog.add_table(
        Table(
            "part",
            [
                Column("p_partkey", 4, rows(200_000)),
                Column("p_name", 36, rows(200_000)),
                Column("p_mfgr", 16, 5),
                Column("p_brand", 12, 25),
                Column("p_type", 24, 150),
                Column("p_size", 4, 50),
                Column("p_container", 12, 40),
                Column("p_retailprice", 8, rows(100_000)),
                Column("p_comment", 20, rows(130_000)),
            ],
            row_count=rows(200_000),
        )
    )
    catalog.add_table(
        Table(
            "partsupp",
            [
                Column("ps_partkey", 4, rows(200_000)),
                Column("ps_suppkey", 4, rows(10_000)),
                Column("ps_availqty", 4, 10_000),
                Column("ps_supplycost", 8, rows(100_000)),
                Column("ps_comment", 120, rows(700_000)),
            ],
            row_count=rows(800_000),
        )
    )
    catalog.add_table(
        Table(
            "orders",
            [
                Column("o_orderkey", 4, rows(1_500_000)),
                Column("o_custkey", 4, rows(100_000)),
                Column("o_orderstatus", 1, 3),
                Column("o_totalprice", 8, rows(1_400_000)),
                Column("o_orderdate", 4, 2_400),
                Column("o_orderpriority", 12, 5),
                Column("o_clerk", 16, rows(1_000)),
                Column("o_shippriority", 4, 1),
                Column("o_comment", 48, rows(1_400_000)),
            ],
            row_count=rows(1_500_000),
        )
    )
    catalog.add_table(
        Table(
            "lineitem",
            [
                Column("l_orderkey", 4, rows(1_500_000)),
                Column("l_partkey", 4, rows(200_000)),
                Column("l_suppkey", 4, rows(10_000)),
                Column("l_linenumber", 4, 7),
                Column("l_quantity", 8, 50),
                Column("l_extendedprice", 8, rows(900_000)),
                Column("l_discount", 8, 11),
                Column("l_tax", 8, 9),
                Column("l_returnflag", 1, 3),
                Column("l_linestatus", 1, 2),
                Column("l_shipdate", 4, 2_500),
                Column("l_commitdate", 4, 2_450),
                Column("l_receiptdate", 4, 2_550),
                Column("l_shipinstruct", 12, 4),
                Column("l_shipmode", 12, 7),
                Column("l_comment", 27, rows(4_500_000)),
            ],
            row_count=rows(6_000_000),
        )
    )
    return catalog


def _eq(table: str, column: str, selectivity: float = None) -> Predicate:
    return Predicate(table, column, PredicateOp.EQ, selectivity)


def _rng(table: str, column: str, selectivity: float) -> Predicate:
    return Predicate(table, column, PredicateOp.RANGE, selectivity)


def _in(table: str, column: str, values: int) -> Predicate:
    return Predicate(table, column, PredicateOp.IN, values=values)


def tpch_workload() -> Workload:
    """The 22 TPC-H queries as structural query definitions."""
    queries: List[Query] = []

    # Q1: pricing summary report — one-table scan with date cutoff.
    queries.append(
        Query(
            "tpch_q1",
            tables=["lineitem"],
            predicates=[_rng("lineitem", "l_shipdate", 0.95)],
            group_by=[("lineitem", "l_returnflag"), ("lineitem", "l_linestatus")],
            select=[
                ("lineitem", "l_quantity"),
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
                ("lineitem", "l_tax"),
            ],
        )
    )
    # Q2: minimum cost supplier.
    queries.append(
        Query(
            "tpch_q2",
            tables=["part", "partsupp", "supplier", "nation", "region"],
            predicates=[
                _eq("part", "p_size"),
                _rng("part", "p_type", 0.02),
                _eq("region", "r_name"),
            ],
            joins=[
                JoinEdge("part", "p_partkey", "partsupp", "ps_partkey"),
                JoinEdge("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
                JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
                JoinEdge("nation", "n_regionkey", "region", "r_regionkey"),
            ],
            select=[
                ("supplier", "s_acctbal"),
                ("supplier", "s_name"),
                ("nation", "n_name"),
                ("partsupp", "ps_supplycost"),
            ],
        )
    )
    # Q3: shipping priority.
    queries.append(
        Query(
            "tpch_q3",
            tables=["customer", "orders", "lineitem"],
            predicates=[
                _eq("customer", "c_mktsegment"),
                _rng("orders", "o_orderdate", 0.48),
                _rng("lineitem", "l_shipdate", 0.53),
            ],
            joins=[
                JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
                JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
            ],
            group_by=[("lineitem", "l_orderkey")],
            select=[
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
                ("orders", "o_orderdate"),
                ("orders", "o_shippriority"),
            ],
        )
    )
    # Q4: order priority checking.
    queries.append(
        Query(
            "tpch_q4",
            tables=["orders", "lineitem"],
            predicates=[
                _rng("orders", "o_orderdate", 0.038),
                _rng("lineitem", "l_commitdate", 0.5),
            ],
            joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
            group_by=[("orders", "o_orderpriority")],
        )
    )
    # Q5: local supplier volume.
    queries.append(
        Query(
            "tpch_q5",
            tables=["customer", "orders", "lineitem", "supplier", "nation", "region"],
            predicates=[
                _eq("region", "r_name"),
                _rng("orders", "o_orderdate", 0.15),
            ],
            joins=[
                JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
                JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
                JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
                JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
                JoinEdge("nation", "n_regionkey", "region", "r_regionkey"),
            ],
            group_by=[("nation", "n_name")],
            select=[
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
            ],
        )
    )
    # Q6: forecasting revenue change — the classic sargable range scan.
    queries.append(
        Query(
            "tpch_q6",
            tables=["lineitem"],
            predicates=[
                _rng("lineitem", "l_shipdate", 0.15),
                _rng("lineitem", "l_discount", 0.27),
                _rng("lineitem", "l_quantity", 0.48),
            ],
            select=[
                ("lineitem", "l_extendedprice"),
            ],
        )
    )
    # Q7: volume shipping.
    queries.append(
        Query(
            "tpch_q7",
            tables=["supplier", "lineitem", "orders", "customer", "nation"],
            predicates=[
                _in("nation", "n_name", 2),
                _rng("lineitem", "l_shipdate", 0.3),
            ],
            joins=[
                JoinEdge("supplier", "s_suppkey", "lineitem", "l_suppkey"),
                JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
                JoinEdge("orders", "o_custkey", "customer", "c_custkey"),
                JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
            ],
            group_by=[("nation", "n_name"), ("lineitem", "l_shipdate")],
            select=[
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
            ],
        )
    )
    # Q8: national market share.
    queries.append(
        Query(
            "tpch_q8",
            tables=["part", "lineitem", "orders", "customer", "nation", "region"],
            predicates=[
                _eq("part", "p_type"),
                _eq("region", "r_name"),
                _rng("orders", "o_orderdate", 0.3),
            ],
            joins=[
                JoinEdge("part", "p_partkey", "lineitem", "l_partkey"),
                JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
                JoinEdge("orders", "o_custkey", "customer", "c_custkey"),
                JoinEdge("customer", "c_nationkey", "nation", "n_nationkey"),
                JoinEdge("nation", "n_regionkey", "region", "r_regionkey"),
            ],
            group_by=[("orders", "o_orderdate")],
            select=[
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
            ],
        )
    )
    # Q9: product type profit measure.
    queries.append(
        Query(
            "tpch_q9",
            tables=["part", "lineitem", "partsupp", "orders", "supplier", "nation"],
            predicates=[_rng("part", "p_name", 0.055)],
            joins=[
                JoinEdge("part", "p_partkey", "lineitem", "l_partkey"),
                JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
                JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
                JoinEdge("part", "p_partkey", "partsupp", "ps_partkey"),
                JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
            ],
            group_by=[("nation", "n_name"), ("orders", "o_orderdate")],
            select=[
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
                ("partsupp", "ps_supplycost"),
                ("lineitem", "l_quantity"),
            ],
        )
    )
    # Q10: returned item reporting.
    queries.append(
        Query(
            "tpch_q10",
            tables=["customer", "orders", "lineitem", "nation"],
            predicates=[
                _rng("orders", "o_orderdate", 0.038),
                _eq("lineitem", "l_returnflag"),
            ],
            joins=[
                JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
                JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
                JoinEdge("customer", "c_nationkey", "nation", "n_nationkey"),
            ],
            group_by=[("customer", "c_custkey")],
            select=[
                ("customer", "c_name"),
                ("customer", "c_acctbal"),
                ("nation", "n_name"),
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
            ],
        )
    )
    # Q11: important stock identification.
    queries.append(
        Query(
            "tpch_q11",
            tables=["partsupp", "supplier", "nation"],
            predicates=[_eq("nation", "n_name")],
            joins=[
                JoinEdge("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
                JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
            ],
            group_by=[("partsupp", "ps_partkey")],
            select=[
                ("partsupp", "ps_supplycost"),
                ("partsupp", "ps_availqty"),
            ],
        )
    )
    # Q12: shipping modes and order priority.
    queries.append(
        Query(
            "tpch_q12",
            tables=["orders", "lineitem"],
            predicates=[
                _in("lineitem", "l_shipmode", 2),
                _rng("lineitem", "l_receiptdate", 0.15),
            ],
            joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
            group_by=[("lineitem", "l_shipmode")],
            select=[("orders", "o_orderpriority")],
        )
    )
    # Q13: customer distribution (customer left join orders).
    queries.append(
        Query(
            "tpch_q13",
            tables=["customer", "orders"],
            predicates=[_rng("orders", "o_comment", 0.98)],
            joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey")],
            group_by=[("customer", "c_custkey")],
        )
    )
    # Q14: promotion effect.
    queries.append(
        Query(
            "tpch_q14",
            tables=["lineitem", "part"],
            predicates=[_rng("lineitem", "l_shipdate", 0.013)],
            joins=[JoinEdge("lineitem", "l_partkey", "part", "p_partkey")],
            select=[
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
                ("part", "p_type"),
            ],
        )
    )
    # Q15: top supplier (revenue view).
    queries.append(
        Query(
            "tpch_q15",
            tables=["lineitem", "supplier"],
            predicates=[_rng("lineitem", "l_shipdate", 0.04)],
            joins=[JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey")],
            group_by=[("lineitem", "l_suppkey")],
            select=[
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
                ("supplier", "s_name"),
            ],
        )
    )
    # Q16: parts/supplier relationship.
    queries.append(
        Query(
            "tpch_q16",
            tables=["partsupp", "part"],
            predicates=[
                _eq("part", "p_brand"),
                _rng("part", "p_type", 0.97),
                _in("part", "p_size", 8),
            ],
            joins=[JoinEdge("partsupp", "ps_partkey", "part", "p_partkey")],
            group_by=[
                ("part", "p_brand"),
                ("part", "p_type"),
                ("part", "p_size"),
            ],
            select=[("partsupp", "ps_suppkey")],
        )
    )
    # Q17: small-quantity-order revenue.
    queries.append(
        Query(
            "tpch_q17",
            tables=["lineitem", "part"],
            predicates=[
                _eq("part", "p_brand"),
                _eq("part", "p_container"),
                _rng("lineitem", "l_quantity", 0.28),
            ],
            joins=[JoinEdge("lineitem", "l_partkey", "part", "p_partkey")],
            select=[("lineitem", "l_extendedprice")],
        )
    )
    # Q18: large volume customer.
    queries.append(
        Query(
            "tpch_q18",
            tables=["customer", "orders", "lineitem"],
            predicates=[_rng("lineitem", "l_quantity", 0.02)],
            joins=[
                JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
                JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
            ],
            group_by=[("customer", "c_name"), ("orders", "o_orderkey")],
            select=[
                ("orders", "o_orderdate"),
                ("orders", "o_totalprice"),
                ("lineitem", "l_quantity"),
            ],
        )
    )
    # Q19: discounted revenue (brand/container/quantity disjunction).
    queries.append(
        Query(
            "tpch_q19",
            tables=["lineitem", "part"],
            predicates=[
                _in("part", "p_brand", 3),
                _in("part", "p_container", 12),
                _rng("lineitem", "l_quantity", 0.4),
                _in("lineitem", "l_shipmode", 2),
            ],
            joins=[JoinEdge("lineitem", "l_partkey", "part", "p_partkey")],
            select=[
                ("lineitem", "l_extendedprice"),
                ("lineitem", "l_discount"),
            ],
        )
    )
    # Q20: potential part promotion.
    queries.append(
        Query(
            "tpch_q20",
            tables=["supplier", "nation", "partsupp", "part", "lineitem"],
            predicates=[
                _eq("nation", "n_name"),
                _rng("part", "p_name", 0.055),
                _rng("lineitem", "l_shipdate", 0.15),
            ],
            joins=[
                JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
                JoinEdge("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
                JoinEdge("partsupp", "ps_partkey", "part", "p_partkey"),
                JoinEdge("lineitem", "l_partkey", "part", "p_partkey"),
            ],
            select=[
                ("supplier", "s_name"),
                ("supplier", "s_address"),
                ("partsupp", "ps_availqty"),
                ("lineitem", "l_quantity"),
            ],
        )
    )
    # Q21: suppliers who kept orders waiting.
    queries.append(
        Query(
            "tpch_q21",
            tables=["supplier", "lineitem", "orders", "nation"],
            predicates=[
                _eq("nation", "n_name"),
                _eq("orders", "o_orderstatus"),
                _rng("lineitem", "l_receiptdate", 0.5),
            ],
            joins=[
                JoinEdge("supplier", "s_suppkey", "lineitem", "l_suppkey"),
                JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
                JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
            ],
            group_by=[("supplier", "s_name")],
        )
    )
    # Q22: global sales opportunity.
    queries.append(
        Query(
            "tpch_q22",
            tables=["customer", "orders"],
            predicates=[
                _in("customer", "c_phone", 7),
                _rng("customer", "c_acctbal", 0.5),
            ],
            joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey")],
            group_by=[("customer", "c_phone")],
            select=[("customer", "c_acctbal")],
        )
    )
    return Workload("tpch", queries)
