"""Table 4: experimental dataset statistics.

Paper values::

    Dataset  |Q|  |I|  |P|   Largest plan  #Inter.(build)  #Inter.(query)
    TPC-H     22   31   221      5 index         31              80
    TPC-DS   102  148  3386     13 index        243            1363

The reproduction extracts both instances through its own advisor and
what-if pipeline, so absolute counts differ; the bench asserts the
qualitative shape (TPC-DS being roughly an order of magnitude denser
than TPC-H in plans and query interactions, multi-index plans present
in both).
"""

from __future__ import annotations

from repro.core.instance import ProblemInstance
from repro.experiments.harness import ResultTable
from repro.experiments.instances import tpcds_instance, tpch_instance

__all__ = ["run", "PAPER_VALUES"]

PAPER_VALUES = {
    "tpch": {
        "queries": 22,
        "indexes": 31,
        "plans": 221,
        "largest_plan": 5,
        "build_interactions": 31,
        "query_interactions": 80,
    },
    "tpcds": {
        "queries": 102,
        "indexes": 148,
        "plans": 3386,
        "largest_plan": 13,
        "build_interactions": 243,
        "query_interactions": 1363,
    },
}


def run() -> ResultTable:
    """Regenerate Table 4 (ours vs. paper)."""
    table = ResultTable(
        title="Table 4: Experimental Datasets (measured vs. paper)",
        headers=[
            "Dataset",
            "|Q|",
            "|I|",
            "|P|",
            "Largest Plan",
            "#Inter.(Build)",
            "#Inter.(Query)",
        ],
    )
    for label, instance in (
        ("TPC-H", tpch_instance()),
        ("TPC-DS", tpcds_instance()),
    ):
        counts = instance.interaction_counts()
        table.add_row(
            label,
            counts["queries"],
            counts["indexes"],
            counts["plans"],
            f"{counts['largest_plan']} Index",
            counts["build_interactions"],
            counts["query_interactions"],
        )
    for label, key in (("TPC-H", "tpch"), ("TPC-DS", "tpcds")):
        paper = PAPER_VALUES[key]
        table.add_row(
            f"{label} (paper)",
            paper["queries"],
            paper["indexes"],
            paper["plans"],
            f"{paper['largest_plan']} Index",
            paper["build_interactions"],
            paper["query_interactions"],
        )
    table.add_note(
        "measured rows come from this repo's advisor + what-if extraction; "
        "the reproducible claim is the TPC-DS/TPC-H density gap, not "
        "absolute counts"
    )
    return table

if __name__ == "__main__":
    print(run().render())
