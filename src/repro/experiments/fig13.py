"""Figure 13: where VNS improvements come from (TPC-DS).

The paper decomposes the VNS objective gains into the two user-facing
quantities: total deployment time (drops sharply in the first minutes as
build interactions are exploited) and average query runtime during
deployment (improves steadily afterwards as high-impact indexes move
earlier).  This experiment re-runs VNS with an incumbent hook and
evaluates the exact deployment schedule of every improvement.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.fixpoint import analyze
from repro.core.objective import ObjectiveEvaluator
from repro.experiments.harness import ResultTable, quick_mode
from repro.experiments.instances import (
    reduced_tpch,
    tpcds_instance,
    tpch_instance,
)
from repro.experiments.parallel import Cell, derive_seed, run_cells
from repro.solvers.base import Budget
from repro.solvers.greedy import greedy_order
from repro.solvers.localsearch import VNSSolver

__all__ = ["run", "vns_schedule_series"]


def _resolve_instance(name: str):
    """Map an instance name to a ProblemInstance.

    Strings (not instance objects) travel to worker processes, so
    cells stay cheap to ship and reproducible from their spec alone.
    """
    if name == "tpcds":
        return tpcds_instance()
    if name == "tpch":
        return tpch_instance()
    if name.startswith("reduced-"):
        return reduced_tpch(int(name.split("-", 1)[1]))
    raise ValueError(f"unknown fig13 instance {name!r}")


def vns_schedule_series(
    time_limit: float, seed: int = 0, instance_name: str = "tpcds"
) -> List[Tuple[float, float, float]]:
    """Run VNS; return ``(t, deploy_time, avg_runtime)`` points.

    Each point corresponds to an incumbent improvement; the incumbent
    order's deployment schedule is evaluated exactly (no interpolation).
    """
    instance = _resolve_instance(instance_name)
    report = analyze(instance, time_budget=min(10.0, time_limit))
    constraints = report.constraints
    initial = greedy_order(instance, constraints)
    evaluator = ObjectiveEvaluator(instance)
    points: List[Tuple[float, float, float]] = []

    def record(elapsed: float, order: List[int]) -> None:
        schedule = evaluator.schedule(order)
        points.append(
            (
                elapsed,
                schedule.total_deploy_time,
                schedule.average_runtime_during_deployment,
            )
        )

    record(0.0, initial)
    solver = VNSSolver(
        seed=seed, initial_order=initial, on_improvement=record
    )
    solver.solve(instance, constraints, Budget(time_limit=time_limit))
    return points


def run(
    time_limit: Optional[float] = None,
    workers: int = 1,
    seeds: Optional[Sequence[int]] = None,
    instance_name: str = "tpcds",
) -> ResultTable:
    """Regenerate Figure 13 as a two-series table.

    With several ``seeds`` the VNS runs race (one grid cell per seed,
    sharded across ``workers`` processes); the table reports the seed
    whose final deployment time is lowest and footnotes the others.
    Per-cell seeds derive deterministically from the cell index, so the
    race is reproducible for any worker count.
    """
    quick = quick_mode()
    if time_limit is None:
        time_limit = 6.0 if quick else 120.0
    if seeds is None:
        seeds = (0,)
    cells = [
        Cell(
            index=position,
            label=f"fig13[seed={seed}]",
            fn=vns_schedule_series,
            args=(time_limit,),
            kwargs={
                "seed": seed if seed is not None else derive_seed(0, position),
                "instance_name": instance_name,
            },
        )
        for position, seed in enumerate(seeds)
    ]
    # Hang guard only: greedy construction and the first VNS descent on
    # the full TPC-DS instance are not bounded by time_limit, so the
    # cap must be generous relative to the nominal budget.
    timeout = (
        None
        if workers <= 1
        else len(cells) * max(600.0, 30.0 * time_limit) + 60.0
    )
    outcomes = run_cells(cells, workers=workers, timeout=timeout)
    racers: List[Tuple[int, List[Tuple[float, float, float]]]] = []
    errors: List[str] = []
    for seed, outcome in zip(seeds, outcomes):
        if outcome.ok and outcome.value:
            racers.append((seed, outcome.value))
        else:
            errors.append(
                f"{outcome.label}: {outcome.error or 'empty series'}"
            )
    if not racers:
        raise RuntimeError(
            "fig13: every seed cell failed: " + "; ".join(errors)
        )
    # The winner is the seed with the lowest final deployment time —
    # ties resolve to the earliest seed, keeping single-seed runs
    # byte-identical to the historical sequential output.
    winner_seed, points = min(
        racers, key=lambda racer: (racer[1][-1][1], racer[0])
    )
    display = {"tpcds": "TPC-DS", "tpch": "TPC-H"}.get(
        instance_name, instance_name
    )
    table = ResultTable(
        title=(
            f"Figure 13: VNS ({display}) — deployment time and average query "
            f"runtime during deployment (budget {time_limit:.0f}s)"
        ),
        headers=["Elapsed [s]", "Deployment time", "Avg query runtime"],
    )
    for elapsed, deploy, average in points:
        table.add_row(elapsed, deploy, average)
    if len(points) >= 2:
        first_deploy = points[0][1]
        last_deploy = points[-1][1]
        table.add_note(
            f"deployment time: {first_deploy:.1f} -> {last_deploy:.1f} "
            f"({100 * (first_deploy - last_deploy) / first_deploy:.1f}% "
            f"reduction)"
        )
    table.add_note(
        "paper shape: deployment time falls early (build interactions), "
        "average runtime keeps improving afterwards (speed-ups pulled "
        "to early steps)"
    )
    if len(racers) > 1:
        finals = ", ".join(
            f"seed {seed}: {series[-1][1]:.1f}" for seed, series in racers
        )
        table.add_note(
            f"seed race (winner seed {winner_seed}): final deployment "
            f"time by seed — {finals}"
        )
    for error in errors:
        table.add_note(f"sharded cell failed: {error}")
    return table

if __name__ == "__main__":
    print(run().render())
