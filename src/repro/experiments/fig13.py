"""Figure 13: where VNS improvements come from (TPC-DS).

The paper decomposes the VNS objective gains into the two user-facing
quantities: total deployment time (drops sharply in the first minutes as
build interactions are exploited) and average query runtime during
deployment (improves steadily afterwards as high-impact indexes move
earlier).  This experiment re-runs VNS with an incumbent hook and
evaluates the exact deployment schedule of every improvement.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.fixpoint import analyze
from repro.core.objective import ObjectiveEvaluator
from repro.experiments.harness import ResultTable, quick_mode
from repro.experiments.instances import tpcds_instance
from repro.solvers.base import Budget
from repro.solvers.greedy import greedy_order
from repro.solvers.localsearch import VNSSolver

__all__ = ["run", "vns_schedule_series"]


def vns_schedule_series(
    time_limit: float, seed: int = 0
) -> List[Tuple[float, float, float]]:
    """Run VNS on TPC-DS; return ``(t, deploy_time, avg_runtime)`` points.

    Each point corresponds to an incumbent improvement; the incumbent
    order's deployment schedule is evaluated exactly (no interpolation).
    """
    instance = tpcds_instance()
    report = analyze(instance, time_budget=min(10.0, time_limit))
    constraints = report.constraints
    initial = greedy_order(instance, constraints)
    evaluator = ObjectiveEvaluator(instance)
    points: List[Tuple[float, float, float]] = []

    def record(elapsed: float, order: List[int]) -> None:
        schedule = evaluator.schedule(order)
        points.append(
            (
                elapsed,
                schedule.total_deploy_time,
                schedule.average_runtime_during_deployment,
            )
        )

    record(0.0, initial)
    solver = VNSSolver(
        seed=seed, initial_order=initial, on_improvement=record
    )
    solver.solve(instance, constraints, Budget(time_limit=time_limit))
    return points


def run(time_limit: Optional[float] = None) -> ResultTable:
    """Regenerate Figure 13 as a two-series table."""
    quick = quick_mode()
    if time_limit is None:
        time_limit = 6.0 if quick else 120.0
    points = vns_schedule_series(time_limit)
    table = ResultTable(
        title=(
            "Figure 13: VNS (TPC-DS) — deployment time and average query "
            f"runtime during deployment (budget {time_limit:.0f}s)"
        ),
        headers=["Elapsed [s]", "Deployment time", "Avg query runtime"],
    )
    for elapsed, deploy, average in points:
        table.add_row(elapsed, deploy, average)
    if len(points) >= 2:
        first_deploy = points[0][1]
        last_deploy = points[-1][1]
        table.add_note(
            f"deployment time: {first_deploy:.1f} -> {last_deploy:.1f} "
            f"({100 * (first_deploy - last_deploy) / first_deploy:.1f}% "
            f"reduction)"
        )
    table.add_note(
        "paper shape: deployment time falls early (build interactions), "
        "average runtime keeps improving afterwards (speed-ups pulled "
        "to early steps)"
    )
    return table

if __name__ == "__main__":
    print(run().render())
