"""Table 5: exact-search performance (reduced TPC-H).

Paper layout: rows are methods (MIP, CP, MIP+, CP+, VNS), columns are
instance sizes |I| ∈ {6, 11, 13, 22, 31} at low density and {16, 21} at
mid density; cells are minutes, "DF" for did-not-finish.

Scaled reproduction: Python solvers get a per-cell wall-clock budget
(default 10 s, 60 s with ``REPRO_FULL=1``) and smaller size grids, but
the comparison structure is identical: the bare formulations die almost
immediately, the Section-5 constraints rescue CP (and help MIP), and
VNS finds the optimum-quality solution in every cell without a proof.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.fixpoint import analyze
from repro.core.instance import ProblemInstance
from repro.core.solution import SolveResult, SolveStatus
from repro.experiments.harness import (
    DF,
    ResultTable,
    engine_stats_note,
    make_solver,
    quick_mode,
)
from repro.experiments.instances import reduced_tpch
from repro.solvers.base import Budget

__all__ = ["run", "solve_cell", "default_grid"]


def default_grid(quick: bool) -> List[Tuple[int, str]]:
    """(size, density) columns; trimmed in quick mode."""
    if quick:
        return [(6, "low"), (8, "low"), (10, "low"), (8, "mid")]
    return [(6, "low"), (9, "low"), (11, "low"), (13, "low"), (10, "mid"), (12, "mid")]


def solve_cell(
    method: str,
    instance: ProblemInstance,
    time_limit: float,
    stats_out: Optional[Dict[str, int]] = None,
) -> SolveResult:
    """Run one method on one reduced instance.

    Solvers are resolved through the registry; ``method+`` means "with
    the Section-5 pre-analysis constraints".  When ``stats_out`` is
    given, the solver's engine counters are accumulated into it.
    """
    budget = Budget(time_limit=time_limit)
    constraints = None
    base = method.rstrip("+")
    if method.endswith("+") or method == "vns":
        report = analyze(instance, time_budget=min(10.0, time_limit))
        constraints = report.constraints
    if base == "mip":
        solver = make_solver("mip", steps_per_index=3)
    elif base == "cp":
        solver = make_solver("cp", strategy="sequential")
    elif base == "vns":
        solver = make_solver("vns")
        budget = Budget(time_limit=min(time_limit, 3.0))
    else:
        raise ValueError(f"unknown method {method!r}")
    result = solver.solve(instance, constraints, budget)
    run_stats = getattr(solver, "last_engine_stats", None)
    if stats_out is not None and run_stats:
        for key, value in run_stats.items():
            stats_out[key] = stats_out.get(key, 0) + value
    return result


def run(
    time_limit: Optional[float] = None,
    grid: Optional[Sequence[Tuple[int, str]]] = None,
) -> ResultTable:
    """Regenerate Table 5 with scaled budgets."""
    quick = quick_mode()
    if time_limit is None:
        time_limit = 10.0 if quick else 60.0
    columns = list(grid) if grid is not None else default_grid(quick)
    table = ResultTable(
        title=(
            "Table 5: Exact Search (Reduced TPC-H), seconds "
            f"(per-cell budget {time_limit:.0f}s; paper used minutes)"
        ),
        headers=["Method"]
        + [f"|I|={size} {density}" for size, density in columns],
    )
    optima: Dict[Tuple[int, str], float] = {}
    results: Dict[str, List[str]] = {}
    method_stats: Dict[str, Dict[str, int]] = {}
    for method in ("mip", "cp", "mip+", "cp+", "vns"):
        cells: List[str] = []
        stats: Dict[str, int] = {}
        method_stats[method] = stats
        for size, density in columns:
            instance = reduced_tpch(size, density)
            result = solve_cell(method, instance, time_limit, stats_out=stats)
            cell = _format_result(result)
            if result.status is SolveStatus.OPTIMAL and result.objective is not None:
                key = (size, density)
                optima.setdefault(key, result.objective)
            cells.append(cell)
        results[method] = cells
        table.add_row(method.upper(), *cells)
    # VNS quality note: did it match the proven optimum where one exists?
    table.add_note(
        "DF = no optimality proof (or no solution) within the budget; "
        "VNS cells report time to its best solution (no proof), "
        "mirroring the paper's footnote"
    )
    table.add_note(
        "paper shape: bare MIP/CP explode factorially; the Section-5 "
        "constraints (+) rescue them by orders of magnitude; VNS is "
        "instant at every size"
    )
    for method, stats in method_stats.items():
        note = engine_stats_note(method, stats)
        if note is not None:
            table.add_note(note)
    return table


def _format_result(result: SolveResult) -> str:
    if result.status is SolveStatus.OPTIMAL:
        return f"{result.runtime:.2f}"
    if result.solution is not None:
        return f"{result.runtime:.2f}*"
    return DF

if __name__ == "__main__":
    print(run().render())
