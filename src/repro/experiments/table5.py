"""Table 5: exact-search performance (reduced TPC-H).

Paper layout: rows are methods (MIP, CP, MIP+, CP+, VNS), columns are
instance sizes |I| ∈ {6, 11, 13, 22, 31} at low density and {16, 21} at
mid density; cells are minutes, "DF" for did-not-finish.

Scaled reproduction: Python solvers get a per-cell wall-clock budget
(default 10 s, 60 s with ``REPRO_FULL=1``) and smaller size grids, but
the comparison structure is identical: the bare formulations die almost
immediately, the Section-5 constraints rescue CP (and help MIP), and
VNS finds the optimum-quality solution in every cell without a proof.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.fixpoint import analyze
from repro.core.instance import ProblemInstance
from repro.core.solution import SolveResult, SolveStatus
from repro.experiments.harness import (
    DF,
    ResultTable,
    engine_stats_note,
    make_solver,
    quick_mode,
)
from repro.experiments.instances import reduced_tpch
from repro.experiments.parallel import Cell, run_cells
from repro.solvers.base import Budget

__all__ = ["run", "solve_cell", "default_grid", "METHODS"]

#: Row order of the paper's Table 5.
METHODS = ("mip", "cp", "mip+", "cp+", "vns")


def default_grid(quick: bool) -> List[Tuple[int, str]]:
    """(size, density) columns; trimmed in quick mode."""
    if quick:
        return [(6, "low"), (8, "low"), (10, "low"), (8, "mid")]
    return [(6, "low"), (9, "low"), (11, "low"), (13, "low"), (10, "mid"), (12, "mid")]


def solve_cell(
    method: str,
    instance: ProblemInstance,
    time_limit: float,
    stats_out: Optional[Dict[str, int]] = None,
) -> SolveResult:
    """Run one method on one reduced instance.

    Solvers are resolved through the registry; ``method+`` means "with
    the Section-5 pre-analysis constraints".  When ``stats_out`` is
    given, the solver's engine counters are accumulated into it.
    """
    budget = Budget(time_limit=time_limit)
    constraints = None
    base = method.rstrip("+")
    if method.endswith("+") or method == "vns":
        report = analyze(instance, time_budget=min(10.0, time_limit))
        constraints = report.constraints
    if base == "mip":
        solver = make_solver("mip", steps_per_index=3)
    elif base == "cp":
        solver = make_solver("cp", strategy="sequential")
    elif base == "vns":
        solver = make_solver("vns")
        budget = Budget(time_limit=min(time_limit, 3.0))
    else:
        raise ValueError(f"unknown method {method!r}")
    result = solver.solve(instance, constraints, budget)
    run_stats = getattr(solver, "last_engine_stats", None)
    if stats_out is not None and run_stats:
        for key, value in run_stats.items():
            stats_out[key] = stats_out.get(key, 0) + value
    return result


def _cell_payload(
    method: str, size: int, density: str, time_limit: float
) -> Dict[str, Any]:
    """Compute one grid cell (runs in a shard worker or inline)."""
    instance = reduced_tpch(size, density)
    stats: Dict[str, int] = {}
    result = solve_cell(method, instance, time_limit, stats_out=stats)
    return {"cell": _format_result(result), "stats": stats}


def build_cells(
    columns: Sequence[Tuple[int, str]], time_limit: float
) -> List[Cell]:
    """Enumerate the grid in the sequential (method-major) order."""
    cells: List[Cell] = []
    for method in METHODS:
        for size, density in columns:
            cells.append(
                Cell(
                    index=len(cells),
                    label=f"table5[{method}|{size} {density}]",
                    fn=_cell_payload,
                    args=(method, size, density, time_limit),
                )
            )
    return cells


def run(
    time_limit: Optional[float] = None,
    grid: Optional[Sequence[Tuple[int, str]]] = None,
    workers: int = 1,
) -> ResultTable:
    """Regenerate Table 5 with scaled budgets.

    ``workers > 1`` shards the (method × size) grid across worker
    processes; the merged table keeps the exact sequential row order,
    and a cell whose worker crashed or timed out renders as ``DF`` with
    an explanatory note.
    """
    quick = quick_mode()
    if time_limit is None:
        time_limit = 10.0 if quick else 60.0
    columns = list(grid) if grid is not None else default_grid(quick)
    table = ResultTable(
        title=(
            "Table 5: Exact Search (Reduced TPC-H), seconds "
            f"(per-cell budget {time_limit:.0f}s; paper used minutes)"
        ),
        headers=["Method"]
        + [f"|I|={size} {density}" for size, density in columns],
    )
    cells = build_cells(columns, time_limit)
    outcomes = run_cells(
        cells, workers=workers, timeout=_grid_timeout(cells, workers, time_limit)
    )
    errors: List[str] = []
    stats_notes: List[str] = []
    position = 0
    for method in METHODS:
        row: List[str] = []
        stats: Dict[str, int] = {}
        for _ in columns:
            outcome = outcomes[position]
            position += 1
            if outcome.ok:
                row.append(outcome.value["cell"])
                for key, value in outcome.value["stats"].items():
                    stats[key] = stats.get(key, 0) + value
            else:
                row.append(DF)
                errors.append(f"{outcome.label}: {outcome.error}")
        table.add_row(method.upper(), *row)
        note = engine_stats_note(method, stats)
        if note is not None:
            stats_notes.append(note)
    table.add_note(
        "DF = no optimality proof (or no solution) within the budget; "
        "VNS cells report time to its best solution (no proof), "
        "mirroring the paper's footnote"
    )
    table.add_note(
        "paper shape: bare MIP/CP explode factorially; the Section-5 "
        "constraints (+) rescue them by orders of magnitude; VNS is "
        "instant at every size"
    )
    for note in stats_notes:
        table.add_note(note)
    for error in errors:
        table.add_note(f"sharded cell failed: {error}")
    return table


def _grid_timeout(
    cells: Sequence[Cell], workers: int, time_limit: float
) -> Optional[float]:
    """Generous wall-clock cap so a hung worker cannot hang the run."""
    if workers <= 1:
        return None
    per_shard = -(-len(cells) // max(1, workers))  # ceil division
    # Budgeted solve + pre-analysis + instance build per cell, plus
    # fork/queue overhead; generous because exceeding it turns cells
    # into DF, which must never happen on a healthy run.
    return per_shard * (time_limit + 30.0) + 60.0


def _format_result(result: SolveResult) -> str:
    if result.status is SolveStatus.OPTIMAL:
        return f"{result.runtime:.2f}"
    if result.solution is not None:
        return f"{result.runtime:.2f}*"
    return DF

if __name__ == "__main__":
    print(run().render())
