"""Shared experiment infrastructure: result tables and budget scaling.

The paper's solver budgets are minutes to hours on 2011 hardware with
C++ solvers (COMET, CPlex); this reproduction runs pure Python, so every
experiment accepts a ``time_scale`` that shrinks budgets while keeping
the *relative* budgets across methods identical.  Experiment outputs are
:class:`ResultTable` objects that render in the same row/column layout
as the paper's tables, which is what the benchmark harness prints.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "ResultTable",
    "format_cell",
    "quick_mode",
    "DF",
    "make_solver",
    "engine_stats_note",
]

#: Marker string matching the paper's "did not finish" cells.
DF = "DF"


def quick_mode() -> bool:
    """True unless ``REPRO_FULL=1`` requests full-budget experiments."""
    return os.environ.get("REPRO_FULL", "0") != "1"


def make_solver(name: str, **kwargs):
    """Resolve a solver by registry name (experiment-layer entry point).

    Every experiment runner constructs solvers through this single
    hook, so the name -> implementation mapping lives in one place
    (:mod:`repro.solvers.registry`).
    """
    from repro.solvers.registry import create

    return create(name, **kwargs)


def engine_stats_note(label: str, stats: Optional[Dict[str, int]]) -> Optional[str]:
    """Render one solver's :class:`EngineStats` dict as a table note.

    The fig11/fig12 benchmarks parse this format to assert the delta
    path replays strictly fewer steps than a checkpoint evaluator
    would; keep the ``replayed N steps vs M prefix-cache baseline``
    phrasing stable.
    """
    if not stats:
        return None
    parts = [f"engine[{label}]:"]
    if stats.get("batch_evals"):
        kernels = []
        if stats.get("batch_numba"):
            kernels.append(f"numba x{stats['batch_numba']}")
        if stats.get("batch_numpy"):
            kernels.append(f"numpy x{stats['batch_numpy']}")
        kernel_note = ", ".join(kernels) if kernels else "scalar"
        parts.append(
            f"{stats['batch_evals']} batch scans "
            f"({stats.get('batch_moves', 0)} moves, {kernel_note})"
        )
    if stats.get("delta_evals"):
        saved = stats["baseline_steps"] - stats["replayed_steps"]
        pct = (
            100.0 * saved / stats["baseline_steps"]
            if stats.get("baseline_steps")
            else 0.0
        )
        parts.append(
            f"{stats['delta_evals']} delta evals, "
            f"replayed {stats['replayed_steps']} steps vs "
            f"{stats['baseline_steps']} prefix-cache baseline "
            f"({pct:.0f}% saved)"
        )
    else:
        parts.append(f"{stats.get('full_evals', 0)} full evals")
    memo_hits = stats.get("memo_hits", 0)
    memo_misses = stats.get("memo_misses", 0)
    if memo_hits or memo_misses:
        parts.append(f"memo {memo_hits}/{memo_hits + memo_misses} hits")
    if stats.get("tt_prunes"):
        parts.append(f"{stats['tt_prunes']} transposition prunes")
    return " ".join(parts)


def format_cell(value: Any) -> str:
    """Render one table cell the way the paper does.

    Floats print with two decimals, sub-0.005 times as ``<0.01``;
    ``None`` renders as an empty cell.
    """
    if value is None:
        return ""
    if isinstance(value, float):
        if value != value:  # NaN
            return ""
        if 0 < value < 0.005:
            return "<0.01"
        return f"{value:.2f}"
    return str(value)


@dataclass
class ResultTable:
    """A paper-style results table.

    Attributes:
        title: Table caption, e.g. ``"Table 5: Exact Search"``.
        headers: Column headers.
        rows: Row cell values (mixed str/float/None).
        notes: Free-form footnotes (paper-vs-measured commentary).
    """

    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append one row."""
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a footnote."""
        self.notes.append(note)

    def render(self) -> str:
        """ASCII-render the table with aligned columns.

        Rows may carry more cells than there are headers (merged shard
        tables produce such rows); extra columns get an empty header
        and are sized from their cells alone.
        """
        formatted = [[format_cell(cell) for cell in row] for row in self.rows]
        n_columns = max(
            [len(self.headers)] + [len(row) for row in formatted]
        )
        widths = [0] * n_columns
        for position, header in enumerate(self.headers):
            widths[position] = len(header)
        for row in formatted:
            for position, cell in enumerate(row):
                widths[position] = max(widths[position], len(cell))
        lines = [self.title]
        headers = list(self.headers) + [""] * (n_columns - len(self.headers))
        header_line = " | ".join(
            header.ljust(widths[position])
            for position, header in enumerate(headers)
        )
        lines.append(header_line)
        lines.append("-+-".join("-" * width for width in widths))
        for row in formatted:
            lines.append(
                " | ".join(
                    cell.ljust(widths[position])
                    for position, cell in enumerate(row)
                )
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        """Machine-readable form (for EXPERIMENTS.md tooling)."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }
