"""Ablation (Section 4.4): do index interactions matter to the model?

The paper chose the rich formulation — competing, query, and build
interactions all modelled — arguing that "removing them would have a
significant effect on solution quality".  This ablation quantifies that:
solve the *interaction-free* projection of each instance (independent
per-index benefits, no build interactions — the assumption of online
index selection), then evaluate the resulting order under the TRUE
objective, and compare against solving the full model directly.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.fixpoint import analyze
from repro.core.instance import ProblemInstance
from repro.core.objective import ObjectiveEvaluator, normalized_objective
from repro.experiments.harness import ResultTable, quick_mode
from repro.experiments.instances import tpcds_instance, tpch_instance
from repro.solvers.base import Budget
from repro.solvers.greedy import greedy_order
from repro.solvers.localsearch import VNSSolver

__all__ = ["run", "ablate_instance"]


def ablate_instance(
    instance: ProblemInstance, time_limit: float, seed: int = 0
) -> tuple:
    """Returns (full-model objective, interaction-free objective).

    Both are true objectives of orders produced by the same VNS budget;
    only the model the search sees differs.
    """
    evaluator = ObjectiveEvaluator(instance)
    # Full model.
    report = analyze(instance, time_budget=10.0)
    full_result = VNSSolver(
        seed=seed, initial_order=greedy_order(instance, report.constraints)
    ).solve(instance, report.constraints, Budget(time_limit=time_limit))
    full_objective = full_result.solution.objective
    # Interaction-free projection: search over it, evaluate truthfully.
    projected = instance.without_interactions()
    projected_report = analyze(projected, time_budget=10.0)
    projected_result = VNSSolver(
        seed=seed,
        initial_order=greedy_order(projected, projected_report.constraints),
    ).solve(
        projected, projected_report.constraints, Budget(time_limit=time_limit)
    )
    naive_objective = evaluator.evaluate(projected_result.solution.order)
    return full_objective, naive_objective


def run(time_limit: Optional[float] = None) -> ResultTable:
    """Regenerate the interaction ablation."""
    quick = quick_mode()
    if time_limit is None:
        time_limit = 3.0 if quick else 30.0
    table = ResultTable(
        title="Ablation: solving without index interactions (Section 4.4)",
        headers=[
            "Dataset",
            "Full model",
            "No-interaction model",
            "Quality loss",
        ],
    )
    for label, instance in (
        ("TPC-H", tpch_instance()),
        ("TPC-DS", tpcds_instance()),
    ):
        full, naive = ablate_instance(instance, time_limit)
        loss = 100.0 * (naive - full) / full if full > 0 else 0.0
        table.add_row(
            label,
            normalized_objective(instance, full),
            normalized_objective(instance, naive),
            f"+{loss:.1f}%",
        )
    table.add_note(
        "both columns are TRUE objectives; the right column's order was "
        "found while blind to interactions (independence assumption of "
        "online index selection)"
    )
    return table

if __name__ == "__main__":
    print(run().render())
