"""Figure 9: tail-pattern analysis on the reduced TPC-H instance.

The paper's Figure 9 lists the feasible 3-index tail patterns of its
TPC-H instance, grouped by tail set and sorted by tail objective; the
champion of every group ends with the same index (i2), which pins i2 to
the last deployment position and lets the analysis recurse.

This experiment regenerates that table: every feasible tail pattern of
the configured length, its exact tail objective, the champion flag per
group, and whether one index closes every champion.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.constraints import ConstraintSet
from repro.analysis.fixpoint import analyze
from repro.analysis.tails import enumerate_tail_patterns
from repro.experiments.harness import ResultTable, quick_mode
from repro.experiments.instances import reduced_tpch

__all__ = ["run"]


def run(
    n_indexes: int = 10, tail_length: int = 3, max_rows: int = 24
) -> ResultTable:
    """Regenerate the Figure-9 style tail-pattern listing."""
    instance = reduced_tpch(n_indexes, "low")
    # Seed the tail analysis with the other properties' constraints,
    # exactly as the iterate-and-recurse loop does.
    report = analyze(instance, properties="ACMD", time_budget=10.0)
    constraints = report.constraints
    active = set(range(instance.n_indexes))
    patterns = enumerate_tail_patterns(
        instance, constraints, active, tail_length, max_patterns=50000
    )
    table = ResultTable(
        title=(
            f"Figure 9: Tail patterns (length {tail_length}) on "
            f"{instance.name}, grouped by tail set"
        ),
        headers=["Tail pattern", "Tail objective", "Champion"],
    )
    if not patterns:
        table.add_note("no feasible tail patterns at this length")
        return table
    champions: Dict[frozenset, float] = {}
    for pattern in patterns:
        key = pattern.tail_set
        if key not in champions or pattern.objective < champions[key]:
            champions[key] = pattern.objective
    shown = 0
    last_of_champions = set()
    for pattern in sorted(
        patterns, key=lambda p: (sorted(p.tail_set), p.objective)
    ):
        is_champion = abs(pattern.objective - champions[pattern.tail_set]) < 1e-9
        if is_champion:
            last_of_champions.add(pattern.order[-1])
        if shown < max_rows:
            arrow = " -> ".join(
                instance.indexes[i].name for i in pattern.order
            )
            table.add_row(
                arrow,
                pattern.objective,
                "champion" if is_champion else "",
            )
            shown += 1
    if len(last_of_champions) == 1:
        forced = next(iter(last_of_champions))
        table.add_note(
            f"every champion ends with {instance.indexes[forced].name!r}: "
            f"it is provably the last deployed index (Theorem 10)"
        )
    else:
        table.add_note(
            f"champions end with {len(last_of_champions)} distinct "
            f"indexes: no forced-last rule at this tail length"
        )
    table.add_note(f"{len(patterns)} feasible patterns, showing {shown}")
    return table

if __name__ == "__main__":
    print(run().render())
