"""Figure 11: local search on TPC-H (anytime quality curves).

Paper setting: 60 seconds, average of 5 runs; VNS and the Tabu variants
descend quickly from the shared greedy start while plain LNS improves
slowly (fixed neighborhood) and pure CP barely moves (overwhelmed by
the full neighborhood).  The reproduction runs the same five methods
from the same greedy initial solution and samples each anytime trace on
a common time grid (normalized objective, lower is better).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.fixpoint import analyze
from repro.core.instance import ProblemInstance
from repro.core.objective import normalized_objective
from repro.experiments.harness import (
    ResultTable,
    engine_stats_note,
    make_solver,
    quick_mode,
)
from repro.experiments.instances import tpch_instance
from repro.solvers.base import Budget
from repro.solvers.greedy import greedy_order
from repro.solvers.registry import get_spec

__all__ = ["run", "local_search_traces"]


def local_search_traces(
    instance: ProblemInstance,
    methods: Sequence[str],
    time_limit: float,
    seeds: Sequence[int] = (0,),
    stats_out: Optional[Dict[str, Dict[str, int]]] = None,
) -> Dict[str, List[List[tuple]]]:
    """Run each method from the shared greedy start; return raw traces.

    Methods are resolved through the solver registry; capability flags
    decide which keywords a method receives (warm start, seed).  When
    ``stats_out`` is given, each method's accumulated engine counters
    are stored under its name.
    """
    report = analyze(instance, time_budget=min(10.0, time_limit))
    constraints = report.constraints
    initial = greedy_order(instance, constraints)
    traces: Dict[str, List[List[tuple]]] = {}
    for method in methods:
        spec = get_spec(method)
        runs: List[List[tuple]] = []
        totals: Dict[str, int] = {}
        for seed in seeds:
            kwargs: Dict[str, object] = {}
            if spec.accepts_initial_order:
                kwargs["initial_order"] = initial
            if spec.stochastic:
                kwargs["seed"] = seed
            if method == "cp":
                kwargs["strategy"] = "sequential"
            solver = make_solver(method, **kwargs)
            result = solver.solve(
                instance, constraints, Budget(time_limit=time_limit)
            )
            runs.append(list(result.trace))
            run_stats = getattr(solver, "last_engine_stats", None)
            if run_stats:
                for key, value in run_stats.items():
                    totals[key] = totals.get(key, 0) + value
        traces[method] = runs
        if stats_out is not None and totals:
            stats_out[method] = totals
    return traces


def sample_trace(
    trace_runs: List[List[tuple]], time_points: Sequence[float]
) -> List[Optional[float]]:
    """Average best-so-far objective across runs at each time point."""
    sampled: List[Optional[float]] = []
    for point in time_points:
        values = []
        for events in trace_runs:
            best = None
            for elapsed, objective in events:
                if elapsed <= point and (best is None or objective < best):
                    best = objective
            if best is not None:
                values.append(best)
        sampled.append(sum(values) / len(values) if values else None)
    return sampled


def run(
    time_limit: Optional[float] = None, n_runs: Optional[int] = None
) -> ResultTable:
    """Regenerate Figure 11 as a sampled-curve table."""
    quick = quick_mode()
    if time_limit is None:
        time_limit = 4.0 if quick else 60.0
    if n_runs is None:
        n_runs = 2 if quick else 5
    instance = tpch_instance()
    methods = ["vns", "lns", "ts-bswap", "ts-fswap", "cp"]
    engine_stats: Dict[str, Dict[str, int]] = {}
    traces = local_search_traces(
        instance, methods, time_limit, seeds=range(n_runs),
        stats_out=engine_stats,
    )
    time_points = [time_limit * f for f in (0.1, 0.25, 0.5, 0.75, 1.0)]
    table = ResultTable(
        title=(
            f"Figure 11: Local Search (TPC-H), normalized objective vs "
            f"time (avg of {n_runs} runs, budget {time_limit:.0f}s)"
        ),
        headers=["Method"] + [f"t={point:.1f}s" for point in time_points],
    )
    for method in methods:
        sampled = sample_trace(traces[method], time_points)
        table.add_row(
            method.upper(),
            *[
                normalized_objective(instance, value)
                if value is not None
                else None
                for value in sampled
            ],
        )
    table.add_note(
        "paper shape: VNS/TS-BSwap lead, LNS lags (fixed neighborhood), "
        "CP barely improves on the greedy start"
    )
    for method in methods:
        note = engine_stats_note(method, engine_stats.get(method))
        if note is not None:
            table.add_note(note)
    return table

if __name__ == "__main__":
    print(run().render())
