"""Sharded experiment execution across worker processes.

The paper's table5/table6/fig13 grids are embarrassingly parallel:
every cell (instance × solver × budget) is independent.  This module
partitions a grid of :class:`Cell`\\ s across ``multiprocessing`` worker
processes and merges the per-cell outcomes back into the exact
sequential order, so an experiment runner assembles the *same*
:class:`~repro.experiments.harness.ResultTable` rows regardless of the
worker count.

Guarantees:

* **Deterministic shard assignment.**  :func:`shard_cells` is pure
  round-robin over the sequential cell index (shard ``s`` gets cells
  ``s, s+W, s+2W, ...``) — independent of timing, hostnames, or dict
  order, so a re-run with the same worker count replays the identical
  partition.
* **Deterministic per-cell seeds.**  :func:`derive_seed` derives a
  seed from ``(base_seed, cell_index)`` only, so a cell's seed does not
  depend on which shard runs it or on the worker count.
* **Sequential merge order.**  :func:`run_cells` always returns one
  outcome per cell, ordered by the cells' sequential index — byte-wise
  identical assembly for ``workers=1`` and ``workers=N`` whenever the
  cell payloads themselves are deterministic.
* **Crash isolation.**  A cell that raises becomes a structured error
  outcome (other cells are unaffected); a worker process that dies
  (hard crash) or exceeds the run ``timeout`` yields error outcomes for
  its unfinished cells instead of hanging the whole run.  Experiment
  runners render such outcomes as the paper's ``DF`` cells plus a note.

``workers <= 1`` executes inline in the calling process — the code path
the sequential experiment runners have always used.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Cell",
    "CellOutcome",
    "derive_seed",
    "run_cells",
    "shard_cells",
]

#: Sentinel a worker enqueues after finishing its shard.
_SHARD_DONE = "__shard_done__"

#: Queue poll interval while waiting on workers (seconds).
_POLL = 0.2


@dataclass(frozen=True)
class Cell:
    """One experiment-grid cell.

    Attributes:
        index: Position in the sequential enumeration of the grid; the
            merge key.  Must be unique per run.
        label: Human-readable identity (``"table5[mip|8 low]"``) used in
            error notes.
        fn: Module-level callable computing the cell payload (must be
            picklable for the multiprocessing path).
        args: Positional arguments for ``fn``.
        kwargs: Keyword arguments for ``fn``.
    """

    index: int
    label: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CellOutcome:
    """Result of one cell: a payload or a structured error."""

    index: int
    label: str
    value: Any = None
    error: Optional[str] = None
    elapsed: float = 0.0
    shard: int = 0

    @property
    def ok(self) -> bool:
        """True when the cell produced a payload."""
        return self.error is None


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic per-cell seed, independent of shard assignment."""
    return (base_seed * 1_000_003 + index * 7_919 + 12_345) % (2**31 - 1)


def shard_cells(n_cells: int, workers: int) -> List[List[int]]:
    """Round-robin partition of cell indexes ``0..n_cells-1``.

    Shard ``s`` receives cells ``s, s + W, s + 2W, ...`` — a pure
    function of ``(n_cells, workers)``.  Round-robin (rather than
    contiguous chunks) balances grids whose cost varies monotonically
    along the enumeration, e.g. instance sizes ascending within a
    method row.
    """
    if n_cells <= 0:
        return []
    workers = max(1, min(workers, n_cells))
    return [list(range(shard, n_cells, workers)) for shard in range(workers)]


def _execute(cell: Cell, shard: int) -> CellOutcome:
    """Run one cell, converting any exception into an error outcome."""
    start = time.perf_counter()
    try:
        value = cell.fn(*cell.args, **cell.kwargs)
        return CellOutcome(
            index=cell.index,
            label=cell.label,
            value=value,
            elapsed=time.perf_counter() - start,
            shard=shard,
        )
    except Exception as exc:  # crash isolation: never take down the grid
        detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
        return CellOutcome(
            index=cell.index,
            label=cell.label,
            error=detail,
            elapsed=time.perf_counter() - start,
            shard=shard,
        )


def _shard_worker(shard: int, cells: List[Cell], results) -> None:
    """Worker-process entry point: run one shard's cells in order."""
    for cell in cells:
        results.put((shard, _execute(cell, shard)))
    results.put((shard, _SHARD_DONE))


def run_cells(
    cells: Sequence[Cell],
    workers: Optional[int] = 1,
    timeout: Optional[float] = None,
) -> List[CellOutcome]:
    """Execute ``cells`` and return outcomes in sequential cell order.

    Args:
        cells: The grid, enumerated in sequential (reference) order;
            ``cell.index`` values must be unique.
        workers: Worker-process count; ``None`` means one per CPU, and
            values ``<= 1`` run inline without multiprocessing.
        timeout: Optional wall-clock cap in seconds for the whole
            parallel run; unfinished cells become error outcomes.
            Ignored on the inline path.
    """
    cells = list(cells)
    if len({cell.index for cell in cells}) != len(cells):
        raise ValueError("cell indexes must be unique")
    if workers is None:
        workers = multiprocessing.cpu_count()
    if workers <= 1 or len(cells) <= 1:
        return [_execute(cell, 0) for cell in cells]

    shards = shard_cells(len(cells), workers)
    methods = multiprocessing.get_all_start_methods()
    # fork shares the parent's warm instance caches copy-on-write;
    # spawn (the only option on some platforms) re-imports, which is
    # why Cell.fn must be a picklable module-level callable.
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    results = context.Queue()
    processes: List[Tuple[int, Any]] = []
    for shard, indexes in enumerate(shards):
        if not indexes:
            continue
        process = context.Process(
            target=_shard_worker,
            args=(shard, [cells[i] for i in indexes], results),
            daemon=True,
        )
        process.start()
        processes.append((shard, process))

    outcomes: Dict[int, CellOutcome] = {}
    finished = set()
    deadline = None if timeout is None else time.monotonic() + timeout
    timed_out = False
    try:
        while len(finished) < len(processes):
            wait = _POLL
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    timed_out = True
                    break
                wait = min(wait, remaining)
            try:
                shard, payload = results.get(timeout=wait)
            except queue_module.Empty:
                # A worker that died without its sentinel (hard crash)
                # must not hang the run; mark it finished so its cells
                # merge as error outcomes.
                for shard, process in processes:
                    if shard not in finished and not process.is_alive():
                        finished.add(shard)
                continue
            if payload == _SHARD_DONE:
                finished.add(shard)
            else:
                outcomes[payload.index] = payload
        # Drain stragglers already sitting in the queue buffer.
        while True:
            try:
                shard, payload = results.get_nowait()
            except queue_module.Empty:
                break
            if payload != _SHARD_DONE:
                outcomes[payload.index] = payload
    finally:
        for _, process in processes:
            if process.is_alive():
                process.terminate()
        for _, process in processes:
            process.join(timeout=5.0)
        results.close()

    merged: List[CellOutcome] = []
    n_shards = len(shards)
    for cell in cells:
        outcome = outcomes.get(cell.index)
        if outcome is None:
            reason = (
                f"sharded run timed out after {timeout:.1f}s"
                if timed_out
                else "worker process crashed before finishing this cell"
            )
            outcome = CellOutcome(
                index=cell.index,
                label=cell.label,
                error=reason,
                shard=cell.index % n_shards,
            )
        merged.append(outcome)
    return merged
