"""Figure 12: local search on TPC-DS (anytime quality curves).

Paper setting: two hours, average of 3 runs, on the 148-index TPC-DS
instance; VNS leads at every time range, TS-FSwap follows, TS-BSwap
improves strongly but each iteration takes ~50 minutes (quadratic swap
scan), and CP cannot escape the greedy start.  MIP runs out of memory
before finding any feasible solution — reproduced here by the MIP
model-size guard.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.objective import normalized_objective
from repro.core.solution import SolveStatus
from repro.experiments.fig11 import local_search_traces, sample_trace
from repro.experiments.harness import (
    ResultTable,
    engine_stats_note,
    quick_mode,
)
from repro.experiments.instances import tpcds_instance
from repro.solvers.base import Budget
from repro.solvers.mip import MIPSolver

__all__ = ["run"]


def run(
    time_limit: Optional[float] = None, n_runs: Optional[int] = None
) -> ResultTable:
    """Regenerate Figure 12 as a sampled-curve table."""
    quick = quick_mode()
    if time_limit is None:
        time_limit = 6.0 if quick else 120.0
    if n_runs is None:
        n_runs = 1 if quick else 3
    instance = tpcds_instance()
    methods = ["vns", "ts-bswap", "ts-fswap", "cp"]
    engine_stats: Dict[str, Dict[str, int]] = {}
    traces = local_search_traces(
        instance, methods, time_limit, seeds=range(n_runs),
        stats_out=engine_stats,
    )
    time_points = [time_limit * f for f in (0.1, 0.25, 0.5, 0.75, 1.0)]
    table = ResultTable(
        title=(
            f"Figure 12: Local Search (TPC-DS), normalized objective vs "
            f"time (avg of {n_runs} runs, budget {time_limit:.0f}s)"
        ),
        headers=["Method"] + [f"t={point:.1f}s" for point in time_points],
    )
    for method in methods:
        sampled = sample_trace(traces[method], time_points)
        table.add_row(
            method.upper(),
            *[
                normalized_objective(instance, value)
                if value is not None
                else None
                for value in sampled
            ],
        )
    # The paper notes MIP runs out of memory on this instance.
    mip = MIPSolver().solve(instance, budget=Budget(time_limit=1.0))
    if mip.status is SolveStatus.DID_NOT_FINISH:
        table.add_note(f"MIP: DF — {mip.message}")
    table.add_note(
        "paper shape: VNS best at every time range; TS-BSwap strong but "
        "slow per iteration; CP stuck at the greedy start"
    )
    for method in methods:
        note = engine_stats_note(method, engine_stats.get(method))
        if note is not None:
            table.add_note(note)
    return table

if __name__ == "__main__":
    print(run().render())
