"""Section 1.2 claim: build-interaction savings on TPC-DS.

The paper observes that a good deployment order "can reduce the build
cost of an index up to 80% and the entire deployment time as much as
20%" on TPC-DS.  This experiment measures both numbers on the extracted
instance: the largest single-index relative saving available from any
helper, and the total deployment-time gap between the
interaction-oblivious worst order and an interaction-exploiting order.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.fixpoint import analyze
from repro.core.objective import ObjectiveEvaluator
from repro.experiments.harness import ResultTable, quick_mode
from repro.experiments.instances import tpcds_instance
from repro.solvers.base import Budget
from repro.solvers.greedy import greedy_order
from repro.solvers.localsearch import VNSSolver

__all__ = ["run"]


def run(time_limit: Optional[float] = None) -> ResultTable:
    """Measure the Section-1.2 build-saving claims."""
    quick = quick_mode()
    if time_limit is None:
        time_limit = 4.0 if quick else 30.0
    instance = tpcds_instance()
    evaluator = ObjectiveEvaluator(instance)

    # Largest single-index build saving across all interactions.
    best_fraction = 0.0
    for bi in instance.build_interactions:
        fraction = bi.saving / instance.indexes[bi.target].create_cost
        best_fraction = max(best_fraction, fraction)

    # Deployment time: no interactions exploited vs. optimized order.
    no_interaction_total = instance.total_create_cost()
    report = analyze(instance, time_budget=10.0)
    initial = greedy_order(instance, report.constraints)
    result = VNSSolver(initial_order=initial).solve(
        instance, report.constraints, Budget(time_limit=time_limit)
    )
    optimized = evaluator.schedule(result.solution.order)
    reduction = (
        100.0
        * (no_interaction_total - optimized.total_deploy_time)
        / no_interaction_total
    )
    table = ResultTable(
        title="Build-interaction savings on TPC-DS (Section 1.2 claims)",
        headers=["Quantity", "Measured", "Paper"],
    )
    table.add_row(
        "max single-index build saving",
        f"{100 * best_fraction:.1f}%",
        "up to 80%",
    )
    table.add_row(
        "total deployment-time reduction",
        f"{reduction:.1f}%",
        "as much as 20%",
    )
    table.add_note(
        "single-index saving = best helper's cspdup relative to ctime; "
        "deployment reduction compares sum of base build costs against "
        "the VNS order's actual deployment time"
    )
    return table

if __name__ == "__main__":
    print(run().render())
