"""Objective-variant study (Section 4.4 discussion).

The paper contrasts its area objective with minimizing total deployment
time alone (Bruno & Chaudhuri's objective).  This experiment quantifies
the trade-off on TPC-H: optimize each objective with the same VNS
budget, then cross-evaluate both orders under both metrics.  The
area-optimized order should pay only a small deployment-time premium,
while the deploy-time-optimized order sacrifices substantial early
query speed-up (large area regression).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.fixpoint import analyze
from repro.core.objective import ObjectiveEvaluator, normalized_objective
from repro.core.transforms import deploy_time_variant
from repro.experiments.harness import ResultTable, quick_mode
from repro.experiments.instances import tpch_instance
from repro.solvers.base import Budget
from repro.solvers.greedy import greedy_order
from repro.solvers.localsearch.vns import VNSSolver

__all__ = ["run"]


def run(time_limit: Optional[float] = None, seed: int = 0) -> ResultTable:
    """Cross-evaluate area-optimal vs deploy-time-optimal orders."""
    if time_limit is None:
        time_limit = 3.0 if quick_mode() else 30.0
    instance = tpch_instance()
    evaluator = ObjectiveEvaluator(instance)
    report = analyze(instance, time_budget=10.0)

    area_result = VNSSolver(
        seed=seed, initial_order=greedy_order(instance, report.constraints)
    ).solve(instance, report.constraints, Budget(time_limit=time_limit))
    area_order = list(area_result.solution.order)

    variant = deploy_time_variant(instance)
    variant_report = analyze(variant, time_budget=10.0)
    deploy_result = VNSSolver(
        seed=seed,
        initial_order=greedy_order(variant, variant_report.constraints),
    ).solve(variant, variant_report.constraints, Budget(time_limit=time_limit))
    deploy_order = list(deploy_result.solution.order)

    table = ResultTable(
        title=(
            "Objective variants (TPC-H): area objective vs total "
            "deployment time (Section 4.4)"
        ),
        headers=[
            "Optimized for",
            "Area objective (norm)",
            "Deployment time",
        ],
    )
    for label, order in (
        ("area (paper)", area_order),
        ("deploy time (Bruno)", deploy_order),
    ):
        schedule = evaluator.schedule(order)
        table.add_row(
            label,
            normalized_objective(instance, schedule.objective),
            schedule.total_deploy_time,
        )
    area_schedule = evaluator.schedule(area_order)
    deploy_schedule = evaluator.schedule(deploy_order)
    premium = (
        100.0
        * (area_schedule.total_deploy_time - deploy_schedule.total_deploy_time)
        / max(deploy_schedule.total_deploy_time, 1e-9)
    )
    table.add_note(
        f"area-optimal order pays a {premium:.1f}% deployment-time premium "
        "for its earlier query speed-ups"
    )
    table.add_note(
        "paper's argument: the area objective captures both goals; pure "
        "deploy-time optimization ignores when speed-ups arrive"
    )
    return table


if __name__ == "__main__":
    print(run().render())
