"""Experiment regenerators for every table and figure of the paper.

Each module exposes ``run(...) -> ResultTable``.  Budgets are scaled for
Python (set ``REPRO_FULL=1`` for longer budgets); each table's notes
record the paper-vs-measured comparison that EXPERIMENTS.md summarizes.
"""

from repro.experiments import (
    ablation,
    objectives,
    build_savings,
    fig9,
    fig11,
    fig12,
    fig13,
    parallel,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.harness import DF, ResultTable, quick_mode
from repro.experiments.instances import reduced_tpch, tpcds_instance, tpch_instance

ALL_EXPERIMENTS = {
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "fig9": fig9.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "build_savings": build_savings.run,
    "ablation": ablation.run,
    "objectives": objectives.run,
}

__all__ = [
    "ResultTable",
    "DF",
    "quick_mode",
    "tpch_instance",
    "tpcds_instance",
    "reduced_tpch",
    "ALL_EXPERIMENTS",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig9",
    "fig11",
    "fig12",
    "fig13",
    "build_savings",
    "ablation",
    "objectives",
    "parallel",
]
