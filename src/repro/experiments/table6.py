"""Table 6: pruning-power drill-down (reduced TPC-H).

Paper layout: rows add one Section-5 property at a time (CP, +A, +AC,
+ACM, +ACMD, +ACMDT); columns are instance sizes; cells are CP solve
times with "DF" when the search does not finish.  Each property family
buys orders of magnitude (the paper computes a cumulative speed-up of at
least 2.7e26 on the 31-index instance).

The reproduction runs the same cumulative ladder with scaled budgets and
also reports the implied-pair count each rung contributes, which is the
mechanism behind the speed-up.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.fixpoint import analyze
from repro.core.solution import SolveStatus
from repro.experiments.harness import DF, ResultTable, quick_mode
from repro.experiments.instances import reduced_tpch
from repro.experiments.parallel import Cell, run_cells
from repro.solvers.base import Budget
from repro.solvers.cp import CPSolver

__all__ = ["run", "PROPERTY_LADDER"]

PROPERTY_LADDER = ["", "A", "AC", "ACM", "ACMD", "ACMDT"]


def _cell_payload(properties: str, size: int, time_limit: float) -> Dict[str, Any]:
    """Compute one drill-down cell (runs in a shard worker or inline)."""
    instance = reduced_tpch(size, "low")
    report = analyze(instance, properties=properties, time_budget=10.0)
    implied = report.constraints.implied_pair_count()
    result = CPSolver(strategy="sequential").solve(
        instance, report.constraints, Budget(time_limit=time_limit)
    )
    if result.status is SolveStatus.OPTIMAL:
        cell = f"{result.runtime:.2f}"
    elif result.solution is not None:
        cell = f"{result.runtime:.2f}*"
    else:
        cell = DF
    return {"cell": cell, "implied": implied}


def run(
    time_limit: Optional[float] = None,
    sizes: Optional[Sequence[int]] = None,
    workers: int = 1,
) -> ResultTable:
    """Regenerate Table 6 with scaled budgets.

    ``workers > 1`` shards the (property-rung × size) grid across
    worker processes; rows merge back in the sequential ladder order.
    """
    quick = quick_mode()
    if time_limit is None:
        time_limit = 10.0 if quick else 60.0
    if sizes is None:
        sizes = [6, 8, 10] if quick else [6, 9, 11, 13]
    table = ResultTable(
        title=(
            "Table 6: Pruning Power Drill-Down (Reduced TPC-H, low "
            f"density), seconds (per-cell budget {time_limit:.0f}s)"
        ),
        headers=["Properties"]
        + [f"|I|={size}" for size in sizes]
        + ["implied pairs @ largest"],
    )
    cells: List[Cell] = []
    for properties in PROPERTY_LADDER:
        for size in sizes:
            cells.append(
                Cell(
                    index=len(cells),
                    label=f"table6[{properties or 'CP'}|{size}]",
                    fn=_cell_payload,
                    args=(properties, size, time_limit),
                )
            )
    timeout = (
        None
        if workers <= 1
        else -(-len(cells) // max(1, workers)) * (time_limit + 30.0) + 60.0
    )
    outcomes = run_cells(cells, workers=workers, timeout=timeout)
    errors: List[str] = []
    position = 0
    for properties in PROPERTY_LADDER:
        label = "CP" if not properties else f"+{properties}"
        row: List[str] = []
        implied: Optional[int] = None
        for _ in sizes:
            outcome = outcomes[position]
            position += 1
            if outcome.ok:
                row.append(outcome.value["cell"])
                # The header advertises the count at the largest size,
                # i.e. the rung's last (ascending) column.
                implied = outcome.value["implied"]
            else:
                row.append(DF)
                errors.append(f"{outcome.label}: {outcome.error}")
        table.add_row(label, *row, implied)
    table.add_note(
        "* = best solution found but no optimality proof within budget"
    )
    table.add_note(
        "paper shape: each added property keeps the CP search finishing "
        "at sizes where the previous rung DFs"
    )
    for error in errors:
        table.add_note(f"sharded cell failed: {error}")
    return table

if __name__ == "__main__":
    print(run().render())
