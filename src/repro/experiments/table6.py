"""Table 6: pruning-power drill-down (reduced TPC-H).

Paper layout: rows add one Section-5 property at a time (CP, +A, +AC,
+ACM, +ACMD, +ACMDT); columns are instance sizes; cells are CP solve
times with "DF" when the search does not finish.  Each property family
buys orders of magnitude (the paper computes a cumulative speed-up of at
least 2.7e26 on the 31-index instance).

The reproduction runs the same cumulative ladder with scaled budgets and
also reports the implied-pair count each rung contributes, which is the
mechanism behind the speed-up.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.fixpoint import analyze
from repro.core.solution import SolveStatus
from repro.experiments.harness import DF, ResultTable, quick_mode
from repro.experiments.instances import reduced_tpch
from repro.solvers.base import Budget
from repro.solvers.cp import CPSolver

__all__ = ["run", "PROPERTY_LADDER"]

PROPERTY_LADDER = ["", "A", "AC", "ACM", "ACMD", "ACMDT"]


def run(
    time_limit: Optional[float] = None,
    sizes: Optional[Sequence[int]] = None,
) -> ResultTable:
    """Regenerate Table 6 with scaled budgets."""
    quick = quick_mode()
    if time_limit is None:
        time_limit = 10.0 if quick else 60.0
    if sizes is None:
        sizes = [6, 8, 10] if quick else [6, 9, 11, 13]
    table = ResultTable(
        title=(
            "Table 6: Pruning Power Drill-Down (Reduced TPC-H, low "
            f"density), seconds (per-cell budget {time_limit:.0f}s)"
        ),
        headers=["Properties"]
        + [f"|I|={size}" for size in sizes]
        + ["implied pairs @ largest"],
    )
    for properties in PROPERTY_LADDER:
        label = "CP" if not properties else f"+{properties}"
        cells: List[str] = []
        implied = 0
        for size in sizes:
            instance = reduced_tpch(size, "low")
            report = analyze(
                instance, properties=properties, time_budget=10.0
            )
            implied = report.constraints.implied_pair_count()
            result = CPSolver(strategy="sequential").solve(
                instance, report.constraints, Budget(time_limit=time_limit)
            )
            if result.status is SolveStatus.OPTIMAL:
                cells.append(f"{result.runtime:.2f}")
            elif result.solution is not None:
                cells.append(f"{result.runtime:.2f}*")
            else:
                cells.append(DF)
        table.add_row(label, *cells, implied)
    table.add_note(
        "* = best solution found but no optimality proof within budget"
    )
    table.add_note(
        "paper shape: each added property keeps the CP search finishing "
        "at sizes where the previous rung DFs"
    )
    return table

if __name__ == "__main__":
    print(run().render())
