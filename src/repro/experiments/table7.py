"""Table 7: initial-solution quality (Greedy vs. DP vs. Random).

Paper values (objective, lower is better)::

    Dataset   Greedy   DP     Random(AVG)  Random(MIN)
    TPC-H      47.9    57.0      65.5         51.5
    TPC-DS     65.9    70.5      74.1         69.6

The reproducible claim: the interaction-guided greedy (Algorithm 1)
beats the Schnaitter-style DP (Algorithm 2) — which ignores build
costs — and both beat random permutations, on both datasets.  Objectives
are reported on the normalized 0–100 scale (fraction of the worst-case
rectangle), the same scale family the paper's numbers live on.
"""

from __future__ import annotations

from repro.core.objective import normalized_objective
from repro.core.solution import Solution
from repro.experiments.harness import ResultTable
from repro.experiments.instances import tpcds_instance, tpch_instance
from repro.solvers.dp import DPSolver
from repro.solvers.greedy import GreedySolver
from repro.solvers.random_search import random_statistics

__all__ = ["run", "PAPER_VALUES"]

PAPER_VALUES = {
    "TPC-H": {"greedy": 47.9, "dp": 57.0, "random_avg": 65.5, "random_min": 51.5},
    "TPC-DS": {"greedy": 65.9, "dp": 70.5, "random_avg": 74.1, "random_min": 69.6},
}


def run(samples: int = 100, seed: int = 0) -> ResultTable:
    """Regenerate Table 7 (normalized objectives, ours vs. paper)."""
    table = ResultTable(
        title="Table 7: Initial Solutions (normalized objective, lower is better)",
        headers=[
            "Dataset",
            "Greedy",
            "DP",
            "Random (AVG)",
            "Random (MIN)",
        ],
    )
    for label, instance in (
        ("TPC-H", tpch_instance()),
        ("TPC-DS", tpcds_instance()),
    ):
        greedy = GreedySolver().solve(instance)
        dp = DPSolver().solve(instance)
        average, minimum, _ = random_statistics(
            instance, samples=samples, seed=seed
        )
        table.add_row(
            label,
            normalized_objective(instance, greedy.objective),
            normalized_objective(instance, dp.objective),
            normalized_objective(instance, average),
            normalized_objective(instance, minimum),
        )
        paper = PAPER_VALUES[label]
        table.add_row(
            f"{label} (paper)",
            paper["greedy"],
            paper["dp"],
            paper["random_avg"],
            paper["random_min"],
        )
    table.add_note(
        "reproducible ordering: Greedy < DP < Random(AVG) and "
        "Greedy < Random(MIN) on both datasets"
    )
    return table

if __name__ == "__main__":
    print(run().render())
