"""Canonical experiment instances and size-reduced variants.

Experiments share two extracted instances (TPC-H, TPC-DS) loaded from
the packaged matrix-file artifacts, plus the reduced-TPC-H family used
by the exact-search studies: the paper varies both the index count
(keeping the most workload-relevant indexes) and the interaction density
(Section 8.1 low/mid reductions).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.density import reduce_density
from repro.core.instance import ProblemInstance
from repro.workloads.extracted import build_tpcds_instance, build_tpch_instance

__all__ = ["tpch_instance", "tpcds_instance", "reduced_tpch"]

_cache: Dict[Tuple[str, int, str], ProblemInstance] = {}


def tpch_instance() -> ProblemInstance:
    """The full TPC-H ordering instance."""
    return build_tpch_instance()


def tpcds_instance() -> ProblemInstance:
    """The full TPC-DS ordering instance."""
    return build_tpcds_instance()


def reduced_tpch(n_indexes: int, density: str = "low") -> ProblemInstance:
    """Reduced TPC-H instance: top ``n_indexes`` indexes at ``density``.

    Indexes are ranked by total workload involvement (summed weighted
    plan speed-ups, split across plan members) and the top ``n_indexes``
    kept, preserving the interesting interaction structure; the result
    is then density-reduced per Section 8.1.  This is the instance
    family of Tables 5 and 6.
    """
    key = ("tpch", n_indexes, density)
    if key in _cache:
        return _cache[key]
    full = tpch_instance()
    scores = []
    for index in full.indexes:
        total = 0.0
        for plan_id in full.plans_containing(index.index_id):
            plan = full.plans[plan_id]
            weight = full.queries[plan.query_id].weight
            total += plan.speedup * weight / len(plan.indexes)
        scores.append((-total, index.index_id))
    ranked = [index_id for _, index_id in sorted(scores)]
    keep = sorted(ranked[: min(n_indexes, len(ranked))])
    restricted = full.restrict_to_indexes(
        keep, name=f"tpch-{len(keep)}-{density}"
    )
    reduced = reduce_density(restricted, density)
    _cache[key] = reduced
    return reduced
