#!/usr/bin/env python
"""Schema evolution: the paper's iZunes Store scenario, end to end.

A music store ties customers to multiple countries: the logical schema
gains an n:n table CUST_COUNTRIES, every country-rollup report changes,
and the physical design around CUSTOMER must be rebuilt.  This example
runs the full Incremental Database Design pipeline on the *new* schema:

1. define the evolved schema and the analysts' new reports,
2. let the advisor suggest the replacement index set (the clustered
   index on the new table must precede its secondaries — a hard
   precedence),
3. extract the ordering instance via what-if analysis,
4. order the deployment with VNS and compare against a naive order.

Run:  python examples/schema_evolution.py
"""

from repro import Budget, ObjectiveEvaluator, VNSSolver, analyze
from repro.dbms import (
    Catalog,
    Column,
    IndexAdvisor,
    IndexSpec,
    InstanceExtractor,
    JoinEdge,
    Predicate,
    PredicateOp,
    Query,
    Table,
    Workload,
)
from repro.solvers import greedy_order, random_statistics


def evolved_catalog() -> Catalog:
    """The iZunes schema after the COUNTRY column moved to an n:n table."""
    catalog = Catalog()
    catalog.add_table(
        Table(
            "customer",
            [
                Column("custid", 4, 2_000_000),
                Column("name", 24, 1_900_000),
                Column("address", 48, 1_800_000),
                Column("signup_date", 4, 3_000),
                Column("lifetime_value", 8, 500_000),
                Column("plan_tier", 2, 4),
            ],
            row_count=2_000_000,
        )
    )
    catalog.add_table(
        Table(
            "cust_countries",
            [
                Column("custid", 4, 2_000_000),
                Column("country", 2, 120),
            ],
            row_count=2_600_000,
        )
    )
    catalog.add_table(
        Table(
            "purchases",
            [
                Column("purchase_id", 4, 30_000_000),
                Column("custid", 4, 2_000_000),
                Column("track_id", 4, 900_000),
                Column("purchase_date", 4, 3_000),
                Column("price", 8, 300),
                Column("country", 2, 120),
            ],
            row_count=30_000_000,
        )
    )
    return catalog


def analyst_reports() -> Workload:
    """The analysts' rewritten country-rollup reports."""
    queries = [
        # Revenue by country now goes through the n:n table.
        Query(
            "revenue_by_country",
            tables=["cust_countries", "purchases"],
            predicates=[
                Predicate("purchases", "purchase_date", PredicateOp.RANGE, 0.1)
            ],
            joins=[
                JoinEdge("cust_countries", "custid", "purchases", "custid")
            ],
            group_by=[("cust_countries", "country")],
            select=[("purchases", "price")],
            weight=3.0,
        ),
        # Top customers per country.
        Query(
            "top_customers_per_country",
            tables=["customer", "cust_countries"],
            predicates=[
                Predicate("cust_countries", "country", PredicateOp.IN, values=5)
            ],
            joins=[JoinEdge("customer", "custid", "cust_countries", "custid")],
            group_by=[("cust_countries", "country")],
            select=[("customer", "name"), ("customer", "lifetime_value")],
            weight=2.0,
        ),
        # Churn-risk list: recent signups on premium tiers, per country.
        Query(
            "premium_signups_by_country",
            tables=["customer", "cust_countries"],
            predicates=[
                Predicate("customer", "plan_tier", PredicateOp.EQ),
                Predicate("customer", "signup_date", PredicateOp.RANGE, 0.05),
            ],
            joins=[JoinEdge("customer", "custid", "cust_countries", "custid")],
            group_by=[("cust_countries", "country")],
            select=[("customer", "name")],
        ),
        # Country-local catalog performance.
        Query(
            "local_track_sales",
            tables=["purchases"],
            predicates=[
                Predicate("purchases", "country", PredicateOp.EQ),
                Predicate("purchases", "purchase_date", PredicateOp.RANGE, 0.2),
            ],
            group_by=[("purchases", "track_id")],
            select=[("purchases", "price")],
            weight=2.0,
        ),
    ]
    return Workload("izunes_reports", queries)


def main() -> None:
    catalog = evolved_catalog()
    workload = analyst_reports()

    # The new n:n table is organized by a clustered index; its
    # secondaries cannot be built before it (hard precedence).
    clustered = IndexSpec(
        "cx_cust_countries",
        "cust_countries",
        key_columns=("country", "custid"),
        clustered=True,
    )
    catalog.add_index(clustered, hypothetical=True)

    advisor = IndexAdvisor(catalog, workload)
    suggested = advisor.select()
    if all(spec.name != clustered.name for spec in suggested):
        suggested = [clustered] + list(suggested)
    print(f"advisor suggested {len(suggested)} indexes:")
    for spec in suggested:
        kind = "clustered" if spec.clustered else "secondary"
        print(f"  {spec.name:42s} {kind:9s} keys={list(spec.key_columns)}")

    extractor = InstanceExtractor(catalog, workload)
    instance = extractor.extract(suggested, name="izunes")
    print(f"\nextracted: {instance}")
    print(f"stats: {instance.interaction_counts()}")
    for rule in instance.precedences:
        print(
            f"  hard precedence: {instance.indexes[rule.before].name} -> "
            f"{instance.indexes[rule.after].name} ({rule.reason})"
        )

    report = analyze(instance)
    print(f"\npre-analysis: {report.describe()}")

    result = VNSSolver().solve(
        instance, report.constraints, Budget(time_limit=3.0)
    )
    evaluator = ObjectiveEvaluator(instance)
    random_avg, random_min, _ = random_statistics(
        instance, samples=50, constraints=report.constraints
    )
    optimized = evaluator.schedule(result.solution.order)
    print("\n-- deployment comparison (objective area, lower is better) --")
    print(f"  random order (avg of 50) : {random_avg:14.0f}")
    print(f"  greedy initial           : "
          f"{evaluator.evaluate(greedy_order(instance, report.constraints)):14.0f}")
    print(f"  VNS optimized            : {result.solution.objective:14.0f}")
    print(f"\noptimized deployment ({optimized.total_deploy_time:.0f} cost units):")
    for step in optimized.steps:
        print(
            f"  {step.position:2d}. {instance.indexes[step.index_id].name:42s}"
            f" runtime {step.runtime_before:10.0f} -> {step.runtime_after:10.0f}"
        )


if __name__ == "__main__":
    main()
