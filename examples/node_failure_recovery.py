#!/usr/bin/env python
"""Real-time recovery: re-deploying indexes lost in a node failure.

The paper's Section 1.1 use case: a data warehouse spread over
commodity machines loses a node, and with it a slice of the physical
design.  The DBA's goal is not just to rebuild every lost index but to
rebuild them in the order that restores query performance fastest —
exactly the ordering objective, applied to the surviving-to-lost delta.

This example:

1. loads the packaged TPC-DS ordering instance (148-ish indexes),
2. simulates a failure that wipes out a random third of the indexes,
3. restricts the instance to the lost indexes (the surviving ones keep
   serving queries, so only plans fully rebuildable from lost+surviving
   indexes matter),
4. compares three recovery orders — naive (id order), greedy, and
   VNS — on time-to-90%-of-recovered-speedup.

Run:  python examples/node_failure_recovery.py
"""

import random

from repro import Budget, GreedySolver, ObjectiveEvaluator, VNSSolver, analyze
from repro.core.instance import PlanDef, ProblemInstance
from repro.workloads.extracted import build_tpcds_instance


def simulate_node_failure(
    instance: ProblemInstance, loss_fraction: float = 0.33, seed: int = 7
) -> ProblemInstance:
    """Project the ordering problem onto the indexes a dead node held.

    Surviving indexes are treated as already built: plans that mix lost
    and surviving indexes stay relevant, but only their *lost* members
    still need deployment, and plans fully served by survivors are
    already active (their speed-up is folded into the base runtime).
    """
    rng = random.Random(seed)
    all_ids = list(range(instance.n_indexes))
    lost = sorted(rng.sample(all_ids, int(len(all_ids) * loss_fraction)))
    lost_set = set(lost)
    survivors = frozenset(all_ids) - lost_set

    remap = {old: new for new, old in enumerate(lost)}
    plans = []
    for plan in instance.plans:
        missing = plan.indexes & lost_set
        if not missing:
            continue  # fully survived: active already
        # Speed-up beyond what survivors deliver for this query.
        query = instance.queries[plan.query_id]
        surviving_speedup = instance.query_speedup(plan.query_id, survivors)
        extra = min(plan.speedup, query.base_runtime) - surviving_speedup
        if extra <= 0:
            continue
        plans.append(
            PlanDef(
                len(plans),
                plan.query_id,
                frozenset(remap[i] for i in missing),
                extra,
            )
        )
    recovered = instance.restrict_to_indexes(lost, name="recovery")
    return recovered.with_plans(plans, name="recovery")


def time_to_fraction(schedule, fraction: float = 0.9) -> float:
    """Deployment time until ``fraction`` of the total speed-up is back."""
    start = schedule.steps[0].runtime_before
    end = schedule.final_runtime
    target = start - fraction * (start - end)
    for step in schedule.steps:
        if step.runtime_after <= target:
            return step.finish_time
    return schedule.total_deploy_time


def main() -> None:
    full = build_tpcds_instance()
    recovery = simulate_node_failure(full)
    print(f"node failure: {recovery.n_indexes} indexes to rebuild")
    print(f"plans still waiting on lost indexes: {recovery.n_plans}")

    evaluator = ObjectiveEvaluator(recovery)
    report = analyze(recovery, time_budget=5.0)

    naive_order = list(range(recovery.n_indexes))
    greedy = GreedySolver().solve(recovery, report.constraints)
    vns = VNSSolver(seed=0, initial_order=list(greedy.solution.order)).solve(
        recovery, report.constraints, Budget(time_limit=5.0)
    )

    print(f"\n{'order':<10}{'objective':>16}{'t(90% recovered)':>20}")
    for name, order in (
        ("naive", naive_order),
        ("greedy", list(greedy.solution.order)),
        ("vns", list(vns.solution.order)),
    ):
        schedule = evaluator.schedule(order)
        print(
            f"{name:<10}{schedule.objective:>16.3e}"
            f"{time_to_fraction(schedule):>20.1f}"
        )

    best = evaluator.schedule(list(vns.solution.order))
    print("\nfirst five rebuilds under the optimized order:")
    for step in best.steps[:5]:
        name = recovery.indexes[step.index_id].name
        print(
            f"  {step.position}. {name:<44} "
            f"runtime {step.runtime_before:>12.0f} -> {step.runtime_after:>12.0f}"
        )


if __name__ == "__main__":
    main()
