#!/usr/bin/env python
"""Solver tour: every method in the library on one reduced instance.

Runs the full solver lineup of the paper on a 10-index reduced TPC-H
instance — exhaustive branch-and-bound, subset-lattice DP, A*, CP (with
and without Section-5 constraints), time-indexed MIP, greedy, the
Schnaitter DP heuristic, random sampling, two tabu searches, LNS, and
VNS — and prints objective, optimality status, nodes, and time for
each.

Run:  python examples/compare_solvers.py
"""

from repro import (
    AStarSolver,
    Budget,
    CPSolver,
    DPSolver,
    ExhaustiveSolver,
    GreedySolver,
    LNSSolver,
    MIPSolver,
    RandomSolver,
    SubsetDPSolver,
    TabuSolver,
    VNSSolver,
    analyze,
)
from repro.experiments.instances import reduced_tpch


def main() -> None:
    instance = reduced_tpch(10, "low")
    print(f"instance: {instance}")

    report = analyze(instance, time_budget=5.0)
    print(f"pre-analysis: {report.describe()}\n")

    budget = lambda seconds: Budget(time_limit=seconds)  # noqa: E731
    lineup = [
        ("exhaustive", ExhaustiveSolver(), None, 30.0),
        ("subset-dp", SubsetDPSolver(), None, 30.0),
        ("a*", AStarSolver(), None, 30.0),
        ("cp", CPSolver(), None, 30.0),
        ("cp+ (S5 constraints)", CPSolver(), report.constraints, 30.0),
        ("mip (coarse grid)", MIPSolver(steps_per_index=2), None, 20.0),
        ("greedy (Alg. 1)", GreedySolver(), None, 30.0),
        ("dp (Alg. 2)", DPSolver(), None, 30.0),
        ("random x100", RandomSolver(samples=100), None, 30.0),
        ("ts-bswap", TabuSolver(variant="best"), report.constraints, 3.0),
        ("ts-fswap", TabuSolver(variant="first"), report.constraints, 3.0),
        ("lns", LNSSolver(seed=0), report.constraints, 3.0),
        ("vns", VNSSolver(seed=0), report.constraints, 3.0),
    ]

    print(
        f"{'method':<22}{'objective':>14}{'status':>12}"
        f"{'nodes':>10}{'time[s]':>9}"
    )
    best = None
    for name, solver, constraints, seconds in lineup:
        result = solver.solve(instance, constraints, budget(seconds))
        objective = result.objective
        if objective is not None and (best is None or objective < best):
            best = objective
        print(
            f"{name:<22}"
            f"{objective if objective is not None else float('nan'):>14.1f}"
            f"{result.status.value:>12}"
            f"{result.nodes:>10}"
            f"{result.runtime:>9.2f}"
        )
    print(f"\nbest objective found: {best:.1f}")


if __name__ == "__main__":
    main()
