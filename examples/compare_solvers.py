#!/usr/bin/env python
"""Solver tour: every registered method on one reduced instance.

The lineup is *enumerated from the solver registry* — adding a solver
module that calls ``repro.solvers.registry.register`` makes it appear
here (and in ``repro solve --solver``) with no further changes.  Each
spec's capability flags pick the budget (exact methods get longer to
prove optimality) and decide whether the Section-5 constraints are
passed; the CP solver is additionally run once without them to show the
constraints' effect, mirroring the paper's CP vs CP+ comparison.

Run:  python examples/compare_solvers.py
"""

from repro import Budget, analyze
from repro.experiments.instances import reduced_tpch
from repro.solvers.registry import solver_specs

#: Per-solver construction overrides (everything else runs stock).
CONFIG = {"mip": {"steps_per_index": 2}}


def main() -> None:
    instance = reduced_tpch(10, "low")
    print(f"instance: {instance}")

    report = analyze(instance, time_budget=5.0)
    print(f"pre-analysis: {report.describe()}\n")

    lineup = []
    for name, spec in sorted(solver_specs().items()):
        kwargs = CONFIG.get(name, {})
        seconds = 30.0 if spec.exact else 3.0
        if name == "mip":
            seconds = 20.0
        constraints = report.constraints if spec.supports_constraints else None
        if spec.anytime and not spec.exact:
            # Local search always benefits from the constraints.
            lineup.append((name, spec.create(**kwargs), constraints, seconds))
        elif name == "cp":
            # Show the Section-5 effect: bare CP, then CP+.
            lineup.append((name, spec.create(**kwargs), None, seconds))
            lineup.append(
                (f"{name}+ (S5)", spec.create(**kwargs), constraints, seconds)
            )
        else:
            lineup.append((name, spec.create(**kwargs), None, seconds))

    print(
        f"{'method':<22}{'objective':>14}{'status':>12}"
        f"{'nodes':>10}{'time[s]':>9}"
    )
    best = None
    for name, solver, constraints, seconds in lineup:
        result = solver.solve(instance, constraints, Budget(time_limit=seconds))
        objective = result.objective
        if objective is not None and (best is None or objective < best):
            best = objective
        print(
            f"{name:<22}"
            f"{objective if objective is not None else float('nan'):>14.1f}"
            f"{result.status.value:>12}"
            f"{result.nodes:>10}"
            f"{result.runtime:>9.2f}"
        )
    print(f"\nbest objective found: {best:.1f}")


if __name__ == "__main__":
    main()
