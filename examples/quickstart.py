#!/usr/bin/env python
"""Quickstart: define a small instance, analyze it, and order deployment.

Builds the paper's running example by hand — competing plans, a query
interaction, and a build interaction — then runs the Section-5
pre-analysis and three solvers, and prints the optimized deployment
schedule with its improvement curve.

Run:  python examples/quickstart.py
"""

from repro import (
    Budget,
    BuildInteraction,
    CPSolver,
    GreedySolver,
    IndexDef,
    ObjectiveEvaluator,
    PlanDef,
    ProblemInstance,
    QueryDef,
    VNSSolver,
    analyze,
    normalized_objective,
)


def build_instance() -> ProblemInstance:
    """The Section-4.2 example, slightly enlarged.

    Indexes 0/1 mirror i1(City) and i2(City, Salary): competing plans
    for the salary query, plus a build interaction in both directions.
    Indexes 2/3 mirror the self-join example: only useful together.
    """
    indexes = [
        IndexDef(0, "ix_people_city", create_cost=40.0),
        IndexDef(1, "ix_people_city_salary", create_cost=70.0),
        IndexDef(2, "ix_people_city_only", create_cost=35.0),
        IndexDef(3, "ix_people_empid", create_cost=30.0),
        IndexDef(4, "ix_people_age", create_cost=25.0),
    ]
    queries = [
        QueryDef(0, "avg_salary_by_city", base_runtime=100.0),
        QueryDef(1, "reports_to_join", base_runtime=80.0),
        QueryDef(2, "age_rollup", base_runtime=60.0),
    ]
    plans = [
        # Competing plans: the covering index is strictly better.
        PlanDef(0, 0, frozenset([0]), speedup=20.0),
        PlanDef(1, 0, frozenset([1]), speedup=55.0),
        # Query interaction: the join needs both indexes.
        PlanDef(2, 1, frozenset([2, 3]), speedup=50.0),
        # A plain single-index plan.
        PlanDef(3, 2, frozenset([4]), speedup=25.0),
    ]
    interactions = [
        # i1(City) builds fast from i2(City, Salary) and vice versa.
        BuildInteraction(target=0, helper=1, saving=28.0),
        BuildInteraction(target=1, helper=0, saving=20.0),
    ]
    return ProblemInstance(
        indexes, queries, plans, interactions, name="quickstart"
    )


def main() -> None:
    instance = build_instance()
    print(instance)
    evaluator = ObjectiveEvaluator(instance)

    print("\n-- Section-5 pre-analysis --")
    report = analyze(instance)
    print(report.describe())
    for first, second in report.constraints.precedence_edges:
        print(
            f"  precedence: {instance.indexes[first].name} before "
            f"{instance.indexes[second].name}"
        )
    for first, second in report.constraints.consecutive_pairs:
        print(
            f"  alliance: {instance.indexes[second].name} immediately "
            f"after {instance.indexes[first].name}"
        )

    print("\n-- Solvers --")
    results = {
        "greedy": GreedySolver().solve(instance, report.constraints),
        "cp (exact)": CPSolver(strategy="sequential").solve(
            instance, report.constraints, Budget(time_limit=10.0)
        ),
        "vns": VNSSolver().solve(
            instance, report.constraints, Budget(time_limit=2.0)
        ),
    }
    for name, result in results.items():
        names = " -> ".join(
            instance.indexes[i].name.replace("ix_people_", "")
            for i in result.solution.order
        )
        print(
            f"  {name:11s} obj={result.solution.objective:9.1f} "
            f"(norm {normalized_objective(instance, result.solution.objective):5.2f})  {names}"
        )

    best = min(results.values(), key=lambda r: r.solution.objective)
    schedule = evaluator.schedule(best.solution.order)
    print("\n-- Best deployment schedule --")
    print(f"{'#':>2} {'index':28s} {'start':>8} {'cost':>8} {'saved':>7} {'runtime':>9}")
    for step in schedule.steps:
        print(
            f"{step.position:2d} {instance.indexes[step.index_id].name:28s} "
            f"{step.start_time:8.1f} {step.build_cost:8.1f} "
            f"{step.saving:7.1f} {step.runtime_after:9.1f}"
        )
    print(f"\ntotal deployment time : {schedule.total_deploy_time:.1f}")
    print(f"objective (area)      : {schedule.objective:.1f}")
    print(
        "improvement curve     : "
        + ", ".join(f"({t:.0f}, {r:.0f})" for t, r in schedule.improvement_curve())
    )


if __name__ == "__main__":
    main()
