"""Section 4.4 objective-variant ablation: area vs pure deployment time.

The paper argues the area objective subsumes deployment-time
minimization (both goals fall out of `sum R_{k-1} C_k`).  This bench
optimizes each objective separately and cross-evaluates: the
deploy-time-only order must never beat the area-optimized order on
area, and its deployment time must be at least as good (it optimizes
nothing else).
"""

from __future__ import annotations

from repro.experiments import objectives
from repro.experiments.harness import quick_mode


def test_ablation_objectives(benchmark, archive):
    time_limit = 3.0 if quick_mode() else 30.0
    table = benchmark.pedantic(
        objectives.run,
        kwargs={"time_limit": time_limit},
        rounds=1,
        iterations=1,
    )
    archive("ablation_objectives", table)
    rows = {row[0]: row for row in table.rows}
    area_row = rows["area (paper)"]
    deploy_row = rows["deploy time (Bruno)"]
    # Each order wins on its own metric (small numeric slack for the
    # stochastic search).
    assert area_row[1] <= deploy_row[1] * 1.02
    assert deploy_row[2] <= area_row[2] * 1.02
