"""Table 7: initial-solution quality (paper page 10).

Paper values (normalized objective, smaller is better):
  TPC-H : Greedy 47.9, DP 57.0, Random AVG 65.5, Random MIN 51.5
  TPC-DS: Greedy 65.9, DP 70.5, Random AVG 74.1, Random MIN 69.6
Reproduced claim: Greedy < DP and Greedy < both Random columns on both
workloads.
"""

from __future__ import annotations

from repro.experiments import table7


def test_table7_initial_solutions(benchmark, archive):
    table = benchmark.pedantic(
        table7.run, kwargs={"samples": 100}, rounds=1, iterations=1
    )
    archive("table7_initial_solutions", table)
    for row in table.rows:
        label, greedy, dp, random_avg, random_min = row[:5]
        assert greedy <= dp, f"{label}: greedy must beat DP"
        assert greedy <= random_avg, f"{label}: greedy must beat random avg"
        assert greedy <= random_min, f"{label}: greedy must beat random min"
