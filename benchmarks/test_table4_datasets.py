"""Table 4: experimental dataset statistics (paper page 10).

Paper values: TPC-H |Q|=22 |I|=31 |P|=221 largest=5 build=31 query=80;
TPC-DS |Q|=102 |I|=148 |P|=3386 largest=13 build=243 query=1363.
Reproduced claim: same order-of-magnitude shapes and the TPC-DS/TPC-H
density gap.
"""

from __future__ import annotations

from repro.experiments import table4


def test_table4_datasets(benchmark, archive):
    table = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    archive("table4_datasets", table)
    rows = {row[0]: row for row in table.rows}
    measured_h, measured_ds = rows["TPC-H"], rows["TPC-DS"]
    # Headline shape assertions (mirror the unit tests, kept here so the
    # bench fails loudly if the extraction drifts).
    assert measured_h[1] == 22
    assert measured_ds[1] == 102
    assert measured_ds[2] > 3 * measured_h[2]
    assert measured_ds[3] > 5 * measured_h[3]
