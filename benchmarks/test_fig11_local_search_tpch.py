"""Figure 11: local-search anytime curves on TPC-H (paper page 11).

Paper shape over the 60-second window: TS-BSwap and VNS lead, LNS lags
behind (fixed neighborhood), CP barely improves on the greedy start.
Budgets are scaled to a few seconds; the claim is the method ordering
at the final time point, not absolute objective values.
"""

from __future__ import annotations

import re

from repro.experiments import fig11
from repro.experiments.harness import quick_mode


def test_fig11_local_search_tpch(benchmark, archive):
    time_limit = 4.0 if quick_mode() else 60.0
    table = benchmark.pedantic(
        fig11.run,
        kwargs={"time_limit": time_limit, "n_runs": 2},
        rounds=1,
        iterations=1,
    )
    archive("fig11_local_search_tpch", table)
    final = {
        row[0]: row[-1]
        for row in table.rows
        if isinstance(row[-1], float)
    }
    # Every local-search method must at least match the CP curve (which
    # sits at the shared greedy start on this budget).
    if "CP" in final:
        for method in ("VNS", "TS-BSWAP"):
            if method in final:
                assert final[method] <= final["CP"] + 0.5
    # VNS must be competitive with the best method at the final point.
    best = min(final.values())
    assert final["VNS"] <= best * 1.05 + 0.5
    # The tabu solvers run on the engine's delta path: the harness must
    # report their statistics, and the move sequence must have replayed
    # strictly fewer steps than PrefixCachedEvaluator would have.
    stats_notes = [note for note in table.notes if note.startswith("engine[ts-")]
    assert stats_notes, table.notes
    for note in stats_notes:
        match = re.search(
            r"replayed (\d+) steps vs (\d+) prefix-cache baseline", note
        )
        assert match, note
        replayed, baseline = int(match.group(1)), int(match.group(2))
        assert replayed < baseline, note
