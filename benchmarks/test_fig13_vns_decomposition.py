"""Figure 13: VNS improvement decomposition on TPC-DS (paper page 11).

Paper shape: the sharp early improvement comes from deployment time
(build interactions); later improvement comes from average query
runtime during deployment.  Both series end no worse than they start.
"""

from __future__ import annotations

from repro.experiments import fig13
from repro.experiments.harness import quick_mode


def test_fig13_vns_decomposition(benchmark, archive):
    time_limit = 6.0 if quick_mode() else 60.0
    table = benchmark.pedantic(
        fig13.run, kwargs={"time_limit": time_limit}, rounds=1, iterations=1
    )
    archive("fig13_vns_decomposition", table)
    deploy = [row[1] for row in table.rows if isinstance(row[1], float)]
    runtime = [row[2] for row in table.rows if isinstance(row[2], float)]
    assert len(deploy) >= 2, "VNS must improve the incumbent at least once"
    assert deploy[-1] <= deploy[0] + 1e-9
    assert runtime[-1] <= runtime[0] * 1.001
