"""Section 1.2 claims: build-interaction savings on TPC-DS.

Paper: "a good deployment order can reduce the build cost of an index
up to 80% and the entire deployment time as much as 20%."
"""

from __future__ import annotations

from repro.experiments import build_savings
from repro.experiments.harness import quick_mode


def test_build_interaction_savings(benchmark, archive):
    time_limit = 4.0 if quick_mode() else 30.0
    table = benchmark.pedantic(
        build_savings.run,
        kwargs={"time_limit": time_limit},
        rounds=1,
        iterations=1,
    )
    archive("build_interaction_savings", table)
    values = {str(row[0]): row[1] for row in table.rows}
    single = next(
        value
        for key, value in values.items()
        if "single" in key.lower()
    )
    total = next(
        value
        for key, value in values.items()
        if "deployment" in key.lower()
    )
    # Shape: single-index savings are large (paper: up to 80%), total
    # deployment savings are meaningful but smaller (paper: ~20%).
    assert float(str(single).rstrip("%")) >= 40.0
    assert float(str(total).rstrip("%")) >= 5.0
    assert float(str(total).rstrip("%")) < float(str(single).rstrip("%"))
