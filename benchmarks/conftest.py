"""Shared benchmark infrastructure.

Every benchmark regenerates one paper artifact (table or figure), prints
it, and archives the rendered text under ``benchmarks/results/`` so the
EXPERIMENTS.md paper-vs-measured log can be refreshed from a single
``pytest benchmarks/ --benchmark-only`` run.

Budgets are scaled down from the paper's minutes/hours (see
DESIGN.md); set ``REPRO_FULL=1`` for larger budgets.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Print a rendered experiment table and archive it by name."""

    def _archive(name: str, table) -> None:
        text = table.render()
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _archive
