"""Local-search move-evaluation throughput: EvalEngine vs PrefixCached.

The tentpole claim of the engine consolidation is that delta evaluation
makes the fig11/fig12 hot path measurably faster than the checkpoint
evaluator it replaced.  This benchmark pins that claim: the same swap
sequence is evaluated by both backends, *interleaved in one process*
(this machine's CPU frequency drifts between processes, so only
same-process ratios are stable), and the engine must stay ahead.

Three patterns are measured against the checkpoint evaluator:

* ``scan`` — the TS-BSwap pair scan (``pos_a`` ascending, ``pos_b``
  inner), where cursor alignment is amortized to single steps and the
  divergence window is the whole saving; this is the actual tabu hot
  path.
* ``random`` — uniformly random swaps, the worst case for cursor
  alignment.
* ``scattered`` — multi-chunk neighbors of the LNS relaxation shape,
  exercising the balanced-chunk + base-snapshot ``evaluate_neighbor``
  path (the neighbor replays only its changed runs, not the gaps).

A second benchmark pins the vectorized layer (``repro.core.batch``):
the same tabu neighborhood-scan sequence runs through the scalar and
numpy kernels of ``EvalEngine.eval_all_swaps``, interleaved scan by
scan, and the numpy kernel must be >= 3x faster *including* its
per-base precompute.  Results land in ``BENCH_batch.json``.

Measured on the reference box: ~2.3x (scan), ~1.3x (random), ~2.2x
(scattered), ~4x (numpy batch vs scalar scan, n=96).  The asserted
floors are deliberately conservative to absorb machine noise.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.core.batch import HAVE_NUMPY
from repro.core.engine import EvalEngine
from repro.core.objective import PrefixCachedEvaluator
from repro.experiments.instances import tpch_instance
from repro.workloads import GeneratorConfig, generate_instance

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_localsearch.json"
BATCH_RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_batch.json"


def _smoke_rounds(full: int) -> int:
    """Round count, cut down when ``REPRO_BENCH_SMOKE=1`` (CI smoke)."""
    if os.environ.get("REPRO_BENCH_SMOKE") == "1":
        return max(1, full // 4)
    return full


def _interleaved_ratio(instance, moves, rounds: int) -> dict:
    n = instance.n_indexes
    base = list(range(n))
    random.Random(0).shuffle(base)
    engine = EvalEngine(instance)
    engine.set_base(base)
    cached = PrefixCachedEvaluator(instance)
    cached.set_base(base)
    engine_time = cached_time = 0.0
    slice_n = max(1, len(moves) // 8)
    for _ in range(rounds):
        for start in range(0, len(moves), slice_n):
            chunk = moves[start : start + slice_n]
            t0 = time.perf_counter()
            for pos_a, pos_b in chunk:
                engine.eval_swap(pos_a, pos_b)
            engine_time += time.perf_counter() - t0
            t0 = time.perf_counter()
            for pos_a, pos_b in chunk:
                cached.evaluate_swap(pos_a, pos_b)
            cached_time += time.perf_counter() - t0
    # Spot-check agreement on the last chunk so the ratio cannot be won
    # by computing the wrong thing fast.
    for pos_a, pos_b in moves[:25]:
        assert engine.eval_swap(pos_a, pos_b) == pytest.approx(
            cached.evaluate_swap(pos_a, pos_b), rel=1e-9
        )
    return {
        "engine_seconds": engine_time,
        "prefix_cached_seconds": cached_time,
        "speedup": cached_time / engine_time if engine_time else float("inf"),
        "moves": len(moves) * rounds,
        "replayed_steps": engine.stats.replayed_steps,
        "baseline_steps": engine.stats.baseline_steps,
    }


def _interleaved_scattered_ratio(instance, orders, rounds: int) -> dict:
    """A/B ``evaluate_neighbor`` vs checkpoint replay on scattered
    multi-chunk neighbors (the LNS relaxation shape)."""
    base = list(range(instance.n_indexes))
    random.Random(0).shuffle(base)
    engine = EvalEngine(instance)
    engine.set_base(base)
    cached = PrefixCachedEvaluator(instance)
    cached.set_base(base)
    engine_time = cached_time = 0.0
    slice_n = max(1, len(orders) // 8)
    for _ in range(rounds):
        for start in range(0, len(orders), slice_n):
            chunk = orders[start : start + slice_n]
            t0 = time.perf_counter()
            for order in chunk:
                engine.evaluate_neighbor(order)
            engine_time += time.perf_counter() - t0
            t0 = time.perf_counter()
            for order in chunk:
                cached.evaluate(order)
            cached_time += time.perf_counter() - t0
    for order in orders[:25]:
        assert engine.evaluate_neighbor(order) == pytest.approx(
            cached.evaluate(order), rel=1e-9
        )
    return {
        "engine_seconds": engine_time,
        "prefix_cached_seconds": cached_time,
        "speedup": cached_time / engine_time if engine_time else float("inf"),
        "moves": len(orders) * rounds,
        "replayed_steps": engine.stats.replayed_steps,
        "baseline_steps": engine.stats.baseline_steps,
    }


def _scattered_orders(n: int, count: int, seed: int = 1):
    """Neighbors differing from the identity base in 3 distant spots."""
    rng = random.Random(seed)
    base = list(range(n))
    random.Random(0).shuffle(base)
    orders = []
    for _ in range(count):
        order = base[:]
        for pos in sorted(rng.sample(range(n - 1), 3)):
            order[pos], order[pos + 1] = order[pos + 1], order[pos]
        orders.append(order)
    return orders


def test_engine_beats_prefix_cached_on_tabu_scan(benchmark):
    instance = tpch_instance()
    n = instance.n_indexes
    scan = [(a, b) for a in range(n - 1) for b in range(a + 1, n)]
    rng = random.Random(1)
    randoms = [(rng.randrange(n), rng.randrange(n)) for _ in range(2000)]
    scattered = _scattered_orders(n, 400)

    def run():
        return {
            "scan": _interleaved_ratio(instance, scan, rounds=_smoke_rounds(8)),
            "random": _interleaved_ratio(
                instance, randoms, rounds=_smoke_rounds(3)
            ),
            "scattered": _interleaved_scattered_ratio(
                instance, scattered, rounds=_smoke_rounds(3)
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=1) + "\n")
    # The engine must replay fewer steps on the scan pattern it was
    # built for (deterministic), and finish faster.  Wall-clock floors
    # are conservative vs the measured ~2.3x / ~1.3x / ~2.2x, and
    # skipped on shared CI runners where scheduler jitter can distort
    # even an interleaved ratio.
    scan_stats = results["scan"]
    assert scan_stats["replayed_steps"] < scan_stats["baseline_steps"]
    scattered_stats = results["scattered"]
    assert scattered_stats["replayed_steps"] < scattered_stats["baseline_steps"]
    if os.environ.get("GITHUB_ACTIONS") != "true":
        assert scan_stats["speedup"] >= 1.3, scan_stats
        assert results["random"]["speedup"] >= 0.9, results["random"]
        assert scattered_stats["speedup"] >= 1.2, scattered_stats


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy kernel unavailable")
def test_numpy_batch_beats_scalar_on_tabu_scan(benchmark):
    """Interleaved A/B: numpy ``eval_all_swaps`` vs the scalar delta
    path on full tabu neighborhood scans, including the per-base
    precompute the numpy kernel pays on every rebase.

    Runs on a synthetic instance above the ``auto`` kernel threshold
    (TPC-H's n=32 legitimately stays scalar; TPC-DS takes minutes to
    build, which would dwarf the measurement).
    """
    instance = generate_instance(
        seed=9,
        config=GeneratorConfig(
            n_indexes=96, n_queries=60, build_interaction_rate=1.5
        ),
    )
    n = instance.n_indexes
    base = list(range(n))
    random.Random(0).shuffle(base)
    rounds = _smoke_rounds(8)
    # One base order per scan round: each round mutates the previous
    # order, so both kernels pay a genuine rebase + (for numpy) the
    # per-base precompute before every whole-neighborhood scan.
    orders = [base]
    for r in range(rounds - 1):
        order = orders[-1][:]
        pos = (5 * r) % (n - 7)
        order[pos], order[pos + 6] = order[pos + 6], order[pos]
        orders.append(order)

    scalar = EvalEngine(instance, kernel="scalar")
    numpy_engine = EvalEngine(instance, kernel="numpy")

    def run():
        scalar_time = numpy_time = 0.0
        last = (None, None)
        for order in orders:
            t0 = time.perf_counter()
            numpy_engine.set_base(order)
            numpy_objectives, _feasible = numpy_engine.eval_all_swaps()
            numpy_time += time.perf_counter() - t0
            t0 = time.perf_counter()
            scalar.set_base(order)
            scalar_objectives, _ = scalar.eval_all_swaps()
            scalar_time += time.perf_counter() - t0
            last = (numpy_objectives, scalar_objectives)
        # Parity spot-check so the ratio cannot be won by computing
        # the wrong thing fast.
        numpy_objectives, scalar_objectives = last
        for pos_a in range(0, n - 1, 7):
            for pos_b in range(pos_a + 1, n, 5):
                assert numpy_objectives[pos_a][pos_b] == pytest.approx(
                    scalar_objectives[pos_a][pos_b], rel=1e-9
                )
        stats = numpy_engine.stats
        return {
            "instance": {"kind": "synthetic", "n_indexes": n, "seed": 9},
            "scans": rounds,
            "moves_per_scan": n * (n - 1) // 2,
            "scalar_seconds": scalar_time,
            "numpy_seconds": numpy_time,
            "speedup": (
                scalar_time / numpy_time if numpy_time else float("inf")
            ),
            "batch_evals": stats.batch_evals,
            "batch_moves": stats.batch_moves,
            "batch_numpy": stats.batch_numpy,
            "batch_numba": stats.batch_numba,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    BATCH_RESULTS_PATH.parent.mkdir(exist_ok=True)
    BATCH_RESULTS_PATH.write_text(json.dumps(results, indent=1) + "\n")
    assert results["batch_numpy"] == rounds
    if os.environ.get("GITHUB_ACTIONS") != "true":
        assert results["speedup"] >= 3.0, results
