"""Local-search move-evaluation throughput: EvalEngine vs PrefixCached.

The tentpole claim of the engine consolidation is that delta evaluation
makes the fig11/fig12 hot path measurably faster than the checkpoint
evaluator it replaced.  This benchmark pins that claim: the same swap
sequence is evaluated by both backends, *interleaved in one process*
(this machine's CPU frequency drifts between processes, so only
same-process ratios are stable), and the engine must stay ahead.

Two patterns are measured:

* ``scan`` — the TS-BSwap pair scan (``pos_a`` ascending, ``pos_b``
  inner), where cursor alignment is amortized to single steps and the
  divergence window is the whole saving; this is the actual tabu hot
  path.
* ``random`` — uniformly random swaps, the worst case for cursor
  alignment.

Measured on the reference box: ~2.3x (scan) and ~1.3x (random).  The
asserted floors are deliberately conservative to absorb machine noise.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.core.engine import EvalEngine
from repro.core.objective import PrefixCachedEvaluator
from repro.experiments.instances import tpch_instance

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_localsearch.json"


def _interleaved_ratio(instance, moves, rounds: int) -> dict:
    n = instance.n_indexes
    base = list(range(n))
    random.Random(0).shuffle(base)
    engine = EvalEngine(instance)
    engine.set_base(base)
    cached = PrefixCachedEvaluator(instance)
    cached.set_base(base)
    engine_time = cached_time = 0.0
    slice_n = max(1, len(moves) // 8)
    for _ in range(rounds):
        for start in range(0, len(moves), slice_n):
            chunk = moves[start : start + slice_n]
            t0 = time.perf_counter()
            for pos_a, pos_b in chunk:
                engine.eval_swap(pos_a, pos_b)
            engine_time += time.perf_counter() - t0
            t0 = time.perf_counter()
            for pos_a, pos_b in chunk:
                cached.evaluate_swap(pos_a, pos_b)
            cached_time += time.perf_counter() - t0
    # Spot-check agreement on the last chunk so the ratio cannot be won
    # by computing the wrong thing fast.
    for pos_a, pos_b in moves[:25]:
        assert engine.eval_swap(pos_a, pos_b) == pytest.approx(
            cached.evaluate_swap(pos_a, pos_b), rel=1e-9
        )
    return {
        "engine_seconds": engine_time,
        "prefix_cached_seconds": cached_time,
        "speedup": cached_time / engine_time if engine_time else float("inf"),
        "moves": len(moves) * rounds,
        "replayed_steps": engine.stats.replayed_steps,
        "baseline_steps": engine.stats.baseline_steps,
    }


def test_engine_beats_prefix_cached_on_tabu_scan(benchmark):
    instance = tpch_instance()
    n = instance.n_indexes
    scan = [(a, b) for a in range(n - 1) for b in range(a + 1, n)]
    rng = random.Random(1)
    randoms = [(rng.randrange(n), rng.randrange(n)) for _ in range(2000)]

    def run():
        return {
            "scan": _interleaved_ratio(instance, scan, rounds=8),
            "random": _interleaved_ratio(instance, randoms, rounds=3),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=1) + "\n")
    # The engine must replay fewer steps on the scan pattern it was
    # built for (deterministic), and finish faster.  Wall-clock floors
    # are conservative vs the measured ~2.3x / ~1.3x, and skipped on
    # shared CI runners where scheduler jitter can distort even an
    # interleaved ratio.
    scan_stats = results["scan"]
    assert scan_stats["replayed_steps"] < scan_stats["baseline_steps"]
    if os.environ.get("GITHUB_ACTIONS") != "true":
        assert scan_stats["speedup"] >= 1.3, scan_stats
        assert results["random"]["speedup"] >= 0.9, results["random"]
