"""Table 6: pruning-power drill-down on reduced TPC-H (paper page 10).

Paper shape: each property family (A, C, M, D, T) added on top of bare
CP improves solve time by orders of magnitude; the full ladder closes
instances bare CP cannot touch.  We additionally report the implied
ordered-pair count, the quantity that actually shrinks the space.
"""

from __future__ import annotations

from repro.experiments import table6
from repro.experiments.harness import quick_mode


def test_table6_pruning_drilldown(benchmark, archive):
    sizes = [6, 8, 10] if quick_mode() else None
    table = benchmark.pedantic(
        table6.run, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    archive("table6_pruning_drilldown", table)
    labels = [row[0] for row in table.rows]
    assert labels == ["CP", "+A", "+AC", "+ACM", "+ACMD", "+ACMDT"]
    implied = [row[-1] for row in table.rows]
    # The constraint ladder only ever grows.
    assert implied == sorted(implied)
    assert implied[-1] > implied[0]
