"""Sharded-runner speedup and portfolio-race quality benchmarks.

The tentpole claim of the parallel layer is twofold:

* ``repro.experiments.parallel`` turns a budget-bound experiment grid
  into near-linear wall-clock speedup: concurrent cells each burn their
  *wall-clock* solver budget simultaneously, so even a single-core box
  overlaps the waiting (the solvers are budget-bound, not bound by the
  core count).  Sequential and sharded table5 runs are *interleaved in
  one process pair* (A/B/A/B) so CPU frequency drift cannot fake a win.
* The capability-driven portfolio never loses to its worst member and
  tracks the best one: the shared incumbent warm-starts every slice, so
  the race can only improve on the common greedy start.

Measured on the reference box: ~3.2x sharded speedup at 4 workers and
portfolio-vs-best-member gap under 0.1%.  Asserted floors are deliberately
conservative; wall-clock assertions are skipped on shared CI runners.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import table5
from repro.experiments.instances import tpch_instance
from repro.solvers.base import Budget
from repro.solvers.portfolio import PortfolioSolver
from repro.solvers.registry import create, solver_specs

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_portfolio.json"

GRID = [(6, "low"), (8, "low"), (10, "low"), (8, "mid")]
TIME_LIMIT = 1.0
WORKERS = 4


def _timed_table5(workers: int) -> float:
    t0 = time.perf_counter()
    table = table5.run(time_limit=TIME_LIMIT, grid=GRID, workers=workers)
    elapsed = time.perf_counter() - t0
    assert not any("sharded cell failed" in note for note in table.notes)
    return elapsed


def _sharded_speedup() -> dict:
    # Interleave A/B/A/B so the ratio is insensitive to machine drift.
    sequential = [_timed_table5(1)]
    sharded = [_timed_table5(WORKERS)]
    sequential.append(_timed_table5(1))
    sharded.append(_timed_table5(WORKERS))
    seq_total = sum(sequential)
    shard_total = sum(sharded)
    return {
        "grid": [list(cell) for cell in GRID],
        "time_limit": TIME_LIMIT,
        "workers": WORKERS,
        "sequential_seconds": seq_total,
        "sharded_seconds": shard_total,
        "speedup": seq_total / shard_total if shard_total else float("inf"),
    }


def _portfolio_quality() -> dict:
    # fig13's quick setting races anytime solvers on a fixed instance;
    # TPC-H keeps every member meaningful inside a couple of seconds.
    instance = tpch_instance()
    members = ("vns", "ts-fswap", "cp")
    budget = 2.0
    specs = solver_specs()
    member_objectives = {}
    for name in members:
        kwargs = {"seed": 0} if specs[name].stochastic else {}
        result = create(name, **kwargs).solve(
            instance, None, Budget(time_limit=budget)
        )
        member_objectives[name] = result.objective
    portfolio = PortfolioSolver(members=members, rounds=2, seed=0).solve(
        instance, None, Budget(time_limit=budget)
    )
    best = min(member_objectives.values())
    worst = max(member_objectives.values())
    return {
        "instance": "tpch",
        "budget": budget,
        "members": list(members),
        "member_objectives": member_objectives,
        "portfolio_objective": portfolio.objective,
        "portfolio_vs_best": portfolio.objective / best,
        "portfolio_vs_worst": portfolio.objective / worst,
    }


def test_sharded_runner_and_portfolio(benchmark):
    def run():
        return {
            "sharded_table5": _sharded_speedup(),
            "portfolio": _portfolio_quality(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=1) + "\n")

    quality = results["portfolio"]
    # The shared-incumbent race can only improve on the greedy start,
    # so losing to the *worst* member would be a correctness bug, and
    # the warm-started slices must keep it within a whisker of the
    # best member (measured: matches it exactly).
    assert quality["portfolio_vs_worst"] <= 1.0 + 1e-9, quality
    assert quality["portfolio_vs_best"] <= 1.02, quality

    speed = results["sharded_table5"]
    # Measured ~3.2x at 4 workers (budget-bound cells overlap their
    # wall-clock waits); the floor absorbs noise and slower boxes but
    # still requires genuine overlap.  Skipped on shared CI runners.
    if os.environ.get("GITHUB_ACTIONS") != "true":
        assert speed["speedup"] >= 1.4, speed
