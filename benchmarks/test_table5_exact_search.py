"""Table 5: exact-search comparison on reduced TPC-H (paper page 10).

Paper shape: bare MIP and CP blow up factorially with |I| (DF beyond 13
indexes); the Section-5 constraints (MIP+/CP+) recover orders of
magnitude; VNS finds the optimum in under a minute everywhere.  Budgets
here are seconds instead of the paper's 12-hour cap.
"""

from __future__ import annotations

from repro.experiments import table5
from repro.experiments.harness import quick_mode


def test_table5_exact_search(benchmark, archive):
    grid = (
        [(6, "low"), (8, "low"), (10, "low"), (8, "mid")]
        if quick_mode()
        else None
    )
    table = benchmark.pedantic(
        table5.run,
        kwargs={"grid": grid},
        rounds=1,
        iterations=1,
    )
    archive("table5_exact_search", table)
    by_method = {row[0]: row[1:] for row in table.rows}
    # CP+ must solve at least as many cells to optimality as bare CP.
    def solved(cells):
        return sum(1 for cell in cells if "DF" not in str(cell))

    assert solved(by_method["CP+"]) >= solved(by_method["CP"])
    assert solved(by_method["MIP+"]) >= solved(by_method["MIP"])
    # VNS always reports a solution.
    assert all("DF" not in str(cell) for cell in by_method["VNS"])
