"""Figure 12: local-search anytime curves on TPC-DS (paper page 11).

Paper shape over the 2-hour window: VNS achieves the best improvement
at every time range; TS-BSwap improves a lot but each iteration takes
~50 minutes (quadratic pair scan over 148 indexes); TS-FSwap is in
between; CP stays at the greedy start; MIP runs out of memory.
"""

from __future__ import annotations

from repro.experiments import fig12
from repro.experiments.harness import quick_mode


def test_fig12_local_search_tpcds(benchmark, archive):
    time_limit = 8.0 if quick_mode() else 120.0
    table = benchmark.pedantic(
        fig12.run,
        kwargs={"time_limit": time_limit, "n_runs": 1},
        rounds=1,
        iterations=1,
    )
    archive("fig12_local_search_tpcds", table)
    final = {
        row[0]: row[-1]
        for row in table.rows
        if isinstance(row[-1], float)
    }
    # VNS must be competitive with the best method at the end of the
    # window and clearly ahead of CP (the paper's ordering claim).  The
    # shared delta engine made the tabu scans fast enough that TS-BSwap
    # can edge out VNS on these scaled-down budgets, so strict
    # leadership is not asserted against the tabu variants.
    best = min(final.values())
    assert final["VNS"] <= best * 1.05 + 0.5
    if "CP" in final:
        assert final["VNS"] <= final["CP"] + 0.5
    # The paper's MIP out-of-memory note must be reproduced.
    assert any("MIP" in note for note in table.notes)
