"""Section 4.4 ablation: do index interactions matter to the model?

The paper argues that "index interactions are an important
consideration to this problem and removing them would have a
significant effect on solution quality."  This bench searches with the
full model vs. an interaction-free projection (independent-benefit
assumption, split speed-ups, no build interactions) and evaluates both
orders under the *true* objective.
"""

from __future__ import annotations

from repro.experiments import ablation
from repro.experiments.harness import quick_mode


def test_ablation_interactions(benchmark, archive):
    time_limit = 2.0 if quick_mode() else 20.0
    table = benchmark.pedantic(
        ablation.run, kwargs={"time_limit": time_limit}, rounds=1, iterations=1
    )
    archive("ablation_interactions", table)
    assert table.rows
    for row in table.rows:
        label, full, naive = row[0], row[1], row[2]
        if isinstance(full, float) and isinstance(naive, float):
            # The interaction-aware search never loses to the blind one.
            assert full <= naive * 1.02, label
