"""Figure 9: tail-pattern champions on reduced TPC-H (paper page 7).

Paper shape: tail patterns grouped by tail *set* are comparable; the
per-group champion is the cheapest internal order, and when one index
closes every champion it is provably last (the paper's i2).
"""

from __future__ import annotations

from repro.experiments import fig9


def test_fig9_tail_analysis(benchmark, archive):
    table = benchmark.pedantic(
        fig9.run,
        kwargs={"n_indexes": 10, "tail_length": 3, "max_rows": 24},
        rounds=1,
        iterations=1,
    )
    archive("fig9_tail_analysis", table)
    assert table.rows
    champions = [row for row in table.rows if row[2]]
    assert champions
    # Within a displayed group, the champion carries its group's
    # smallest tail objective.
    groups = {}
    for pattern, objective, champion in table.rows:
        key = frozenset(str(pattern).split("->"))
        groups.setdefault(key, []).append((float(objective), bool(champion)))
    for members in groups.values():
        best = min(value for value, _ in members)
        for value, champion in members:
            if champion:
                assert value == best
