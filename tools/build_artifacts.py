#!/usr/bin/env python
"""Regenerate the packaged matrix-file artifacts.

Runs the full Figure-3 pipeline (catalog -> advisor -> what-if
extraction) for the canonical TPC-H and TPC-DS configurations and writes
the results to ``src/repro/workloads/data/``.  The artifacts are checked
in so tests and benchmarks load instances in milliseconds instead of
re-running the ~4-minute TPC-DS advisor pass.

Usage::

    python tools/build_artifacts.py [tpch] [tpcds]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.core.serialization import save_instance
from repro.workloads.extracted import (
    DATA_DIR,
    build_tpcds_instance,
    build_tpch_instance,
)


def main(argv: list) -> int:
    targets = set(argv) or {"tpch", "tpcds"}
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    if "tpch" in targets:
        started = time.time()
        instance = build_tpch_instance(cache_path=None)
        save_instance(instance, DATA_DIR / "tpch.json")
        print(
            f"tpch: {instance.interaction_counts()} "
            f"({time.time() - started:.1f}s)"
        )
    if "tpcds" in targets:
        started = time.time()
        instance = build_tpcds_instance(cache_path=None)
        save_instance(instance, DATA_DIR / "tpcds.json")
        print(
            f"tpcds: {instance.interaction_counts()} "
            f"({time.time() - started:.1f}s)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
